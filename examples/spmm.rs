//! Sparse matrix–matrix multiply with **sparse accumulators** — the
//! original Gilbert–Moler–Schreiber use of the SPA that Cilk-M borrows
//! for its reducer views (§6) — parallelized over result columns with a
//! flop-count reducer tracking work on the side.
//!
//! Computes C = A·B for sparse A, B in CSC form: column j of C is the
//! linear combination `Σ_k B[k,j] · A[:,k]`, accumulated in a SPA for
//! O(flops) work instead of O(n) per column.
//!
//! ```sh
//! cargo run --release --example spmm
//! ```

use cilkm::prelude::*;
use cilkm::spa::Spa;

/// A sparse matrix in compressed sparse column form.
struct Csc {
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    /// A deterministic random sparse matrix with ~`nnz_per_col` entries
    /// per column.
    fn random(n: usize, nnz_per_col: usize, seed: u64) -> Csc {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..n {
            let mut rows: Vec<u32> = (0..nnz_per_col)
                .map(|_| (next() % n as u64) as u32)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            for r in rows {
                row_idx.push(r);
                values.push(((next() % 1000) as f64) / 500.0 - 1.0);
            }
            col_ptr.push(row_idx.len());
        }
        Csc {
            col_ptr,
            row_idx,
            values,
        }
    }

    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    fn nnz(&self) -> usize {
        self.row_idx.len()
    }
}

/// One column of C via a SPA: accumulate, then drain sorted.
fn spgemm_column(
    a: &Csc,
    b: &Csc,
    j: usize,
    spa: &mut Spa<f64>,
    flops: &mut u64,
) -> Vec<(u32, f64)> {
    let (b_rows, b_vals) = b.col(j);
    for (&k, &bkj) in b_rows.iter().zip(b_vals) {
        let (a_rows, a_vals) = a.col(k as usize);
        for (&i, &aik) in a_rows.iter().zip(a_vals) {
            *flops += 2;
            spa.accumulate(i as usize, || 0.0, |v| *v += aik * bkj);
        }
    }
    let mut col = spa.drain();
    col.sort_unstable_by_key(|e| e.0);
    col.into_iter().map(|(i, v)| (i as u32, v)).collect()
}

fn main() {
    let n = 4000;
    let a = Csc::random(n, 8, 1);
    let b = Csc::random(n, 8, 2);
    println!("A: {}x{n}, nnz = {}; B: nnz = {}", n, a.nnz(), b.nnz());

    let pool = ReducerPool::new(4, Backend::Mmap);
    let flops = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);

    // Each result column gets its own SPA (per grain, reused across the
    // columns of the grain — the classic SPA reuse pattern).
    let t0 = std::time::Instant::now();
    let columns: Vec<std::sync::Mutex<Vec<(u32, f64)>>> =
        (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    pool.run(|| {
        parallel_for(0..n, 64, &|range| {
            let mut spa = Spa::new(n);
            let mut local_flops = 0u64;
            for j in range {
                *columns[j].lock().unwrap() = spgemm_column(&a, &b, j, &mut spa, &mut local_flops);
            }
            flops.add(local_flops);
        });
    });
    let elapsed = t0.elapsed();

    let nnz_c: usize = columns.iter().map(|c| c.lock().unwrap().len()).sum();
    let total_flops = flops.into_inner();
    println!(
        "C = A*B: nnz = {nnz_c}, {total_flops} flops in {elapsed:?} \
         ({:.1} Mflop/s)",
        total_flops as f64 / elapsed.as_secs_f64() / 1e6
    );

    // Verify a few columns against a dense reference.
    for j in [0usize, n / 2, n - 1] {
        let mut dense = vec![0.0f64; n];
        let (b_rows, b_vals) = b.col(j);
        for (&k, &bkj) in b_rows.iter().zip(b_vals) {
            let (a_rows, a_vals) = a.col(k as usize);
            for (&i, &aik) in a_rows.iter().zip(a_vals) {
                dense[i as usize] += aik * bkj;
            }
        }
        let got = columns[j].lock().unwrap();
        for &(i, v) in got.iter() {
            assert!((dense[i as usize] - v).abs() < 1e-9, "col {j} row {i}");
            dense[i as usize] = 0.0;
        }
        assert!(
            dense.iter().all(|&v| v.abs() < 1e-12),
            "col {j} missing entries"
        );
    }
    println!("spot-checked columns against dense reference ✓");
}
