//! The paper's motivating example (Figure 2): walk a binary tree in
//! parallel, collecting the nodes that satisfy a property into a
//! *list-append reducer* — and get exactly the serial preorder list back,
//! despite the parallelism.
//!
//! ```sh
//! cargo run --release --example tree_walk
//! ```

use cilkm::prelude::*;

/// A binary tree node (the paper's `Node`).
struct Node {
    id: u32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// The paper's `has_property(n)` — here: id is congruent to 0 mod 7.
fn has_property(n: &Node) -> bool {
    n.id.is_multiple_of(7)
}

/// Builds a deterministic, lopsided tree of `size` nodes.
fn build(size: u32, seed: u32) -> Option<Box<Node>> {
    fn go(lo: u32, hi: u32, seed: u32) -> Option<Box<Node>> {
        if lo >= hi {
            return None;
        }
        // Skewed split keeps the tree irregular, like real inputs.
        let span = hi - lo;
        let pivot = lo + 1 + (seed.wrapping_mul(2654435761) ^ span) % span.max(1);
        let pivot = pivot.min(hi - 1).max(lo);
        Some(Box::new(Node {
            id: pivot,
            left: go(lo, pivot, seed.wrapping_add(1)),
            right: go(pivot + 1, hi, seed.wrapping_add(2)),
        }))
    }
    go(0, size, seed)
}

/// Figure 2(a), corrected: the serial walk (the reference output).
fn walk_serial(n: &Option<Box<Node>>, out: &mut Vec<u32>) {
    if let Some(n) = n {
        if has_property(n) {
            out.push(n.id);
        }
        walk_serial(&n.left, out);
        walk_serial(&n.right, out);
    }
}

/// Figure 2(b): the parallel walk with a list reducer.
///
/// `cilk_spawn walk(n->left); walk(n->right); cilk_sync;` becomes
/// `join(|| walk(left), || walk(right))`.
fn walk(n: &Option<Box<Node>>, l: &Reducer<ListMonoid<u32>>) {
    if let Some(n) = n {
        if has_property(n) {
            l.push(n.id);
        }
        join(|| walk(&n.left, l), || walk(&n.right, l));
    }
}

fn main() {
    let tree = build(200_000, 42);

    let mut expected = Vec::new();
    walk_serial(&tree, &mut expected);
    println!("serial walk found {} matching nodes", expected.len());

    for backend in [Backend::Mmap, Backend::Hypermap] {
        let pool = ReducerPool::new(4, backend);
        let list = Reducer::new(&pool, ListMonoid::<u32>::new(), Vec::new());
        let t0 = std::time::Instant::now();
        pool.run(|| walk(&tree, &list));
        let elapsed = t0.elapsed();
        let got = list.into_inner();
        assert_eq!(
            got, expected,
            "{backend:?}: parallel list must equal the serial preorder list"
        );
        println!(
            "{backend:?}: identical list of {} nodes in {elapsed:?} ✓",
            got.len()
        );
    }
    println!("list-append is not commutative — order was preserved anyway ✓");
}
