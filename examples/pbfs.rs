//! PBFS — the paper's application benchmark (§8): parallel breadth-first
//! search with bag reducers, on a synthetic RMAT graph, compared against
//! serial BFS and across both reducer backends.
//!
//! ```sh
//! cargo run --release --example pbfs
//! ```

use cilkm::graph::gen;
use cilkm::prelude::*;

fn main() {
    // A Graph500-flavoured RMAT graph: skewed degrees, tiny diameter.
    let g = gen::rmat(16, 1_000_000, 0.57, 0.19, 0.19, 7);
    println!("graph: |V| = {}, |E| = {}", g.num_vertices(), g.num_edges());
    let source = g.max_degree_vertex();

    let t0 = std::time::Instant::now();
    let serial = bfs_serial(&g, source);
    let t_serial = t0.elapsed();
    let reached = serial.iter().filter(|&&d| d != u32::MAX).count();
    println!("serial BFS: {reached} vertices reached in {t_serial:?}");

    for backend in [Backend::Mmap, Backend::Hypermap] {
        let pool = ReducerPool::new(4, backend);
        let t0 = std::time::Instant::now();
        let report = pbfs(&pool, &g, source, 128);
        let t_par = t0.elapsed();
        assert_eq!(
            report.distances, serial,
            "{backend:?} disagrees with serial BFS"
        );
        println!(
            "{backend:?}: identical distances, {} layers, {} reducer lookups, {t_par:?} \
             ({} steals)",
            report.layers,
            report.lookups,
            pool.stats().steals,
        );
    }
    println!("PBFS matches serial BFS on both backends ✓");
}
