//! PBFS — the paper's application benchmark (§8): parallel breadth-first
//! search with bag reducers, on a synthetic RMAT graph, compared against
//! serial BFS and across both reducer backends.
//!
//! ```sh
//! cargo run --release --example pbfs
//! # with the event tracer compiled in, additionally records one traced
//! # run and writes trace/metrics artifacts under bench_out/:
//! cargo run --release --features trace --example pbfs
//! # work/span/parallelism: the online profiled run plus, when traced,
//! # the offline DAG reconstruction with critical-path attribution
//! # (written to bench_out/pbfs_critical_path.txt):
//! cargo run --release --features trace --example pbfs -- --profile
//! ```

use std::path::PathBuf;

use cilkm::graph::gen;
use cilkm::obs::{analyze, dag, export, metrics, trace};
use cilkm::prelude::*;

/// Artifact directory: `CILKM_BENCH_OUT` if set, else `bench_out/` at
/// the workspace root (mirrors `cilkm-bench::output::out_dir`).
fn out_dir() -> PathBuf {
    let p = match std::env::var("CILKM_BENCH_OUT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench_out"),
    };
    let _ = std::fs::create_dir_all(&p);
    p
}

/// One tracer-enabled PBFS run: records every scheduler/reducer event,
/// writes the Chrome trace (load it in Perfetto / chrome://tracing), the
/// lossless events CSV, and a metrics dump, then prints the analyzer's
/// summary of the same trace.
/// One profiled PBFS run: the online constant-space work/span
/// accumulator, no trace ring involved. Prints the parallelism report
/// (all zeros when the `trace` feature is off).
fn profiled_run(g: &cilkm::graph::Graph, source: u32, serial: &[u32]) {
    let pool = ReducerPool::new(4, Backend::Mmap);
    let (report, pr) = cilkm::graph::pbfs_profiled(&pool, g, source, 128);
    assert_eq!(
        report.distances, serial,
        "profiled run disagrees with serial"
    );
    print!("{}", pr.render());
}

fn traced_run(g: &cilkm::graph::Graph, source: u32, serial: &[u32]) {
    let pool = ReducerPool::new(4, Backend::Mmap);
    let metrics_before = metrics::global().snapshot();
    let t0 = cilkm::obs::clock::now_ns();
    trace::set_enabled(true);
    let report = pbfs(&pool, g, source, 128);
    trace::set_enabled(false);
    let tr = trace::drain().since_ns(t0);
    let metrics_delta = metrics::global().snapshot().since(&metrics_before);
    assert_eq!(report.distances, serial, "traced run disagrees with serial");

    let dir = out_dir();
    let write = |name: &str, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| {
        let mut buf = Vec::new();
        f(&mut buf).expect("render artifact");
        let path = dir.join(name);
        std::fs::write(&path, buf).expect("write artifact");
        println!("  wrote {}", path.display());
    };
    // Offline SP-DAG reconstruction: work/span/parallelism plus the
    // critical path, overlaid on the Chrome trace as its own track and
    // written out as a text report for CI to upload.
    let analysis = dag::build(&tr);
    write("pbfs_trace.json", &|w| {
        export::write_chrome_json_with_path(&tr, &analysis.critical_path, w)
    });
    write("pbfs_trace_events.csv", &|w| {
        export::write_events_csv(&tr, w)
    });
    write("pbfs_metrics.csv", &|w| {
        export::write_metrics_csv(&metrics_delta, w)
    });
    write("pbfs_metrics.json", &|w| {
        export::write_metrics_json(&metrics_delta, w)
    });
    write("pbfs_critical_path.txt", &|w| {
        use std::io::Write as _;
        w.write_all(analysis.render(10).as_bytes())
    });
    print!("{}", analyze::render(&analyze::summarize(&tr)));
    print!("{}", analysis.render(10));
}

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    // A Graph500-flavoured RMAT graph: skewed degrees, tiny diameter.
    let g = gen::rmat(16, 1_000_000, 0.57, 0.19, 0.19, 7);
    println!("graph: |V| = {}, |E| = {}", g.num_vertices(), g.num_edges());
    let source = g.max_degree_vertex();

    let t0 = std::time::Instant::now();
    let serial = bfs_serial(&g, source);
    let t_serial = t0.elapsed();
    let reached = serial.iter().filter(|&&d| d != u32::MAX).count();
    println!("serial BFS: {reached} vertices reached in {t_serial:?}");

    for backend in [Backend::Mmap, Backend::Hypermap] {
        let pool = ReducerPool::new(4, backend);
        let t0 = std::time::Instant::now();
        let report = pbfs(&pool, &g, source, 128);
        let t_par = t0.elapsed();
        assert_eq!(
            report.distances, serial,
            "{backend:?} disagrees with serial BFS"
        );
        println!(
            "{backend:?}: identical distances, {} layers, {} reducer lookups, {t_par:?} \
             ({} steals)",
            report.layers,
            report.lookups,
            pool.stats().steals,
        );
    }
    if profile {
        println!("\nprofiled run (mmap backend, online work/span accumulator):");
        profiled_run(&g, source, &serial);
    }
    if trace::compiled() {
        println!("\ntraced run (mmap backend):");
        traced_run(&g, source, &serial);
    }
    println!("PBFS matches serial BFS on both backends ✓");
}
