//! PBFS — the paper's application benchmark (§8): parallel breadth-first
//! search with bag reducers, on a synthetic RMAT graph, compared against
//! serial BFS and across both reducer backends.
//!
//! ```sh
//! cargo run --release --example pbfs
//! # with the event tracer compiled in, additionally records one traced
//! # run and writes trace/metrics artifacts under bench_out/:
//! cargo run --release --features trace --example pbfs
//! ```

use std::path::PathBuf;

use cilkm::graph::gen;
use cilkm::obs::{analyze, export, metrics, trace};
use cilkm::prelude::*;

/// Artifact directory: `CILKM_BENCH_OUT` if set, else `bench_out/` at
/// the workspace root (mirrors `cilkm-bench::output::out_dir`).
fn out_dir() -> PathBuf {
    let p = match std::env::var("CILKM_BENCH_OUT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench_out"),
    };
    let _ = std::fs::create_dir_all(&p);
    p
}

/// One tracer-enabled PBFS run: records every scheduler/reducer event,
/// writes the Chrome trace (load it in Perfetto / chrome://tracing), the
/// lossless events CSV, and a metrics dump, then prints the analyzer's
/// summary of the same trace.
fn traced_run(g: &cilkm::graph::Graph, source: u32, serial: &[u32]) {
    let pool = ReducerPool::new(4, Backend::Mmap);
    let metrics_before = metrics::global().snapshot();
    let t0 = cilkm::obs::clock::now_ns();
    trace::set_enabled(true);
    let report = pbfs(&pool, g, source, 128);
    trace::set_enabled(false);
    let tr = trace::drain().since_ns(t0);
    let metrics_delta = metrics::global().snapshot().since(&metrics_before);
    assert_eq!(report.distances, serial, "traced run disagrees with serial");

    let dir = out_dir();
    let write = |name: &str, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| {
        let mut buf = Vec::new();
        f(&mut buf).expect("render artifact");
        let path = dir.join(name);
        std::fs::write(&path, buf).expect("write artifact");
        println!("  wrote {}", path.display());
    };
    write("pbfs_trace.json", &|w| export::write_chrome_json(&tr, w));
    write("pbfs_trace_events.csv", &|w| {
        export::write_events_csv(&tr, w)
    });
    write("pbfs_metrics.csv", &|w| {
        export::write_metrics_csv(&metrics_delta, w)
    });
    write("pbfs_metrics.json", &|w| {
        export::write_metrics_json(&metrics_delta, w)
    });
    print!("{}", analyze::render(&analyze::summarize(&tr)));
}

fn main() {
    // A Graph500-flavoured RMAT graph: skewed degrees, tiny diameter.
    let g = gen::rmat(16, 1_000_000, 0.57, 0.19, 0.19, 7);
    println!("graph: |V| = {}, |E| = {}", g.num_vertices(), g.num_edges());
    let source = g.max_degree_vertex();

    let t0 = std::time::Instant::now();
    let serial = bfs_serial(&g, source);
    let t_serial = t0.elapsed();
    let reached = serial.iter().filter(|&&d| d != u32::MAX).count();
    println!("serial BFS: {reached} vertices reached in {t_serial:?}");

    for backend in [Backend::Mmap, Backend::Hypermap] {
        let pool = ReducerPool::new(4, backend);
        let t0 = std::time::Instant::now();
        let report = pbfs(&pool, &g, source, 128);
        let t_par = t0.elapsed();
        assert_eq!(
            report.distances, serial,
            "{backend:?} disagrees with serial BFS"
        );
        println!(
            "{backend:?}: identical distances, {} layers, {} reducer lookups, {t_par:?} \
             ({} steals)",
            report.layers,
            report.lookups,
            pool.stats().steals,
        );
    }
    if trace::compiled() {
        println!("\ntraced run (mmap backend):");
        traced_run(&g, source, &serial);
    }
    println!("PBFS matches serial BFS on both backends ✓");
}
