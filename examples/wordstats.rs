//! Text analytics with several reducers at once, including a custom
//! closure-built monoid — the "many coordinated accumulators over one
//! parallel pass" pattern reducers exist for.
//!
//! Computes, in a single parallel sweep over a synthetic corpus:
//! word count, total length (sum), longest word (max), whether any word
//! is a palindrome (or), and a 26-bin first-letter histogram (custom
//! monoid: element-wise vector addition).
//!
//! ```sh
//! cargo run --release --example wordstats
//! # with the `trace` feature, `--profile` additionally reports the
//! # sweep's work, span, and parallelism from the online profiler:
//! cargo run --release --features trace --example wordstats -- --profile
//! ```

use cilkm::prelude::*;

/// Deterministic synthetic corpus: `n` pseudo-words.
fn corpus(n: usize) -> Vec<String> {
    let mut words = Vec::with_capacity(n);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let len = 2 + (state % 9) as usize;
        let mut w = String::with_capacity(len);
        let mut s = state;
        for _ in 0..len {
            s = s.rotate_left(7).wrapping_mul(0x100000001B3);
            w.push((b'a' + (s % 26) as u8) as char);
        }
        words.push(w);
    }
    words
}

fn is_palindrome(w: &str) -> bool {
    let b = w.as_bytes();
    (0..b.len() / 2).all(|i| b[i] == b[b.len() - 1 - i])
}

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let words = corpus(500_000);
    let pool = ReducerPool::new(4, Backend::Mmap);

    let count = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
    let total_len = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
    let longest = Reducer::new(&pool, MaxMonoid::<usize>::new(), None);
    let any_palindrome = Reducer::new(&pool, OrMonoid::new(), false);
    // Custom monoid: element-wise add of 26 first-letter bins.
    let histogram = Reducer::new(
        &pool,
        FnMonoid::new(
            || vec![0u64; 26],
            |l: &mut Vec<u64>, r: Vec<u64>| {
                for (a, b) in l.iter_mut().zip(r) {
                    *a += b;
                }
            },
        ),
        vec![0u64; 26],
    );

    let sweep = || {
        parallel_for_each(&words, 2048, &|_, w| {
            count.add(1);
            total_len.add(w.len() as u64);
            longest.observe(w.len());
            if is_palindrome(w) {
                any_palindrome.update(|v| *v = true);
            }
            let bin = (w.as_bytes()[0] - b'a') as usize;
            histogram.update(|h| h[bin] += 1);
        });
    };
    if profile {
        // Same sweep, measured by the online work/span profiler (the
        // report is all zeros unless the `trace` feature is on).
        let ((), report) = pool.run_profiled(sweep);
        print!("{}", report.render());
    } else {
        pool.run(sweep);
    }

    let n = count.into_inner();
    let total = total_len.into_inner();
    let hist = histogram.into_inner();
    assert_eq!(n as usize, words.len());
    assert_eq!(hist.iter().sum::<u64>(), n);
    assert_eq!(
        total,
        words.iter().map(|w| w.len() as u64).sum::<u64>(),
        "parallel total length must match serial"
    );

    println!("words: {n}");
    println!("mean length: {:.2}", total as f64 / n as f64);
    println!("longest: {} chars", longest.into_inner().unwrap());
    println!("any palindrome: {}", any_palindrome.into_inner());
    let top = hist
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, c)| ((b'a' + i as u8) as char, *c))
        .unwrap();
    println!("most common first letter: '{}' ({} words)", top.0, top.1);
    println!("all invariants verified ✓");
}
