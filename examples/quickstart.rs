//! Quickstart: sum, min, and max reducers over a parallel loop, on both
//! runtime backends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cilkm::prelude::*;

fn main() {
    let values: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect();

    for backend in [Backend::Mmap, Backend::Hypermap] {
        // One pool = one runtime system instance (Cilk-M or Cilk Plus).
        let pool = ReducerPool::new(4, backend);

        // Reducers: shared across parallel branches, no locks, no races,
        // deterministic results.
        let sum = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        let min = Reducer::new(&pool, MinMonoid::<u64>::new(), None);
        let max = Reducer::new(&pool, MaxMonoid::<u64>::new(), None);

        let t0 = std::time::Instant::now();
        pool.run(|| {
            parallel_for(0..values.len(), 4096, &|range| {
                for i in range {
                    let v = values[i];
                    sum.add(v);
                    min.observe(v);
                    max.observe(v);
                }
            });
        });
        let elapsed = t0.elapsed();

        let total = sum.into_inner();
        let lo = min.into_inner().unwrap();
        let hi = max.into_inner().unwrap();

        // Verify against the serial fold.
        assert_eq!(total, values.iter().copied().fold(0u64, u64::wrapping_add));
        assert_eq!(lo, *values.iter().min().unwrap());
        assert_eq!(hi, *values.iter().max().unwrap());

        let stats = pool.stats();
        println!(
            "{backend:?}: sum={total:#x} min={lo:#x} max={hi:#x} in {elapsed:?} \
             ({} joins, {} stolen)",
            stats.inline_joins + stats.stolen_joins,
            stats.stolen_joins,
        );
    }
    println!("both backends agree with the serial fold ✓");
}
