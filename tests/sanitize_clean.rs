//! Clean-run control: the transferal/hypermerge machinery itself must produce
//! **zero** sanitizer findings. Any finding here is either a real bug in the
//! runtime/reducer layers or a false positive in the detectors — both block.
//!
//! Findings are process-global, so this binary must not share a process with
//! the seeded negative controls (`sanitize_negative.rs`).
#![cfg(all(feature = "sanitize", not(feature = "model")))]

use cilkm::prelude::*;
use cilkm::san;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn transferal_and_hypermerge_stress_reports_no_findings() {
    for backend in [Backend::Mmap, Backend::Hypermap] {
        let pool = ReducerPool::new(4, backend);

        // Contended view transferal: many reducers, deep fork-join nesting,
        // every strand touching every reducer so hypermerges happen on both
        // sides of stolen joins.
        let sums: Vec<Reducer<SumMonoid<u64>>> = (0..64)
            .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
            .collect();
        pool.run(|| {
            parallel_for(0..2_000usize, 16, &|r| {
                for i in r {
                    for s in &sums {
                        s.add(i as u64);
                    }
                }
            });
        });
        let expect: u64 = (0..2_000u64).sum();
        for s in sums {
            assert_eq!(s.into_inner(), expect);
        }

        // Ordered hypermerge: a list reducer must observe serial order even
        // under steals, exercising detach/deposit/merge_right heavily.
        let list = Reducer::new(&pool, ListMonoid::new(), Vec::new());
        pool.run(|| {
            parallel_for(0..512usize, 4, &|r| {
                for i in r {
                    list.update(|v| v.push(i));
                }
            });
        });
        assert_eq!(list.into_inner(), (0..512usize).collect::<Vec<_>>());

        // Irregular fork-join (fib) plus scope spawns mixed with reducers.
        let touched = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        pool.run(|| {
            assert_eq!(fib(16), 987);
            scope(|s| {
                for _ in 0..32 {
                    let touched = &touched;
                    s.spawn(move |_| {
                        touched.add(1);
                    });
                }
            });
        });
        assert_eq!(touched.into_inner(), 32);

        drop(pool);
    }

    let report = san::snapshot();
    assert!(
        report.findings.is_empty(),
        "clean stress run produced sanitizer findings: {}",
        report.to_json()
    );
}
