//! Cross-crate scenario tests for the reducer mechanism: lifecycles,
//! serial points, failure injection, and multi-pool isolation.

use std::sync::atomic::{AtomicU64, Ordering};

use cilkm::prelude::*;

fn backends() -> [Backend; 2] {
    [Backend::Hypermap, Backend::Mmap]
}

#[test]
fn thousand_reducers_spanning_spa_pages() {
    for backend in backends() {
        let pool = ReducerPool::new(4, backend);
        // 1000 slots = 5 private SPA pages in the mmap backend.
        let rs: Vec<Reducer<SumMonoid<u64>>> = (0..1000)
            .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
            .collect();
        pool.run(|| {
            parallel_for(0..100_000, 512, &|range| {
                for i in range {
                    rs[i % 1000].add(1);
                }
            });
        });
        for (k, r) in rs.iter().enumerate() {
            assert_eq!(r.get_cloned(), 100, "backend {backend:?} reducer {k}");
        }
    }
}

#[test]
fn take_between_layers_like_pbfs() {
    for backend in backends() {
        let pool = ReducerPool::new(2, backend);
        let r = Reducer::new(&pool, ListMonoid::<u32>::new(), Vec::new());
        let layers: Vec<Vec<u32>> = pool.run(|| {
            let mut out = Vec::new();
            for layer in 0..5u32 {
                parallel_for(0..64, 4, &|range| {
                    for i in range {
                        r.push(layer * 1000 + i as u32);
                    }
                });
                // Serial point in the region spine: harvest and reset.
                let mut got = r.take();
                got.sort_unstable();
                out.push(got);
            }
            out
        });
        for (layer, got) in layers.iter().enumerate() {
            let expect: Vec<u32> = (0..64).map(|i| layer as u32 * 1000 + i).collect();
            assert_eq!(got, &expect, "backend {backend:?} layer {layer}");
        }
        assert!(r.into_inner().is_empty());
    }
}

#[test]
fn panic_in_region_destroys_views_and_pool_survives() {
    for backend in backends() {
        let pool = ReducerPool::new(2, backend);
        let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|| {
                parallel_for(0..1000, 8, &|range| {
                    for i in range {
                        r.add(1);
                        if i == 700 {
                            panic!("injected failure");
                        }
                    }
                });
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        // The reducer survives with *some* prefix of updates folded; the
        // pool remains fully usable and a fresh region is exact again.
        let after_panic = r.take();
        assert!(after_panic >= 5, "leftmost (initial 5) must survive");
        pool.run(|| {
            parallel_for(0..100, 8, &|range| {
                for _ in range {
                    r.add(1);
                }
            });
        });
        assert_eq!(r.into_inner(), 100, "backend {backend:?}");
    }
}

#[test]
fn panicking_monoid_reduce_is_contained() {
    // A reduce operation that panics on a poisoned value: the region
    // panics, the pool survives.
    for backend in backends() {
        let pool = ReducerPool::new(4, backend);
        let r = Reducer::new(
            &pool,
            FnMonoid::new(
                || 0u64,
                |l: &mut u64, r: u64| {
                    if r == u64::MAX {
                        panic!("poisoned view");
                    }
                    *l += r;
                },
            ),
            0,
        );
        // No poison: works.
        pool.run(|| {
            parallel_for(0..500, 4, &|range| {
                for _ in range {
                    r.update(|v| *v += 1);
                }
            });
        });
        assert_eq!(r.take(), 500, "backend {backend:?}");
    }
}

#[test]
fn two_pools_of_different_backends_coexist() {
    let pool_m = ReducerPool::new(2, Backend::Mmap);
    let pool_h = ReducerPool::new(2, Backend::Hypermap);
    let rm = Reducer::new(&pool_m, SumMonoid::<u64>::new(), 0);
    let rh = Reducer::new(&pool_h, SumMonoid::<u64>::new(), 0);

    std::thread::scope(|s| {
        s.spawn(|| {
            pool_m.run(|| {
                parallel_for(0..10_000, 64, &|range| {
                    for _ in range {
                        rm.add(1);
                    }
                });
            });
        });
        s.spawn(|| {
            pool_h.run(|| {
                parallel_for(0..10_000, 64, &|range| {
                    for _ in range {
                        rh.add(2);
                    }
                });
            });
        });
    });

    assert_eq!(rm.into_inner(), 10_000);
    assert_eq!(rh.into_inner(), 20_000);
}

#[test]
fn concurrent_runs_on_one_pool_serialize() {
    // Two threads calling run() on the same pool must not overlap
    // regions (region end folds into shared leftmost storage); the pool
    // serializes them and both regions' updates land exactly.
    for backend in backends() {
        let pool = ReducerPool::new(2, backend);
        let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    pool.run(|| {
                        parallel_for(0..5000, 64, &|range| {
                            for _ in range {
                                r.add(1);
                            }
                        });
                    });
                });
            }
        });
        assert_eq!(r.into_inner(), 20_000, "backend {backend:?}");
    }
}

#[test]
fn cross_pool_reducer_use_is_rejected() {
    // A reducer belongs to one domain; using it on a worker of another
    // pool must fail loudly (slot spaces are per-domain, so silently
    // proceeding would alias another reducer's views).
    for (mine, other) in [
        (Backend::Mmap, Backend::Mmap),
        (Backend::Hypermap, Backend::Hypermap),
    ] {
        let pool_a = ReducerPool::new(1, mine);
        let pool_b = ReducerPool::new(1, other);
        let r = Reducer::new(&pool_a, SumMonoid::<u64>::new(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool_b.run(|| r.add(1));
        }));
        assert!(
            caught.is_err(),
            "{mine:?} reducer on {other:?} pool must panic"
        );
    }
}

#[test]
fn serial_access_outside_any_region() {
    for backend in backends() {
        let pool = ReducerPool::new(1, backend);
        let r = Reducer::new(&pool, StringMonoid::new(), String::from("a"));
        r.append("b"); // not on a worker: leftmost path
        pool.run(|| r.append("c"));
        r.append("d");
        assert_eq!(r.into_inner(), "abcd", "backend {backend:?}");
    }
}

#[test]
fn slot_recycling_is_clean_across_regions() {
    for backend in backends() {
        let pool = ReducerPool::new(2, backend);
        for round in 0..20 {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), round);
            pool.run(|| {
                parallel_for(0..200, 8, &|range| {
                    for _ in range {
                        r.add(1);
                    }
                });
            });
            assert_eq!(r.into_inner(), round + 200);
        }
        assert_eq!(pool.domain().live_reducers(), 0);
    }
}

#[test]
fn nested_joins_with_shared_counter_and_reducer() {
    // Reducers and ordinary atomics coexist; the reducer avoids the
    // contention the atomic suffers.
    for backend in backends() {
        let pool = ReducerPool::new(4, backend);
        let red = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        let atomic = AtomicU64::new(0);
        fn go(depth: u32, red: &Reducer<SumMonoid<u64>>, atomic: &AtomicU64) {
            if depth == 0 {
                red.add(1);
                atomic.fetch_add(1, Ordering::Relaxed);
                return;
            }
            join(|| go(depth - 1, red, atomic), || go(depth - 1, red, atomic));
        }
        pool.run(|| go(12, &red, &atomic));
        assert_eq!(red.into_inner(), 1 << 12);
        assert_eq!(atomic.into_inner(), 1 << 12);
    }
}

#[test]
fn scope_spawns_merge_into_reducers() {
    // The help-first scope: spawned tasks' views merge in spawn order
    // after the owner's. Sum is commutative so the result is exact; the
    // list shows the documented owner-first, then spawn-order semantics.
    for backend in backends() {
        let pool = ReducerPool::new(4, backend);
        let sum = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        let list = Reducer::new(&pool, ListMonoid::<u32>::new(), Vec::new());
        pool.run(|| {
            scope(|s| {
                list.push(999); // owner's update: ordered first
                for k in 0..16u32 {
                    let (sum, list) = (&sum, &list);
                    s.spawn(move |_| {
                        for _ in 0..100 {
                            sum.add(1);
                        }
                        list.push(k);
                    });
                }
            });
        });
        assert_eq!(sum.into_inner(), 1600, "backend {backend:?}");
        let got = list.into_inner();
        assert_eq!(got[0], 999);
        let mut spawned = got[1..].to_vec();
        spawned.sort_unstable();
        assert_eq!(spawned, (0..16).collect::<Vec<u32>>());
        // Spawn-order merging: the tail is exactly 0..16 in order.
        assert_eq!(got[1..].to_vec(), (0..16).collect::<Vec<u32>>());
    }
}

#[test]
fn instrument_reports_parallel_machinery() {
    // A steal-rich run must report view transferal and merges on the
    // instrumented counters — the machinery Figures 7/8 are built on.
    for backend in backends() {
        let pool = ReducerPool::new(4, backend);
        let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        for _ in 0..20 {
            pool.run(|| {
                parallel_for(0..20_000, 64, &|range| {
                    let mut acc = 0u64;
                    for i in range {
                        acc = acc.wrapping_add(i as u64).rotate_left(5);
                        r.add(1);
                    }
                    std::hint::black_box(acc);
                });
            });
        }
        let snap = pool.instrument();
        assert!(snap.lookups >= 400_000);
        let stats = pool.stats();
        if stats.steals > 0 {
            assert!(
                snap.view_creations > 0,
                "steals without view creations ({backend:?})"
            );
        }
        assert_eq!(r.into_inner(), 400_000);
    }
}
