//! The reducer guarantee, end to end: for an associative (even
//! non-commutative) monoid, the parallel result equals the serial result
//! regardless of scheduling — on both backends, under randomized fork
//! trees and steal-heavy schedules.

use cilkm::prelude::*;
use proptest::prelude::*;

/// A little fork-tree program: leaves append tokens to a string reducer;
/// internal nodes fork. Its serial semantics are an in-order walk.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(u16),
    Fork(Box<Tree>, Box<Tree>),
}

impl Tree {
    fn serial(&self, out: &mut String) {
        match self {
            Tree::Leaf(t) => {
                out.push_str(&format!("{t},"));
            }
            Tree::Fork(l, r) => {
                l.serial(out);
                r.serial(out);
            }
        }
    }

    fn parallel(&self, s: &Reducer<StringMonoid>, spin: u32) {
        match self {
            Tree::Leaf(t) => {
                // A little uneven spinning encourages steals.
                for _ in 0..(*t as u32 % 7) * spin {
                    std::hint::spin_loop();
                }
                s.append(&format!("{t},"));
            }
            Tree::Fork(l, r) => {
                join(|| l.parallel(s, spin), || r.parallel(s, spin));
            }
        }
    }
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = any::<u16>().prop_map(Tree::Leaf);
    leaf.prop_recursive(8, 96, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| Tree::Fork(Box::new(l), Box::new(r)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn string_append_equals_serial_order(tree in tree_strategy(), workers in 1usize..5) {
        let mut expected = String::new();
        tree.serial(&mut expected);

        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(workers, backend);
            let s = Reducer::new(&pool, StringMonoid::new(), String::new());
            pool.run(|| tree.parallel(&s, 50));
            prop_assert_eq!(
                s.into_inner(),
                expected.clone(),
                "backend {:?}, {} workers",
                backend,
                workers
            );
        }
    }

    #[test]
    fn sum_is_exact_under_random_trees(tree in tree_strategy()) {
        fn run(tree: &Tree, r: &Reducer<SumMonoid<u64>>) {
            match tree {
                Tree::Leaf(t) => r.add(*t as u64),
                Tree::Fork(l, r2) => {
                    join(|| run(l, r), || run(r2, r));
                }
            }
        }
        fn serial_sum(tree: &Tree) -> u64 {
            match tree {
                Tree::Leaf(t) => *t as u64,
                Tree::Fork(l, r) => serial_sum(l) + serial_sum(r),
            }
        }
        let expected = serial_sum(&tree);
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(3, backend);
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            pool.run(|| run(&tree, &r));
            prop_assert_eq!(r.into_inner(), expected);
        }
    }
}

/// A deterministic steal-heavy schedule: deep left spine with expensive
/// right branches, repeated many times — stolen joins are all but
/// guaranteed with ≥2 workers, and each steal exercises view transferal
/// and hypermerge with a non-commutative monoid.
#[test]
fn steal_heavy_ordering_both_backends() {
    fn spine(depth: u32, s: &Reducer<StringMonoid>) {
        if depth == 0 {
            return;
        }
        s.append(&format!("[{depth}"));
        join(
            || spine(depth - 1, s),
            || {
                // Expensive right branch: prime steal bait.
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add(i).rotate_left(3);
                }
                std::hint::black_box(acc);
                s.append(&format!("{depth}]"));
            },
        );
    }

    let mut expected = String::new();
    for d in (1..=24u32).rev() {
        expected.push_str(&format!("[{d}"));
    }
    for d in 1..=24u32 {
        expected.push_str(&format!("{d}]"));
    }

    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(4, backend);
        let s = Reducer::new(&pool, StringMonoid::new(), String::new());
        pool.run(|| spine(24, &s));
        assert_eq!(s.into_inner(), expected, "backend {backend:?}");
        // The schedule must actually have exercised the parallel path
        // over the repetitions of this test; steals are probabilistic per
        // run, so only assert the join accounting is sane.
        let stats = pool.stats();
        assert_eq!(stats.inline_joins + stats.stolen_joins, 24);
    }
}

/// Lists across page-many reducers: ordering holds per reducer even when
/// the slot space spans several SPA pages.
#[test]
fn many_list_reducers_keep_their_own_order() {
    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(4, backend);
        // 300 reducers > 248 slots: the mmap backend needs two private
        // SPA pages per worker.
        let lists: Vec<Reducer<ListMonoid<usize>>> = (0..300)
            .map(|_| Reducer::new(&pool, ListMonoid::new(), Vec::new()))
            .collect();
        pool.run(|| {
            parallel_for(0..3000, 16, &|range| {
                for i in range {
                    lists[i % 300].push(i);
                }
            });
        });
        for (k, list) in lists.iter().enumerate() {
            let got = list.get_cloned();
            let expect: Vec<usize> = (0..3000).filter(|i| i % 300 == k).collect();
            assert_eq!(got, expect, "backend {backend:?} reducer {k}");
        }
    }
}
