//! Long-running soak test (opt-in): mixed reducer workloads hammered for
//! several seconds on both backends, looking for rare scheduling
//! interleavings the fast tests miss.
//!
//! ```sh
//! cargo test --release --test soak -- --ignored
//! ```

use cilkm::prelude::*;

#[test]
#[ignore = "multi-second soak; run explicitly with --ignored"]
fn soak_mixed_workloads() {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(8);
    let mut round = 0u64;
    while std::time::Instant::now() < deadline {
        round += 1;
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(4, backend);
            let sum = Reducer::new(&pool, SumMonoid::<u64>::new(), round);
            let list = Reducer::new(&pool, ListMonoid::<u32>::new(), Vec::new());
            let text = Reducer::new(&pool, StringMonoid::new(), String::new());

            pool.run(|| {
                scope(|s| {
                    for _ in 0..4 {
                        let sum = &sum;
                        s.spawn(move |_| {
                            parallel_for(0..5000, 64, &|r| {
                                for _ in r {
                                    sum.add(1);
                                }
                            });
                        });
                    }
                });
                parallel_for(0..500, 8, &|r| {
                    for i in r {
                        list.push(i as u32);
                        text.append(&format!("{i};"));
                    }
                });
            });

            assert_eq!(
                sum.into_inner(),
                round + 20_000,
                "round {round} {backend:?}"
            );
            assert_eq!(
                list.into_inner(),
                (0..500).collect::<Vec<u32>>(),
                "round {round} {backend:?}"
            );
            let mut want = String::new();
            for i in 0..500 {
                want.push_str(&format!("{i};"));
            }
            assert_eq!(text.into_inner(), want, "round {round} {backend:?}");
        }
    }
    println!("soak completed {round} rounds");
}
