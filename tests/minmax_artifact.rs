//! The §8 min-n vs max-n anecdote, pinned down.
//!
//! The paper observes that every min-n run was slower than its max-n
//! counterpart and attributes it to "the artifact of how reducer min and
//! max libraries are implemented [in Cilk Plus]: more updates are
//! performed on a given view in the execution of min-n than that in the
//! execution of max-n for the same n".
//!
//! Our library implements min and max *symmetrically*, so this suite
//! documents (a) that the inherent update counts of the two problems are
//! statistically equal on uniform random streams — the asymmetry was not
//! mathematical — and (b) that our implementation performs exactly the
//! inherent number of view mutations, for both.

use cilkm::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Splitmix-style per-index value, as used by the min/max benches.
fn pseudo_random(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn inherent_update_counts_are_symmetric() {
    // Running-extreme change counts over the same uniform stream: both
    // are ~H(x) = ln x + γ in expectation; neither should exceed the
    // other by more than noise.
    let x = 200_000u64;
    let (mut min_changes, mut max_changes) = (0u64, 0u64);
    let (mut cur_min, mut cur_max) = (u64::MAX, 0u64);
    for i in 0..x {
        let v = pseudo_random(i);
        if v < cur_min {
            cur_min = v;
            min_changes += 1;
        }
        if v > cur_max {
            cur_max = v;
            max_changes += 1;
        }
    }
    // H(200000) ≈ 12.8; allow generous slack either way.
    assert!(min_changes <= 40, "min changes {min_changes}");
    assert!(max_changes <= 40, "max changes {max_changes}");
    assert!(
        min_changes.abs_diff(max_changes) <= 25,
        "uniform stream must not favor min over max: {min_changes} vs {max_changes}"
    );
}

#[test]
fn our_reducers_mutate_views_symmetrically() {
    // Instrumented monoids: count every view *write* (not lookup). With
    // a symmetric library the two counts track the inherent counts; the
    // paper's Cilk Plus library wrote more often for min.
    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(1, backend);
        let min_writes = AtomicU64::new(0);
        let max_writes = AtomicU64::new(0);

        let min = Reducer::new(&pool, MinMonoid::<u64>::new(), None);
        let max = Reducer::new(&pool, MaxMonoid::<u64>::new(), None);

        let x = 100_000u64;
        pool.run(|| {
            for i in 0..x {
                let v = pseudo_random(i);
                min.update(|cur| match cur {
                    Some(c) if *c <= v => {}
                    _ => {
                        *cur = Some(v);
                        min_writes.fetch_add(1, Ordering::Relaxed);
                    }
                });
                max.update(|cur| match cur {
                    Some(c) if *c >= v => {}
                    _ => {
                        *cur = Some(v);
                        max_writes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        let mn = min_writes.into_inner();
        let mx = max_writes.into_inner();
        assert!(mn > 0 && mx > 0);
        assert!(
            mn.abs_diff(mx) <= 25,
            "backend {backend:?}: symmetric library must write symmetrically \
             ({mn} min writes vs {mx} max writes)"
        );
        // And the final extremes are correct.
        let expect_min = (0..x).map(pseudo_random).min();
        let expect_max = (0..x).map(pseudo_random).max();
        assert_eq!(min.into_inner(), expect_min);
        assert_eq!(max.into_inner(), expect_max);
    }
}
