//! PBFS integration: the eight stand-in inputs of Figure 10(b), small
//! scale, checked against serial BFS on both backends.

use cilkm::graph::gen;
use cilkm::graph::UNREACHED;
use cilkm::prelude::*;

#[test]
fn all_paper_inputs_match_serial_bfs() {
    let inputs = gen::paper_inputs(3000.0, 7);
    assert_eq!(inputs.len(), 8);
    for input in &inputs {
        let serial = bfs_serial(&input.graph, input.source);
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(3, backend);
            let report = pbfs(&pool, &input.graph, input.source, 32);
            assert_eq!(
                report.distances, serial,
                "{} on {backend:?} disagrees with serial BFS",
                input.name
            );
            let ecc = serial
                .iter()
                .filter(|&&d| d != UNREACHED)
                .max()
                .copied()
                .unwrap_or(0);
            assert_eq!(report.layers, ecc + 1, "{}", input.name);
        }
    }
}

#[test]
fn pbfs_is_deterministic_across_runs() {
    let g = gen::rmat(12, 40_000, 0.57, 0.19, 0.19, 99);
    let pool = ReducerPool::new(4, Backend::Mmap);
    let first = pbfs(&pool, &g, 0, 64).distances;
    for _ in 0..3 {
        assert_eq!(pbfs(&pool, &g, 0, 64).distances, first);
    }
}

#[test]
fn grid_diameter_drives_layers() {
    // Mesh graphs: many layers, many reducer epochs — the high-D regime
    // of Figure 10(b).
    let g = gen::grid3d(12);
    let pool = ReducerPool::new(2, Backend::Mmap);
    let report = pbfs(&pool, &g, 0, 32);
    assert_eq!(report.layers, 3 * 11 + 1);
    assert_eq!(report.distances, bfs_serial(&g, 0));
}
