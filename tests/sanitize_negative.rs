//! Negative control: the SP determinacy-race detector must flag logically
//! parallel unsynchronized writes that ride through the *real* scheduler.
//!
//! The racy-counter and AB/BA lock-inversion controls live in
//! `crates/san/tests/negative.rs` and the use-after-retire control in
//! `crates/core/src/reclaim.rs`; this binary covers the piece that needs the
//! full runtime: offset-span labels threaded through `join` by the spawn/sync
//! hooks. Both branches of a `join` write the same location with no
//! synchronization. Whether or not the right branch is actually stolen, the
//! two strands carry sibling SP labels, so the determinacy detector fires
//! even on the serial (no-steal) execution where FastTrack alone would not.
//!
//! Findings are process-global, so this lives in its own test binary and the
//! clean-run suite lives in another (`sanitize_clean.rs`).
#![cfg(all(feature = "sanitize", not(feature = "model")))]

use cilkm::prelude::*;
use cilkm::san;

#[test]
fn join_branches_racing_on_plain_location_are_reported() {
    // Leaked so the address is never reused by another allocation.
    let cell: &'static mut u64 = Box::leak(Box::new(0));
    let addr = cell as *mut u64 as usize;

    let pool = ReducerPool::new(2, Backend::Mmap);
    pool.run(|| {
        join(
            || {
                san::plain_write(addr, "negative.sp-counter");
            },
            || {
                san::plain_write(addr, "negative.sp-counter");
            },
        );
    });
    drop(pool);

    let report = san::snapshot();
    let hit = report.findings.iter().any(|f| {
        f.detector == san::report::Detector::DeterminacyRace && f.site == "negative.sp-counter"
    });
    assert!(
        hit,
        "expected a determinacy-race finding at negative.sp-counter, got: {}",
        report.to_json()
    );
}
