//! Trace summarization (the engine behind the `cilkm-trace` binary).
//!
//! Consumes a drained [`Trace`] and produces per-worker utilization, a
//! steal/idle breakdown, an estimate of the hypermerge critical path,
//! and kernel-crossing counts per steal — the quantities §8 of the
//! paper argues about (merge work scales with steals, not with views;
//! crossings ride on steals).
//!
//! Span accounting pairs `Begin`/`End` kinds per worker with a depth
//! counter, so nested jobs (a worker stealing while already inside a
//! stolen job) are not double-counted. A span left open at the end of a
//! trace is closed at the worker's last timestamp, which undercounts
//! slightly but never fabricates time.

use crate::event::EventKind;
use crate::trace::Trace;

/// Accumulated activity of one worker (one trace ring).
#[derive(Clone, Debug, Default)]
pub struct WorkerSummary {
    /// Ring label (thread name).
    pub label: String,
    /// Timestamp of the worker's first event.
    pub first_ts_ns: u64,
    /// Timestamp of the worker's last event.
    pub last_ts_ns: u64,
    /// Time inside foreign jobs (outermost `JobBegin`..`JobEnd`).
    pub job_ns: u64,
    /// Time inside hypermerges (`MergeBegin`..`MergeEnd`).
    pub merge_ns: u64,
    /// Time parked (`Park`..`Wake`).
    pub park_ns: u64,
    /// Foreign jobs executed.
    pub jobs: u64,
    /// Hypermerges performed.
    pub merges: u64,
    /// Times the worker parked.
    pub parks: u64,
    /// Successful steals.
    pub steals: u64,
    /// Idle episodes that found nothing to steal (see
    /// [`EventKind::StealFail`] for the once-per-episode semantics).
    pub idle_episodes: u64,
    /// View transferals out of this worker (detach + suspend).
    pub detaches: u64,
    /// View re-installations (attach + resume).
    pub attaches: u64,
    /// Simulated `sys_palloc` crossings.
    pub pallocs: u64,
    /// Simulated `sys_pfree` crossings.
    pub pfrees: u64,
    /// Simulated `sys_pmap` crossings.
    pub pmaps: u64,
    /// Pages touched across all `sys_pmap` crossings.
    pub pmap_pages: u64,
    /// Tasks this worker made stealable ([`EventKind::Spawn`]).
    pub spawns: u64,
    /// Spawned tasks this worker ran inline (popped its own deque;
    /// [`EventKind::StrandBegin`]).
    pub inline_strands: u64,
    /// Sync points this worker's strands reached
    /// ([`EventKind::SyncBegin`]).
    pub syncs: u64,
    /// Events this worker lost to a full ring.
    pub dropped: u64,
}

impl WorkerSummary {
    /// Kernel crossings of any flavor charged to this worker.
    pub fn crossings(&self) -> u64 {
        self.pallocs + self.pfrees + self.pmaps
    }
}

/// Whole-trace rollup.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Per-worker breakdowns, in label order.
    pub workers: Vec<WorkerSummary>,
    /// Earliest timestamp in the trace.
    pub start_ns: u64,
    /// Latest timestamp in the trace.
    pub end_ns: u64,
}

impl TraceSummary {
    /// Traced wall-clock span.
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Successful steals across all workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Kernel crossings across all workers.
    pub fn crossings(&self) -> u64 {
        self.workers.iter().map(|w| w.crossings()).sum()
    }

    /// Crossings per successful steal — the paper's key ratio (map
    /// pressure should ride on steals, not on views). `None` when no
    /// steal happened.
    pub fn crossings_per_steal(&self) -> Option<f64> {
        match self.steals() {
            0 => None,
            s => Some(self.crossings() as f64 / s as f64),
        }
    }

    /// Lower-bound estimate of the hypermerge critical path: the largest
    /// single-worker merge total. Merges on different workers can
    /// overlap, so summing across workers would overstate; the busiest
    /// worker's total is a floor on the serially-dependent merge time.
    pub fn merge_critical_path_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.merge_ns).max().unwrap_or(0)
    }

    /// Fraction of the traced span worker `w` spent inside foreign jobs.
    pub fn utilization(&self, w: &WorkerSummary) -> f64 {
        match self.span_ns() {
            0 => 0.0,
            span => w.job_ns as f64 / span as f64,
        }
    }
}

/// Tracks one `Begin`/`End` pair kind with a depth counter so nesting is
/// not double-counted.
#[derive(Default)]
struct SpanAcc {
    depth: u32,
    open_ts: u64,
    total_ns: u64,
    count: u64,
}

impl SpanAcc {
    fn begin(&mut self, ts: u64) {
        if self.depth == 0 {
            self.open_ts = ts;
            self.count += 1;
        }
        self.depth += 1;
    }

    fn end(&mut self, ts: u64) {
        // An End with no matching Begin (trace started mid-span) is
        // ignored rather than inventing time.
        if self.depth > 0 {
            self.depth -= 1;
            if self.depth == 0 {
                self.total_ns += ts.saturating_sub(self.open_ts);
            }
        }
    }

    fn close(&mut self, ts: u64) -> u64 {
        if self.depth > 0 {
            self.depth = 0;
            self.total_ns += ts.saturating_sub(self.open_ts);
        }
        self.total_ns
    }
}

/// Builds the per-worker and whole-trace rollup.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut workers = Vec::with_capacity(trace.threads.len());
    let mut start_ns = u64::MAX;
    let mut end_ns = 0u64;
    for t in &trace.threads {
        let mut w = WorkerSummary {
            label: t.label.clone(),
            dropped: t.dropped,
            ..WorkerSummary::default()
        };
        let (mut job, mut merge, mut park) =
            (SpanAcc::default(), SpanAcc::default(), SpanAcc::default());
        let mut last_ts = 0u64;
        for (i, ev) in t.events.iter().enumerate() {
            if i == 0 {
                w.first_ts_ns = ev.ts_ns;
            }
            last_ts = ev.ts_ns;
            match ev.kind {
                EventKind::JobBegin => job.begin(ev.ts_ns),
                EventKind::JobEnd => job.end(ev.ts_ns),
                EventKind::MergeBegin => merge.begin(ev.ts_ns),
                EventKind::MergeEnd => merge.end(ev.ts_ns),
                EventKind::Park => park.begin(ev.ts_ns),
                EventKind::Wake => park.end(ev.ts_ns),
                EventKind::StealSuccess => w.steals += 1,
                EventKind::StealFail => w.idle_episodes += 1,
                EventKind::Detach => w.detaches += 1,
                EventKind::Attach => w.attaches += 1,
                EventKind::Palloc => w.pallocs += 1,
                EventKind::Pfree => w.pfrees += 1,
                EventKind::Pmap => {
                    w.pmaps += 1;
                    w.pmap_pages += ev.arg;
                }
                EventKind::Spawn => w.spawns += 1,
                EventKind::StrandBegin => w.inline_strands += 1,
                EventKind::SyncBegin => w.syncs += 1,
                EventKind::RegionBegin
                | EventKind::RegionEnd
                | EventKind::StrandEnd
                | EventKind::SyncEnd => {}
            }
        }
        w.last_ts_ns = last_ts;
        w.job_ns = job.close(last_ts);
        w.jobs = job.count;
        w.merge_ns = merge.close(last_ts);
        w.merges = merge.count;
        w.park_ns = park.close(last_ts);
        w.parks = park.count;
        if !t.events.is_empty() {
            start_ns = start_ns.min(w.first_ts_ns);
            end_ns = end_ns.max(w.last_ts_ns);
        }
        workers.push(w);
    }
    if start_ns == u64::MAX {
        start_ns = 0;
    }
    TraceSummary {
        workers,
        start_ns,
        end_ns,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the summary as the text report `cilkm-trace` prints.
pub fn render(s: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} threads over {:.3} ms",
        s.workers.len(),
        ms(s.span_ns())
    );
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>10} {:>10} {:>10} {:>7} {:>6} {:>6} {:>9} {:>8}",
        "worker",
        "util%",
        "job_ms",
        "merge_ms",
        "park_ms",
        "steals",
        "idle",
        "merges",
        "crossings",
        "dropped"
    );
    for w in &s.workers {
        let _ = writeln!(
            out,
            "{:<18} {:>6.1} {:>10.3} {:>10.3} {:>10.3} {:>7} {:>6} {:>6} {:>9} {:>8}",
            w.label,
            100.0 * s.utilization(w),
            ms(w.job_ns),
            ms(w.merge_ns),
            ms(w.park_ns),
            w.steals,
            w.idle_episodes,
            w.merges,
            w.crossings(),
            w.dropped,
        );
    }
    let _ = writeln!(
        out,
        "steals: {}   kernel crossings: {} ({} palloc, {} pfree, {} pmap / {} pages)",
        s.steals(),
        s.crossings(),
        s.workers.iter().map(|w| w.pallocs).sum::<u64>(),
        s.workers.iter().map(|w| w.pfrees).sum::<u64>(),
        s.workers.iter().map(|w| w.pmaps).sum::<u64>(),
        s.workers.iter().map(|w| w.pmap_pages).sum::<u64>(),
    );
    let (spawns, syncs): (u64, u64) = (
        s.workers.iter().map(|w| w.spawns).sum(),
        s.workers.iter().map(|w| w.syncs).sum(),
    );
    if spawns > 0 || syncs > 0 {
        let _ = writeln!(
            out,
            "dag events: {} spawns, {} syncs, {} inline strands (run `cilkm-trace --dag` for work/span)",
            spawns,
            syncs,
            s.workers.iter().map(|w| w.inline_strands).sum::<u64>(),
        );
    }
    match s.crossings_per_steal() {
        Some(r) => {
            let _ = writeln!(out, "crossings per steal: {r:.2}");
        }
        None => {
            let _ = writeln!(out, "crossings per steal: n/a (no steals)");
        }
    }
    let _ = writeln!(
        out,
        "merge critical-path estimate: {:.3} ms (busiest worker's merge total)",
        ms(s.merge_critical_path_ns())
    );
    if s.workers.iter().any(|w| w.dropped > 0) {
        let _ = writeln!(
            out,
            "warning: {} events dropped (rings full — raise CILKM_TRACE_CAP); durations undercount",
            s.workers.iter().map(|w| w.dropped).sum::<u64>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::ThreadTrace;

    fn ev(ts: u64, kind: EventKind, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            arg,
        }
    }

    #[test]
    fn spans_pair_and_nest_without_double_counting() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                label: "w0".into(),
                events: vec![
                    ev(100, EventKind::StealSuccess, 1),
                    ev(100, EventKind::JobBegin, 0),
                    // Nested steal inside the job must not double-count.
                    ev(200, EventKind::JobBegin, 0),
                    ev(300, EventKind::JobEnd, 0),
                    ev(400, EventKind::MergeBegin, 0),
                    ev(450, EventKind::MergeEnd, 0),
                    ev(500, EventKind::JobEnd, 0),
                    ev(600, EventKind::Park, 0),
                    ev(900, EventKind::Wake, 0),
                ],
                dropped: 0,
            }],
        };
        let s = summarize(&trace);
        let w = &s.workers[0];
        assert_eq!(w.job_ns, 400, "outermost job span only");
        assert_eq!(w.jobs, 1);
        assert_eq!(w.merge_ns, 50);
        assert_eq!(w.park_ns, 300);
        assert_eq!(w.steals, 1);
        assert_eq!(s.span_ns(), 800);
        assert!((s.utilization(w) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn open_spans_close_at_last_event_and_orphan_ends_are_ignored() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                label: "w0".into(),
                events: vec![
                    ev(50, EventKind::JobEnd, 0), // orphan: trace began mid-job
                    ev(100, EventKind::MergeBegin, 0),
                    ev(400, EventKind::StealSuccess, 0), // merge still open
                ],
                dropped: 0,
            }],
        };
        let w = &summarize(&trace).workers[0];
        assert_eq!(w.job_ns, 0);
        assert_eq!(w.merge_ns, 300, "open merge closes at the last event");
    }

    #[test]
    fn rollup_ratios_and_critical_path() {
        let trace = Trace {
            threads: vec![
                ThreadTrace {
                    label: "w0".into(),
                    events: vec![
                        ev(0, EventKind::StealSuccess, 1),
                        ev(10, EventKind::Pmap, 8),
                        ev(20, EventKind::Palloc, 0),
                        ev(30, EventKind::MergeBegin, 0),
                        ev(130, EventKind::MergeEnd, 0),
                    ],
                    dropped: 0,
                },
                ThreadTrace {
                    label: "w1".into(),
                    events: vec![
                        ev(5, EventKind::StealSuccess, 0),
                        ev(15, EventKind::Pfree, 0),
                        ev(40, EventKind::MergeBegin, 0),
                        ev(300, EventKind::MergeEnd, 0),
                    ],
                    dropped: 0,
                },
            ],
        };
        let s = summarize(&trace);
        assert_eq!(s.steals(), 2);
        assert_eq!(s.crossings(), 3);
        assert_eq!(s.crossings_per_steal(), Some(1.5));
        assert_eq!(s.merge_critical_path_ns(), 260);
        assert_eq!(s.span_ns(), 300);
        let report = render(&s);
        assert!(report.contains("crossings per steal: 1.50"));
        assert!(report.contains("w0"));
        assert!(report.contains("w1"));
    }

    #[test]
    fn empty_trace_is_harmless() {
        let s = summarize(&Trace::default());
        assert_eq!(s.span_ns(), 0);
        assert_eq!(s.crossings_per_steal(), None);
        let report = render(&s);
        assert!(report.contains("no steals"));
    }
}
