//! Model-checked tracer protocol tests (run with `--features model`).
//!
//! The claim under test (satellite of PR 3): draining a trace ring is
//! race-free *while the owning thread keeps emitting* — `Pool::run` can
//! collect a trace without quiescing workers. The ring's publication
//! atomics go through `crate::msync` and every slot access is reported
//! to the checker's happens-before race detector, so `model` explores
//! every schedule and every allowed stale read of `len`.

use cilkm_checker as checker;

use crate::event::{Event, EventKind};
use crate::ring::TraceRing;

fn ev(ts: u64) -> Event {
    Event {
        ts_ns: ts,
        kind: EventKind::StealSuccess,
        arg: ts,
    }
}

/// Concurrent drain reads a consistent published prefix under every
/// interleaving, with no data race: each drained event is exactly what
/// the writer pushed at that index, and the race detector stays silent.
#[test]
fn ring_drain_races_writer_cleanly() {
    let report = checker::try_model(|| {
        let (mut writer, ring) = TraceRing::new(2, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
            writer.push(ev(2));
        });
        // Drain concurrently with the pushes: whatever prefix is
        // published must be internally consistent.
        let snap = ring.snapshot();
        assert!(snap.len() <= 2);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64 + 1, "published prefix is immutable");
        }
        t.join().unwrap();
        // After the writer is joined, everything is visible.
        let all = ring.snapshot();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].ts_ns, 2);
        assert_eq!(ring.dropped(), 0);
    })
    .expect("concurrent drain must be race-free");
    assert!(
        report.schedules > 1,
        "the drain/push race must actually interleave (explored {} schedules)",
        report.schedules
    );
}

/// Negative control: reading one slot past the published length *is* a
/// data race, and the checker reports it. This proves the clean verdict
/// above comes from the protocol, not from a detector that is not
/// looking at the slots.
#[test]
fn ring_overread_is_detected_as_race() {
    let err = checker::try_model(|| {
        let (mut writer, ring) = TraceRing::new(1, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
        });
        let _ = ring.snapshot_overread();
        t.join().unwrap();
    })
    .expect_err("overreading an unpublished slot must race the writer");
    assert!(
        err.message.contains("data race"),
        "unexpected failure: {}",
        err.message
    );
}

/// PR-8 satellite: reconstructing the SP-DAG from rings snapshotted
/// *while their owners are still emitting* is race-free and total. Two
/// workers emit a real strand event sequence (a root spawning a child
/// that gets "stolen"); the drainer snapshots both rings at an arbitrary
/// interleaving point and runs [`crate::dag::build`] on whatever
/// published prefix it saw. Under every schedule the ring protocol keeps
/// the race detector silent, the analyzer never panics, and its numbers
/// stay bounded by the event window — truncation degrades to counted
/// warnings, exactly the contract `cilkm-trace --dag` relies on when
/// tracing a live pool.
#[test]
fn dag_reconstruction_races_writers_cleanly() {
    fn at(ts: u64, kind: EventKind, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            arg,
        }
    }
    let report = checker::try_model(|| {
        let (mut w0, ring0) = TraceRing::new(8, "w0");
        let (mut w1, ring1) = TraceRing::new(8, "w1");
        let t0 = checker::thread::spawn(move || {
            w0.push(at(0, EventKind::JobBegin, 1));
            w0.push(at(10, EventKind::Spawn, 2));
            w0.push(at(20, EventKind::SyncBegin, 2));
            w0.push(at(90, EventKind::SyncEnd, 2));
            w0.push(at(100, EventKind::JobEnd, 1));
        });
        let t1 = checker::thread::spawn(move || {
            w1.push(at(30, EventKind::JobBegin, 2));
            w1.push(at(80, EventKind::JobEnd, 2));
        });
        // Snapshot mid-emission: any published prefix must analyze.
        let trace = crate::trace::Trace {
            threads: vec![
                crate::trace::ThreadTrace {
                    label: "w0".into(),
                    events: ring0.snapshot(),
                    dropped: ring0.dropped(),
                },
                crate::trace::ThreadTrace {
                    label: "w1".into(),
                    events: ring1.snapshot(),
                    dropped: ring1.dropped(),
                },
            ],
        };
        let partial = crate::dag::build(&trace);
        assert!(partial.span_ns <= 100, "span bounded by the event window");
        assert!(partial.strands <= 2);
        t0.join().unwrap();
        t1.join().unwrap();
        // After both writers join, the full DAG is exact: the root
        // computes for 30 ns (sync wait [20,90] is not work), the child
        // for 50 ns on the other worker; the critical path is 10 (to
        // the spawn) + 50 (the child) + 10 (after the sync) = 70.
        let full = crate::dag::build(&crate::trace::Trace {
            threads: vec![
                crate::trace::ThreadTrace {
                    label: "w0".into(),
                    events: ring0.snapshot(),
                    dropped: 0,
                },
                crate::trace::ThreadTrace {
                    label: "w1".into(),
                    events: ring1.snapshot(),
                    dropped: 0,
                },
            ],
        });
        assert_eq!(full.strands, 2);
        assert_eq!(full.span_ns, 70);
        assert_eq!(full.work_ns, 30 + 50);
        assert_eq!(full.warnings, 0);
    })
    .expect("snapshot + DAG build must be race-free against live writers");
    assert!(
        report.schedules > 1,
        "the drain/emit race must actually interleave (explored {} schedules)",
        report.schedules
    );
}

/// A full ring drops instead of wrapping, under every schedule — so a
/// drainer can never observe a slot being overwritten.
#[test]
fn full_ring_never_overwrites_published_slots() {
    checker::model(|| {
        let (mut writer, ring) = TraceRing::new(1, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
            writer.push(ev(2)); // ring full: must drop, not wrap
        });
        let snap = ring.snapshot();
        for e in &snap {
            assert_eq!(e.ts_ns, 1, "slot 0 only ever holds the first event");
        }
        t.join().unwrap();
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.dropped(), 1);
    });
}
