//! Model-checked tracer protocol tests (run with `--features model`).
//!
//! The claim under test (satellite of PR 3): draining a trace ring is
//! race-free *while the owning thread keeps emitting* — `Pool::run` can
//! collect a trace without quiescing workers. The ring's publication
//! atomics go through `crate::msync` and every slot access is reported
//! to the checker's happens-before race detector, so `model` explores
//! every schedule and every allowed stale read of `len`.

use cilkm_checker as checker;

use crate::event::{Event, EventKind};
use crate::ring::TraceRing;

fn ev(ts: u64) -> Event {
    Event {
        ts_ns: ts,
        kind: EventKind::StealSuccess,
        arg: ts,
    }
}

/// Concurrent drain reads a consistent published prefix under every
/// interleaving, with no data race: each drained event is exactly what
/// the writer pushed at that index, and the race detector stays silent.
#[test]
fn ring_drain_races_writer_cleanly() {
    let report = checker::try_model(|| {
        let (mut writer, ring) = TraceRing::new(2, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
            writer.push(ev(2));
        });
        // Drain concurrently with the pushes: whatever prefix is
        // published must be internally consistent.
        let snap = ring.snapshot();
        assert!(snap.len() <= 2);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64 + 1, "published prefix is immutable");
        }
        t.join().unwrap();
        // After the writer is joined, everything is visible.
        let all = ring.snapshot();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].ts_ns, 2);
        assert_eq!(ring.dropped(), 0);
    })
    .expect("concurrent drain must be race-free");
    assert!(
        report.schedules > 1,
        "the drain/push race must actually interleave (explored {} schedules)",
        report.schedules
    );
}

/// Negative control: reading one slot past the published length *is* a
/// data race, and the checker reports it. This proves the clean verdict
/// above comes from the protocol, not from a detector that is not
/// looking at the slots.
#[test]
fn ring_overread_is_detected_as_race() {
    let err = checker::try_model(|| {
        let (mut writer, ring) = TraceRing::new(1, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
        });
        let _ = ring.snapshot_overread();
        t.join().unwrap();
    })
    .expect_err("overreading an unpublished slot must race the writer");
    assert!(
        err.message.contains("data race"),
        "unexpected failure: {}",
        err.message
    );
}

/// A full ring drops instead of wrapping, under every schedule — so a
/// drainer can never observe a slot being overwritten.
#[test]
fn full_ring_never_overwrites_published_slots() {
    checker::model(|| {
        let (mut writer, ring) = TraceRing::new(1, "w");
        let t = checker::thread::spawn(move || {
            writer.push(ev(1));
            writer.push(ev(2)); // ring full: must drop, not wrap
        });
        let snap = ring.snapshot();
        for e in &snap {
            assert_eq!(e.ts_ns, 1, "slot 0 only ever holds the first event");
        }
        t.join().unwrap();
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.dropped(), 1);
    });
}
