//! Offline series-parallel DAG reconstruction and critical-path
//! attribution.
//!
//! The runtime's spawn/sync/strand-boundary events ([`EventKind::Spawn`]
//! and friends, PR 8) make the computation's SP-DAG recoverable from the
//! per-worker rings alone:
//!
//! * a **strand** is one task execution — an inline
//!   [`EventKind::StrandBegin`]`..`[`EventKind::StrandEnd`] pair, or a
//!   foreign [`EventKind::JobBegin`]`..`[`EventKind::JobEnd`] pair whose
//!   `arg` carries the task id. Strands nest per worker (a worker that
//!   suspends at a sync may execute foreign jobs in the middle of its
//!   own strand), so each worker's event stream parses with a frame
//!   stack;
//! * inside a strand, [`EventKind::Spawn`] marks where a child task
//!   became stealable, and a [`EventKind::SyncBegin`]`..`
//!   [`EventKind::SyncEnd`] window marks a sync: a `join` sync's id is
//!   the joined task's id, a `scope` sync carries a fresh id and joins
//!   *every* task spawned so far in the strand;
//! * segment lengths between those boundaries are the strand's serial
//!   work; [`EventKind::MergeBegin`]/[`EventKind::MergeEnd`] inside a
//!   sync window time the hypermerge, the last detach-flavored
//!   [`EventKind::Detach`] before a foreign strand's end starts its view
//!   transferal, and `Palloc`/`Pfree`/`Pmap` instants are the kernel
//!   crossings the strand incurred.
//!
//! [`build`] replays each worker's stream into strand records, resolves
//! the spawn/sync edges into the DAG, and computes **work** (total
//! segment time), **span** (critical path with reducer burden
//! subtracted), and **burdened span** (as executed) — then walks the
//! burdened critical path to produce a top-K attribution table: which
//! hypermerges, view transferals, and kernel crossings sit *on* the
//! span, and what fraction of it they are. [`DagAnalysis::render`]
//! prints the table; [`crate::export::write_chrome_json_with_path`]
//! draws the path as a named Perfetto track.
//!
//! Truncated traces (dropped events, rings cut mid-strand, tasks still
//! running at drain time) degrade to counted warnings, never panics:
//! the analyzer is safe to run on a snapshot taken while workers are
//! still emitting (verified under the model checker).
//!
//! One approximation is deliberate: a task spawned on a scope from
//! *inside another spawned task* (cross-strand scope spawn) dangles at
//! its spawning strand's end and is folded into the nearest enclosing
//! sync rather than the scope's own sync. This bounds the span from
//! above by at most the time between those two syncs and keeps the
//! reconstruction single-pass.

use std::collections::{HashMap, HashSet};

use crate::event::{arg_low, EventKind};
use crate::trace::Trace;

/// One reconstructed strand (task execution).
#[derive(Clone, Debug, Default)]
struct StrandRec {
    /// Task id (nonzero; id-0 frames are pre-enable noise and are
    /// parsed for nesting but not recorded).
    id: u64,
    /// Index of the worker (thread) that ran the strand.
    worker: usize,
    /// Timestamp of the strand's begin event.
    begin_ts: u64,
    /// Timestamp of the strand's end event (or the worker's last event
    /// for a truncated strand).
    end_ts: u64,
    /// Spawn/sync/segment structure, in execution order.
    items: Vec<Item>,
    /// Tail view-transferal time (last detach to strand end); only
    /// foreign strands detach.
    transferal_ns: u64,
    /// Kernel crossings charged to this strand.
    crossings: u64,
    /// The strand's end event was never seen (ring cut).
    truncated: bool,
}

/// One element of a strand's serial structure.
#[derive(Clone, Debug)]
enum Item {
    /// Serial execution between two boundaries; `end_ts` is the
    /// boundary that closed it.
    Seg { ns: u64 },
    /// A child task became stealable here.
    Spawn { id: u64, ts: u64 },
    /// A sync window: the strand waited for `id` (join) or for every
    /// open spawn (scope), merged for `merge_ns`, and resumed at
    /// `end_ts`.
    Sync {
        id: u64,
        begin_ts: u64,
        end_ts: u64,
        merge_ns: u64,
        merge_begin_ts: u64,
    },
}

/// A `(span, burdened span)` pair, in ns.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct PathVal {
    span: u64,
    bspan: u64,
}

impl PathVal {
    fn max(self, other: PathVal) -> PathVal {
        PathVal {
            span: self.span.max(other.span),
            bspan: self.bspan.max(other.bspan),
        }
    }

    fn offset(self, base: PathVal) -> PathVal {
        PathVal {
            span: base.span + self.span,
            bspan: base.bspan + self.bspan,
        }
    }
}

/// Resolution result for one strand, relative to its own start.
#[derive(Clone, Debug, Default)]
struct Res {
    /// Path value at the strand's end (span excludes the tail
    /// transferal; bspan includes it).
    end: PathVal,
    /// Completion paths of spawns left open at strand end (already
    /// flattened), to be folded at the nearest enclosing sync.
    dangling: Vec<PathVal>,
}

impl Res {
    /// The strand's overall contribution: the later of its end path and
    /// any dangling completion path (elementwise, per side).
    fn flat(&self) -> PathVal {
        self.dangling.iter().fold(self.end, |acc, d| acc.max(*d))
    }
}

/// One slice of the reconstructed critical path (for the Perfetto
/// track and the attribution walk).
#[derive(Clone, Debug)]
pub struct PathNode {
    /// Human-readable label (`strand 17`, `hypermerge @ sync 5`).
    pub label: String,
    /// Label of the worker the slice ran on.
    pub worker: String,
    /// Slice start (trace clock, ns).
    pub begin_ts_ns: u64,
    /// Slice end (ns).
    pub end_ts_ns: u64,
    /// Reducer burden inside this slice (nonzero for merge slices and
    /// for strand slices with tail transferal).
    pub burden_ns: u64,
}

/// One row of the critical-path attribution table.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// What sits on the span (`hypermerge @ sync 5 (worker w0)`).
    pub what: String,
    /// Its length on the burdened span, ns.
    pub ns: u64,
}

/// The offline work/span analysis of one trace.
#[derive(Clone, Debug, Default)]
pub struct DagAnalysis {
    /// Total strand segment time across all workers (ns). Excludes
    /// hypermerge windows, includes view transferal — the same
    /// convention as the online profiler, so the two agree.
    pub work_ns: u64,
    /// Critical-path length with reducer burden (merge + transferal)
    /// subtracted (ns).
    pub span_ns: u64,
    /// Critical-path length as executed (ns).
    pub burdened_span_ns: u64,
    /// Strands reconstructed.
    pub strands: usize,
    /// Spawn edges seen.
    pub spawns: usize,
    /// Sync windows seen.
    pub syncs: usize,
    /// Spawned task ids with no recorded strand (stolen before tracing
    /// was on, dropped from a full ring, or still running at drain).
    pub incomplete_spawns: usize,
    /// Structural warnings: unmatched begin/end events, id-0 frames,
    /// strands cut by the end of their ring.
    pub warnings: usize,
    /// Kernel crossings on the critical path.
    pub crossings_on_path: u64,
    /// The burdened critical path, in execution order.
    pub critical_path: Vec<PathNode>,
    /// Burden on the path, largest first.
    pub attribution: Vec<Attribution>,
}

impl DagAnalysis {
    /// Ideal parallelism: work / span (0.0 when degenerate).
    pub fn parallelism(&self) -> f64 {
        ratio(self.work_ns, self.span_ns)
    }

    /// Burdened parallelism: work / burdened span.
    pub fn burdened_parallelism(&self) -> f64 {
        ratio(self.work_ns, self.burdened_span_ns)
    }

    /// Renders the headline numbers and the top-`k` critical-path
    /// attribution table.
    pub fn render(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "series-parallel DAG (offline reconstruction)");
        let _ = writeln!(
            out,
            "  strands: {}   spawns: {}   syncs: {}",
            self.strands, self.spawns, self.syncs
        );
        let _ = writeln!(out, "  work:            {:>14} ns", self.work_ns);
        let _ = writeln!(out, "  span:            {:>14} ns", self.span_ns);
        let _ = writeln!(out, "  burdened span:   {:>14} ns", self.burdened_span_ns);
        let _ = writeln!(out, "  parallelism:     {:>14.2}", self.parallelism());
        let _ = writeln!(
            out,
            "  burdened par.:   {:>14.2}",
            self.burdened_parallelism()
        );
        let burden_total: u64 = self.attribution.iter().map(|a| a.ns).sum();
        let _ = writeln!(
            out,
            "critical-path attribution (burden on span: {} ns, {:.2}% of burdened span; {} kernel crossings on path)",
            burden_total,
            100.0 * ratio(burden_total, self.burdened_span_ns),
            self.crossings_on_path
        );
        let _ = writeln!(out, "  {:>4}  {:>12}  {:>6}  what", "rank", "ns", "pct");
        for (i, a) in self.attribution.iter().take(k).enumerate() {
            let _ = writeln!(
                out,
                "  {:>4}  {:>12}  {:>5.2}%  {}",
                i + 1,
                a.ns,
                100.0 * ratio(a.ns, self.burdened_span_ns),
                a.what
            );
        }
        if self.attribution.len() > k {
            let _ = writeln!(
                out,
                "  ... {} more entries below the top {k}",
                self.attribution.len() - k
            );
        }
        if self.incomplete_spawns > 0 || self.warnings > 0 {
            let _ = writeln!(
                out,
                "warning: {} incomplete spawns, {} structural warnings (truncated rings undercount the span)",
                self.incomplete_spawns, self.warnings
            );
        }
        out
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Parser state for one open strand frame on a worker.
struct Frame {
    rec: StrandRec,
    /// Start of the currently accumulating segment (`None` while the
    /// frame is suspended inside a sync window).
    seg_start: Option<u64>,
    /// Open sync window: `(id, begin_ts, merge_ns, merge_begin_ts)`.
    open_sync: Option<(u64, u64, u64, u64)>,
    /// Open merge interval start inside the sync window.
    in_merge: Option<u64>,
    /// Timestamp of the last detach-flavored `Detach`.
    last_detach: Option<u64>,
}

impl Frame {
    fn new(id: u64, worker: usize, begin_ts: u64, live: bool) -> Frame {
        Frame {
            rec: StrandRec {
                id,
                worker,
                begin_ts,
                ..StrandRec::default()
            },
            seg_start: live.then_some(begin_ts),
            open_sync: None,
            in_merge: None,
            last_detach: None,
        }
    }

    /// True for real strands (id 0 marks the pseudo-frame at the bottom
    /// of each worker's stack and frames begun before tracing enabled).
    fn live(&self) -> bool {
        self.rec.id != 0
    }

    fn close_seg(&mut self, ts: u64) {
        if let Some(t0) = self.seg_start.take() {
            if self.live() {
                self.rec.items.push(Item::Seg {
                    ns: ts.saturating_sub(t0),
                });
            }
        }
    }
}

/// Builds the DAG analysis from a drained (or snapshotted) trace.
pub fn build(trace: &Trace) -> DagAnalysis {
    let mut analysis = DagAnalysis::default();
    let mut strands: HashMap<u64, StrandRec> = HashMap::new();
    let mut labels: Vec<String> = Vec::with_capacity(trace.threads.len());

    for (worker, t) in trace.threads.iter().enumerate() {
        labels.push(t.label.clone());
        // The bottom pseudo-frame absorbs events outside any strand
        // (idle-worker noise, the caller thread's region events).
        let mut stack: Vec<Frame> = vec![Frame::new(0, worker, 0, false)];
        let finalize = |frame: &mut Frame,
                        ts: u64,
                        truncated: bool,
                        strands: &mut HashMap<u64, StrandRec>,
                        analysis: &mut DagAnalysis| {
            frame.close_seg(ts);
            frame.rec.end_ts = ts;
            frame.rec.truncated = truncated;
            if truncated {
                analysis.warnings += 1;
            }
            if let Some(d) = frame.last_detach {
                frame.rec.transferal_ns = ts.saturating_sub(d);
            }
            if frame.live() {
                let rec = std::mem::take(&mut frame.rec);
                // A reused id (two regions in one window) keeps the
                // longer record; counted as a warning either way.
                if strands.insert(rec.id, rec).is_some() {
                    analysis.warnings += 1;
                }
            }
        };
        for ev in &t.events {
            let ts = ev.ts_ns;
            match ev.kind {
                EventKind::Spawn => {
                    let top = stack.last_mut().unwrap();
                    if top.live() {
                        top.close_seg(ts);
                        top.rec.items.push(Item::Spawn { id: ev.arg, ts });
                        top.seg_start = Some(ts);
                    }
                }
                EventKind::JobBegin | EventKind::StrandBegin => {
                    let top = stack.last_mut().unwrap();
                    // The enclosing frame is either suspended at a sync
                    // (seg already closed) or the pseudo-frame; a live
                    // open segment here means an unexpected nesting —
                    // close it so time is not double counted.
                    if top.seg_start.is_some() && top.live() {
                        top.close_seg(ts);
                        analysis.warnings += 1;
                    }
                    if ev.arg == 0 {
                        analysis.warnings += 1;
                    }
                    stack.push(Frame::new(ev.arg, worker, ts, ev.arg != 0));
                }
                EventKind::JobEnd | EventKind::StrandEnd => {
                    if stack.len() > 1 {
                        let mut frame = stack.pop().unwrap();
                        finalize(&mut frame, ts, false, &mut strands, &mut analysis);
                    } else {
                        // Orphan end: the begin predates the window.
                        analysis.warnings += 1;
                    }
                }
                EventKind::SyncBegin => {
                    let top = stack.last_mut().unwrap();
                    if top.live() {
                        top.close_seg(ts);
                        top.open_sync = Some((ev.arg, ts, 0, 0));
                    }
                }
                EventKind::SyncEnd => {
                    let top = stack.last_mut().unwrap();
                    if let Some((id, begin_ts, merge_ns, merge_begin_ts)) = top.open_sync.take() {
                        top.rec.items.push(Item::Sync {
                            id,
                            begin_ts,
                            end_ts: ts,
                            merge_ns,
                            merge_begin_ts,
                        });
                        top.seg_start = Some(ts);
                    } else if top.live() {
                        analysis.warnings += 1;
                    }
                }
                EventKind::MergeBegin => {
                    let top = stack.last_mut().unwrap();
                    if top.open_sync.is_some() {
                        top.in_merge = Some(ts);
                    }
                }
                EventKind::MergeEnd => {
                    let top = stack.last_mut().unwrap();
                    if let (Some(t0), Some(sync)) = (top.in_merge.take(), top.open_sync.as_mut()) {
                        sync.2 += ts.saturating_sub(t0);
                        if sync.3 == 0 {
                            sync.3 = t0;
                        }
                    }
                }
                EventKind::Detach => {
                    // Flag 0 = detach (transferal out at strand end);
                    // flag 1 = suspension. Cpu id rides the high bits.
                    if arg_low(ev.arg) == 0 {
                        stack.last_mut().unwrap().last_detach = Some(ts);
                    }
                }
                EventKind::Palloc | EventKind::Pfree | EventKind::Pmap => {
                    let top = stack.last_mut().unwrap();
                    if top.live() {
                        top.rec.crossings += 1;
                    }
                }
                EventKind::RegionBegin
                | EventKind::RegionEnd
                | EventKind::StealSuccess
                | EventKind::StealFail
                | EventKind::Attach
                | EventKind::Park
                | EventKind::Wake => {}
            }
        }
        // Frames still open at the end of the ring were cut mid-strand.
        let last_ts = t.events.last().map(|e| e.ts_ns).unwrap_or(0);
        while stack.len() > 1 {
            let mut frame = stack.pop().unwrap();
            finalize(&mut frame, last_ts, true, &mut strands, &mut analysis);
        }
    }

    analysis.strands = strands.len();
    analysis.work_ns = strands
        .values()
        .flat_map(|s| &s.items)
        .map(|i| match i {
            Item::Seg { ns } => *ns,
            _ => 0,
        })
        .sum();

    // Statically determine which strand ids are accounted for inside
    // some other strand (joined at a sync, or dangling at its parent's
    // end); the rest are roots.
    let mut accounted: HashSet<u64> = HashSet::new();
    let mut spawned: HashSet<u64> = HashSet::new();
    for s in strands.values() {
        let mut open: Vec<u64> = Vec::new();
        for item in &s.items {
            match item {
                Item::Seg { .. } => {}
                Item::Spawn { id, .. } => {
                    analysis.spawns += 1;
                    spawned.insert(*id);
                    open.push(*id);
                }
                Item::Sync { id, .. } => {
                    analysis.syncs += 1;
                    if let Some(pos) = open.iter().position(|o| o == id) {
                        accounted.insert(open.remove(pos));
                    } else {
                        accounted.extend(open.drain(..));
                    }
                }
            }
        }
        accounted.extend(open);
    }
    analysis.incomplete_spawns = spawned
        .iter()
        .filter(|id| !strands.contains_key(id))
        .count();

    let resolver = Resolver {
        strands: &strands,
        memo: HashMap::new(),
        visiting: HashSet::new(),
    };
    let mut resolver = resolver;
    let mut roots: Vec<u64> = strands
        .keys()
        .copied()
        .filter(|id| !accounted.contains(id))
        .collect();
    roots.sort_unstable();
    let mut best_root: Option<(u64, PathVal)> = None;
    for &root in &roots {
        let val = resolver.resolve(root).flat();
        if best_root.map(|(_, b)| val.bspan > b.bspan).unwrap_or(true) {
            best_root = Some((root, val));
        }
    }
    if let Some((root, val)) = best_root {
        analysis.span_ns = val.span;
        analysis.burdened_span_ns = val.bspan;
        let mut walker = Walker {
            strands: &strands,
            memo: &resolver.memo,
            labels: &labels,
            nodes: Vec::new(),
            attribution: Vec::new(),
            crossings: 0,
        };
        walker.walk(root);
        walker.attribution.sort_by_key(|a| std::cmp::Reverse(a.ns));
        analysis.critical_path = walker.nodes;
        analysis.attribution = walker.attribution;
        analysis.crossings_on_path = walker.crossings;
    }
    analysis
}

/// Memoized bottom-up span resolution.
struct Resolver<'a> {
    strands: &'a HashMap<u64, StrandRec>,
    memo: HashMap<u64, Res>,
    visiting: HashSet<u64>,
}

impl Resolver<'_> {
    fn resolve(&mut self, id: u64) -> Res {
        if let Some(r) = self.memo.get(&id) {
            return r.clone();
        }
        // Corrupted traces could alias ids into a cycle; treat a
        // re-entered strand as unresolvable rather than recursing
        // forever.
        if !self.visiting.insert(id) {
            return Res::default();
        }
        let res = match self.strands.get(&id) {
            Some(rec) => self.resolve_rec(&rec.clone()),
            None => Res::default(),
        };
        self.visiting.remove(&id);
        self.memo.insert(id, res.clone());
        res
    }

    fn resolve_rec(&mut self, rec: &StrandRec) -> Res {
        let mut at = PathVal::default();
        let mut open: Vec<(u64, PathVal)> = Vec::new();
        let mut dangling: Vec<PathVal> = Vec::new();
        for item in &rec.items {
            match item {
                Item::Seg { ns } => {
                    at.span += ns;
                    at.bspan += ns;
                }
                Item::Spawn { id, .. } => open.push((*id, at)),
                Item::Sync { id, merge_ns, .. } => {
                    let joinset: Vec<(u64, PathVal)> =
                        match open.iter().position(|(oid, _)| oid == id) {
                            Some(pos) => vec![open.remove(pos)],
                            None => std::mem::take(&mut open),
                        };
                    let mut best = at;
                    for (cid, base) in joinset {
                        let child = self.resolve(cid).flat().offset(base);
                        best = best.max(child);
                    }
                    at = best;
                    at.bspan += merge_ns;
                }
            }
        }
        // Spawns never synced in this strand dangle up to the caller.
        for (cid, base) in open {
            dangling.push(self.resolve(cid).flat().offset(base));
        }
        // The tail transferal is burden: real time (stays in bspan) but
        // not user-span time.
        at.span = at.span.saturating_sub(rec.transferal_ns);
        Res { end: at, dangling }
    }
}

/// Top-down argmax walk of the burdened critical path.
struct Walker<'a> {
    strands: &'a HashMap<u64, StrandRec>,
    memo: &'a HashMap<u64, Res>,
    labels: &'a [String],
    nodes: Vec<PathNode>,
    attribution: Vec<Attribution>,
    crossings: u64,
}

impl Walker<'_> {
    fn label_of(&self, worker: usize) -> String {
        self.labels
            .get(worker)
            .cloned()
            .unwrap_or_else(|| format!("worker-{worker}"))
    }

    fn flat_of(&self, id: u64) -> PathVal {
        self.memo.get(&id).map(Res::flat).unwrap_or_default()
    }

    fn walk(&mut self, id: u64) {
        let Some(rec) = self.strands.get(&id).cloned() else {
            return;
        };
        let worker = self.label_of(rec.worker);
        self.crossings += rec.crossings;
        let mut at = PathVal::default();
        let mut open: Vec<(u64, PathVal, u64)> = Vec::new(); // id, base, spawn ts
        let mut cur_ts = rec.begin_ts;
        for item in &rec.items {
            match item {
                Item::Seg { ns } => {
                    at.span += ns;
                    at.bspan += ns;
                }
                Item::Spawn { id, ts } => open.push((*id, at, *ts)),
                Item::Sync {
                    id,
                    begin_ts,
                    end_ts,
                    merge_ns,
                    merge_begin_ts,
                } => {
                    let joinset: Vec<(u64, PathVal, u64)> =
                        match open.iter().position(|(oid, _, _)| oid == id) {
                            Some(pos) => vec![open.remove(pos)],
                            None => std::mem::take(&mut open),
                        };
                    // Pick the burdened-argmax branch, mirroring the
                    // resolver's arithmetic.
                    let mut best = at;
                    let mut winner: Option<u64> = None;
                    for (cid, base, _) in &joinset {
                        let child = self.flat_of(*cid).offset(*base);
                        if child.bspan > best.bspan {
                            best = child;
                            winner = Some(*cid);
                        }
                    }
                    // Close this strand's slice at the sync boundary
                    // and (if a child carried the path) descend.
                    self.nodes.push(PathNode {
                        label: format!("strand {}", rec.id),
                        worker: worker.clone(),
                        begin_ts_ns: cur_ts,
                        end_ts_ns: *begin_ts,
                        burden_ns: 0,
                    });
                    if let Some(cid) = winner {
                        self.walk(cid);
                    }
                    if *merge_ns > 0 {
                        self.nodes.push(PathNode {
                            label: format!("hypermerge @ sync {id}"),
                            worker: worker.clone(),
                            begin_ts_ns: *merge_begin_ts,
                            end_ts_ns: merge_begin_ts + merge_ns,
                            burden_ns: *merge_ns,
                        });
                        self.attribution.push(Attribution {
                            what: format!("hypermerge @ sync {id} (strand {}, {worker})", rec.id),
                            ns: *merge_ns,
                        });
                    }
                    at = best;
                    at.bspan += merge_ns;
                    cur_ts = *end_ts;
                }
            }
        }
        // The final slice runs to strand end; its tail transferal (if
        // any) is burden on the path.
        self.nodes.push(PathNode {
            label: format!("strand {}", rec.id),
            worker: worker.clone(),
            begin_ts_ns: cur_ts,
            end_ts_ns: rec.end_ts,
            burden_ns: rec.transferal_ns,
        });
        if rec.transferal_ns > 0 {
            self.attribution.push(Attribution {
                what: format!("view transferal @ strand {} end ({worker})", rec.id),
                ns: rec.transferal_ns,
            });
        }
        // If a dangling child's completion outlasts this strand's end,
        // the path continues into it (it joins at an ancestor's sync).
        let end_b = at.bspan; // before transferal subtraction: bspan keeps it
        let mut best_dangle: Option<(u64, u64)> = None;
        for (cid, base, _) in &open {
            let child = self.flat_of(*cid).offset(*base);
            if child.bspan > end_b && best_dangle.map(|(_, b)| child.bspan > b).unwrap_or(true) {
                best_dangle = Some((*cid, child.bspan));
            }
        }
        if let Some((cid, _)) = best_dangle {
            self.walk(cid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::ThreadTrace;

    fn ev(ts: u64, kind: EventKind, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            arg,
        }
    }

    fn thread(label: &str, events: Vec<Event>) -> ThreadTrace {
        ThreadTrace {
            label: label.into(),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn inline_join_is_exact() {
        // Root strand 1 spawns task 2, runs it inline, merges 50 ns.
        let trace = Trace {
            threads: vec![thread(
                "w0",
                vec![
                    ev(100, EventKind::JobBegin, 1),
                    ev(200, EventKind::Spawn, 2),
                    ev(300, EventKind::SyncBegin, 2),
                    ev(300, EventKind::StrandBegin, 2),
                    ev(700, EventKind::StrandEnd, 2),
                    ev(710, EventKind::MergeBegin, 0),
                    ev(760, EventKind::MergeEnd, 0),
                    ev(760, EventKind::SyncEnd, 2),
                    ev(900, EventKind::JobEnd, 1),
                ],
            )],
        };
        let a = build(&trace);
        assert_eq!(a.strands, 2);
        assert_eq!(a.spawns, 1);
        assert_eq!(a.syncs, 1);
        assert_eq!(a.warnings, 0);
        assert_eq!(a.incomplete_spawns, 0);
        // Root segments: 100 (to spawn) + 100 (to sync) + 140 (after) =
        // 340; child segment 400; work = 740.
        assert_eq!(a.work_ns, 740);
        // Span: 100 + child 400 (beats continuation 200) + tail 140 =
        // 640 unburdened; merge 50 on the burdened side only.
        assert_eq!(a.span_ns, 640);
        assert_eq!(a.burdened_span_ns, 690);
        assert!((a.parallelism() - 740.0 / 640.0).abs() < 1e-9);
        // The merge is the only burden on the path.
        assert_eq!(a.attribution.len(), 1);
        assert_eq!(a.attribution[0].ns, 50);
        assert!(a.attribution[0].what.contains("hypermerge"));
        // Path: root-to-sync, child, merge, root tail.
        assert_eq!(a.critical_path.len(), 4);
        assert_eq!(a.critical_path[0].begin_ts_ns, 100);
        assert_eq!(a.critical_path[0].end_ts_ns, 300);
        assert_eq!(a.critical_path[1].label, "strand 2");
        assert_eq!(a.critical_path[2].burden_ns, 50);
        assert_eq!(a.critical_path[3].end_ts_ns, 900);
    }

    #[test]
    fn stolen_child_charges_transferal_on_the_path() {
        let trace = Trace {
            threads: vec![
                thread(
                    "w0",
                    vec![
                        ev(0, EventKind::JobBegin, 1),
                        ev(100, EventKind::Spawn, 2),
                        ev(150, EventKind::SyncBegin, 2),
                        ev(800, EventKind::MergeBegin, 0),
                        ev(850, EventKind::MergeEnd, 0),
                        ev(850, EventKind::SyncEnd, 2),
                        ev(1000, EventKind::JobEnd, 1),
                    ],
                ),
                thread(
                    "w1",
                    vec![
                        ev(200, EventKind::JobBegin, 2),
                        // Cpu id packed into the high bits must not
                        // break flag decoding.
                        ev(600, EventKind::Detach, crate::event::pack_cpu(0, Some(3))),
                        ev(700, EventKind::JobEnd, 2),
                    ],
                ),
            ],
        };
        let a = build(&trace);
        assert_eq!(a.strands, 2);
        assert_eq!(a.work_ns, 300 + 500);
        // Child: 500 wall, 100 of it transferal. Root path: 100 + 500
        // (burdened child) + 50 merge + 150 tail = 800 burdened;
        // unburdened drops transferal and merge: 100 + 400 + 150 = 650.
        assert_eq!(a.span_ns, 650);
        assert_eq!(a.burdened_span_ns, 800);
        let whats: Vec<&str> = a.attribution.iter().map(|x| x.what.as_str()).collect();
        assert!(whats.iter().any(|w| w.contains("transferal")), "{whats:?}");
        assert!(whats.iter().any(|w| w.contains("hypermerge")), "{whats:?}");
        assert_eq!(a.attribution.iter().map(|x| x.ns).sum::<u64>(), 150);
    }

    #[test]
    fn scope_sync_joins_all_open_spawns() {
        let trace = Trace {
            threads: vec![
                thread(
                    "w0",
                    vec![
                        ev(0, EventKind::JobBegin, 1),
                        ev(10, EventKind::Spawn, 2),
                        ev(20, EventKind::Spawn, 3),
                        ev(30, EventKind::SyncBegin, 99),
                        ev(500, EventKind::SyncEnd, 99),
                        ev(600, EventKind::JobEnd, 1),
                    ],
                ),
                thread(
                    "w1",
                    vec![
                        ev(100, EventKind::JobBegin, 2),
                        ev(300, EventKind::JobEnd, 2),
                    ],
                ),
                thread(
                    "w2",
                    vec![
                        ev(100, EventKind::JobBegin, 3),
                        ev(400, EventKind::JobEnd, 3),
                    ],
                ),
            ],
        };
        let a = build(&trace);
        assert_eq!(a.strands, 3);
        assert_eq!(a.syncs, 1);
        // Spawn 3 at offset 20 runs 300 → 320 beats spawn 2 (10 + 200)
        // and the continuation (30); tail 100 → span 420.
        assert_eq!(a.span_ns, 420);
        assert_eq!(a.burdened_span_ns, 420);
        assert_eq!(a.work_ns, 130 + 200 + 300);
        // The path descends into strand 3.
        assert!(a
            .critical_path
            .iter()
            .any(|n| n.label == "strand 3" && n.worker == "w2"));
    }

    #[test]
    fn unjoined_spawn_dangles_to_the_strand_end() {
        let trace = Trace {
            threads: vec![
                thread(
                    "w0",
                    vec![
                        ev(0, EventKind::JobBegin, 1),
                        ev(50, EventKind::Spawn, 2),
                        ev(100, EventKind::JobEnd, 1),
                    ],
                ),
                thread(
                    "w1",
                    vec![
                        ev(60, EventKind::JobBegin, 2),
                        ev(460, EventKind::JobEnd, 2),
                    ],
                ),
            ],
        };
        let a = build(&trace);
        // Strand 2 is accounted (dangling) in strand 1, so 1 is the
        // only root; its flat value takes the dangling completion.
        assert_eq!(a.span_ns, 450);
        assert_eq!(a.work_ns, 100 + 400);
        // The walk continues into the dangling child.
        assert!(a.critical_path.iter().any(|n| n.label == "strand 2"));
    }

    #[test]
    fn missing_child_counts_incomplete_not_panic() {
        let trace = Trace {
            threads: vec![thread(
                "w0",
                vec![
                    ev(0, EventKind::JobBegin, 1),
                    ev(50, EventKind::Spawn, 2),
                    ev(80, EventKind::SyncBegin, 2),
                    ev(90, EventKind::SyncEnd, 2),
                    ev(100, EventKind::JobEnd, 1),
                ],
            )],
        };
        let a = build(&trace);
        assert_eq!(a.incomplete_spawns, 1);
        assert_eq!(a.span_ns, 90, "sync wait contributes no fabricated time");
        assert_eq!(a.strands, 1);
    }

    #[test]
    fn truncated_ring_degrades_gracefully() {
        // Ring cut mid-strand: no JobEnd, and an orphan end elsewhere.
        let trace = Trace {
            threads: vec![
                thread(
                    "w0",
                    vec![
                        ev(10, EventKind::JobEnd, 7), // orphan
                        ev(20, EventKind::JobBegin, 1),
                        ev(90, EventKind::Spawn, 2),
                    ],
                ),
                thread(
                    "w1",
                    vec![
                        ev(30, EventKind::JobBegin, 2),
                        ev(50, EventKind::MergeBegin, 0), // stray, no sync
                    ],
                ),
            ],
        };
        let a = build(&trace);
        assert!(a.warnings >= 3, "orphan end + two truncated strands");
        assert_eq!(a.strands, 2);
        // Nothing panics and the numbers stay bounded by the window.
        assert!(a.span_ns <= 90);
    }

    #[test]
    fn crossings_and_kernel_events_attach_to_their_strand() {
        let trace = Trace {
            threads: vec![thread(
                "w0",
                vec![
                    ev(0, EventKind::JobBegin, 1),
                    ev(10, EventKind::Palloc, 0),
                    ev(20, EventKind::Pmap, 4),
                    ev(30, EventKind::Pfree, 0),
                    ev(100, EventKind::JobEnd, 1),
                ],
            )],
        };
        let a = build(&trace);
        assert_eq!(a.crossings_on_path, 3);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let a = build(&Trace::default());
        assert_eq!(a.strands, 0);
        assert_eq!(a.span_ns, 0);
        assert_eq!(a.parallelism(), 0.0);
        let text = a.render(5);
        assert!(text.contains("series-parallel DAG"));
    }

    #[test]
    fn render_lists_top_k() {
        let trace = Trace {
            threads: vec![thread(
                "w0",
                vec![
                    ev(100, EventKind::JobBegin, 1),
                    ev(200, EventKind::Spawn, 2),
                    ev(300, EventKind::SyncBegin, 2),
                    ev(300, EventKind::StrandBegin, 2),
                    ev(700, EventKind::StrandEnd, 2),
                    ev(710, EventKind::MergeBegin, 0),
                    ev(760, EventKind::MergeEnd, 0),
                    ev(760, EventKind::SyncEnd, 2),
                    ev(900, EventKind::JobEnd, 1),
                ],
            )],
        };
        let a = build(&trace);
        let text = a.render(3);
        assert!(text.contains("hypermerge @ sync 2"));
        assert!(text.contains("parallelism"));
    }
}
