//! Online work/span profiling (the Cilkview half of [`crate::dag`]).
//!
//! The offline analyzer reconstructs the whole series-parallel DAG from
//! drained event rings; this module computes the same three headline
//! numbers — **work**, **span**, and **burdened span** — *online*, in
//! constant space per worker, without ever draining a ring. The
//! algorithm is the classic Cilkview strand folding:
//!
//! * every worker keeps one running strand context `(span, burdened
//!   span)` for the strand it is currently executing, advanced by the
//!   wall-clock length of each instrumented segment;
//! * at a **spawn** the current `(span, bspan)` pair is stored in the
//!   spawned task's job header (the deque publish synchronizes it to
//!   whoever executes the task);
//! * a task's executor starts its context from that stored pair and, at
//!   **strand end**, writes its final pair back through the job (latch
//!   publication synchronizes it to the joining owner);
//! * at a **sync** the continuation resumes from the *elementwise max*
//!   of its own pair and every joined task's final pair, with the
//!   hypermerge time added to the burdened side only.
//!
//! Work is the sum of all segment lengths, accumulated into one global
//! counter at every pause point. **Burden** — the reducer overheads the
//! paper decomposes (view creation / insertion / transferal /
//! hypermerge, plus simulated kernel crossings) — is charged by
//! `cilkm-core` and `cilkm-tlmm` through [`charge`]: each charge lands
//! in a global breakdown *and* is debited from the current strand's
//! unburdened span, so `span` approximates the critical path of an
//! ideal zero-overhead runtime while `burdened_span` is the real one.
//!
//! Everything here is compiled out without the `trace` cargo feature
//! and costs one `Relaxed` load per call site when compiled but not
//! profiling. Profiling is independent of event *tracing*: either can
//! be on without the other ([`crate::trace::set_enabled`] vs
//! [`begin_session`]).

// lint: allow-file(raw-sync, the profiler's enabled flag and work/burden accumulators are process-global Relaxed-only monitoring data shared with non-pool threads, exactly like the metrics registry; cross-thread span hand-off rides the runtime's existing deque/latch publication and is not synchronized here)

#[cfg(feature = "trace")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use crate::clock;

    pub(super) static PROFILING: AtomicBool = AtomicBool::new(false);

    /// Total instrumented segment time (ns) across all workers.
    pub(super) static WORK_NS: AtomicU64 = AtomicU64::new(0);
    /// Spawns folded online this session.
    pub(super) static SPAWNS: AtomicU64 = AtomicU64::new(0);
    /// Syncs folded online this session.
    pub(super) static SYNCS: AtomicU64 = AtomicU64::new(0);

    /// Burden breakdown (indexed by `Burden as usize`), plus crossings.
    pub(super) static BURDEN_NS: [AtomicU64; 5] = [const { AtomicU64::new(0) }; 5];
    pub(super) static CROSSINGS: AtomicU64 = AtomicU64::new(0);

    /// The last finished session's results, for the metrics source.
    pub(super) static LAST_WORK_NS: AtomicU64 = AtomicU64::new(0);
    pub(super) static LAST_SPAN_NS: AtomicU64 = AtomicU64::new(0);
    pub(super) static LAST_BSPAN_NS: AtomicU64 = AtomicU64::new(0);

    /// The per-thread running strand context.
    #[derive(Copy, Clone, Default)]
    pub(super) struct Ctx {
        /// Strand is currently accumulating (between begin/resume and
        /// pause/end).
        pub active: bool,
        /// Unburdened span up to the start of the current segment.
        pub span_ns: u64,
        /// Burdened span up to the start of the current segment.
        pub bspan_ns: u64,
        /// Burden charged during the current segment (subtracted from
        /// the unburdened side when the segment is flushed).
        pub debit_ns: u64,
        /// Clock reading at the start of the current segment.
        pub seg_start: u64,
    }

    thread_local! {
        pub(super) static CTX: std::cell::Cell<Ctx> = const { std::cell::Cell::new(Ctx {
            active: false,
            span_ns: 0,
            bspan_ns: 0,
            debit_ns: 0,
            seg_start: 0,
        }) };
    }

    /// Closes the current segment: adds its wall length to work and to
    /// both span sides (minus the charged burden on the unburdened
    /// side), and restarts the segment clock.
    #[inline]
    pub(super) fn flush(ctx: &mut Ctx) {
        if !ctx.active {
            return;
        }
        let now = clock::now_ns();
        let dt = now.saturating_sub(ctx.seg_start);
        WORK_NS.fetch_add(dt, Ordering::Relaxed);
        ctx.span_ns += dt.saturating_sub(ctx.debit_ns);
        ctx.bspan_ns += dt;
        ctx.debit_ns = 0;
        ctx.seg_start = now;
    }
}

/// The reducer-overhead categories charged to strands via [`charge`] —
/// the paper's §8 decomposition, attributed on the DAG instead of in a
/// flat histogram.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Burden {
    /// First lookup of a reducer on a strand: allocating + initializing
    /// a fresh identity view.
    ViewCreation = 0,
    /// Inserting that view into the worker's SPA map.
    ViewInsertion = 1,
    /// Copying views out of / into TLMM regions at a steal or
    /// suspension (the memory-mapped mechanism's per-steal cost).
    Transferal = 2,
    /// Folding spawned views at a join.
    Hypermerge = 3,
    /// The page-exchange slice of a transferal: swapping occupied pages
    /// out of the region wholesale (batched `sys_palloc` + scattered
    /// `sys_pmap`) instead of copying views pair-by-pair. Split from
    /// [`Burden::Transferal`] so experiments can see how much of the
    /// steal-path burden the exchange crossings account for.
    TransferalExchange = 4,
}

impl Burden {
    /// Stable lower-case name (report and metrics key).
    pub fn name(self) -> &'static str {
        match self {
            Burden::ViewCreation => "view_creation",
            Burden::ViewInsertion => "view_insertion",
            Burden::Transferal => "transferal",
            Burden::Hypermerge => "hypermerge",
            Burden::TransferalExchange => "transferal_exchange",
        }
    }
}

/// Total burden charged during a profiling session, by category.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BurdenBreakdown {
    /// View-creation ns ([`Burden::ViewCreation`]).
    pub view_creation_ns: u64,
    /// View-insertion ns ([`Burden::ViewInsertion`]).
    pub view_insertion_ns: u64,
    /// View-transferal ns ([`Burden::Transferal`]).
    pub transferal_ns: u64,
    /// Hypermerge ns ([`Burden::Hypermerge`]).
    pub hypermerge_ns: u64,
    /// Page-exchange ns ([`Burden::TransferalExchange`]) — the slice of
    /// transferal time spent swapping pages rather than copying views.
    pub transferal_exchange_ns: u64,
    /// Simulated kernel crossings (`sys_palloc`/`sys_pfree`/`sys_pmap`
    /// count, not ns — their latency is inside the other categories).
    pub crossings: u64,
}

impl BurdenBreakdown {
    /// Total charged ns across the timed categories.
    pub fn total_ns(&self) -> u64 {
        self.view_creation_ns
            + self.view_insertion_ns
            + self.transferal_ns
            + self.hypermerge_ns
            + self.transferal_exchange_ns
    }
}

/// What [`end_session`] returns: the online work/span numbers for one
/// profiled region, in the vocabulary of Cilkview.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ParallelismReport {
    /// Total instrumented computation time across all workers (ns).
    pub work_ns: u64,
    /// Critical-path length with reducer burden subtracted out (ns) —
    /// the span an ideal zero-overhead runtime would see.
    pub span_ns: u64,
    /// Critical-path length as executed, burden included (ns).
    pub burdened_span_ns: u64,
    /// Spawns folded during the session.
    pub spawns: u64,
    /// Syncs folded during the session.
    pub syncs: u64,
    /// Reducer burden charged during the session, by category.
    pub burden: BurdenBreakdown,
}

impl ParallelismReport {
    /// Ideal parallelism: work / span. Returns 0.0 for a degenerate
    /// (zero-span) report.
    pub fn parallelism(&self) -> f64 {
        ratio(self.work_ns, self.span_ns)
    }

    /// Burdened parallelism: work / burdened span — the number that
    /// bounds real speedup once reducer overhead is on the path.
    pub fn burdened_parallelism(&self) -> f64 {
        ratio(self.work_ns, self.burdened_span_ns)
    }

    /// A compact human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("parallelism report (online)\n");
        s.push_str(&format!("  work:            {:>12} ns\n", self.work_ns));
        s.push_str(&format!("  span:            {:>12} ns\n", self.span_ns));
        s.push_str(&format!(
            "  burdened span:   {:>12} ns\n",
            self.burdened_span_ns
        ));
        s.push_str(&format!(
            "  parallelism:     {:>12.2}\n",
            self.parallelism()
        ));
        s.push_str(&format!(
            "  burdened par.:   {:>12.2}\n",
            self.burdened_parallelism()
        ));
        s.push_str(&format!(
            "  spawns/syncs:    {:>12}\n",
            format!("{}/{}", self.spawns, self.syncs)
        ));
        let b = &self.burden;
        s.push_str(&format!(
            "  burden: creation {} ns, insertion {} ns, transferal {} ns (exchange {} ns), hypermerge {} ns, {} crossings\n",
            b.view_creation_ns, b.view_insertion_ns, b.transferal_ns, b.transferal_exchange_ns, b.hypermerge_ns, b.crossings
        ));
        s
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A strand context saved by [`strand_begin`] and restored by
/// [`strand_end`] — opaque so callers cannot forge span values.
#[derive(Default)]
pub struct SavedCtx(#[cfg(feature = "trace")] imp::Ctx);

/// Whether a profiling session is running (one `Relaxed` load; `false`
/// without the `trace` feature).
// lint: hot-path
#[inline]
pub fn profiling() -> bool {
    #[cfg(feature = "trace")]
    {
        imp::PROFILING.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Starts a profiling session: zeroes the accumulators and turns the
/// per-strand folding on. Sessions are process-global — one profiled
/// region at a time; concurrent regions would pool their work into one
/// report. No-op without the `trace` feature.
pub fn begin_session() {
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering;
        crate::clock::warm_up();
        imp::WORK_NS.store(0, Ordering::Relaxed);
        imp::SPAWNS.store(0, Ordering::Relaxed);
        imp::SYNCS.store(0, Ordering::Relaxed);
        for b in &imp::BURDEN_NS {
            b.store(0, Ordering::Relaxed);
        }
        imp::CROSSINGS.store(0, Ordering::Relaxed);
        imp::PROFILING.store(true, Ordering::Relaxed);
    }
}

/// Ends the session and builds the report. `root_final` is the root
/// strand's final `(span, burdened span)` pair, which the runtime reads
/// from the root job after its latch fires. Returns a zero report
/// without the `trace` feature.
pub fn end_session(root_final: (u64, u64)) -> ParallelismReport {
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering;
        imp::PROFILING.store(false, Ordering::Relaxed);
        let burden = BurdenBreakdown {
            view_creation_ns: imp::BURDEN_NS[Burden::ViewCreation as usize].load(Ordering::Relaxed),
            view_insertion_ns: imp::BURDEN_NS[Burden::ViewInsertion as usize]
                .load(Ordering::Relaxed),
            transferal_ns: imp::BURDEN_NS[Burden::Transferal as usize].load(Ordering::Relaxed),
            hypermerge_ns: imp::BURDEN_NS[Burden::Hypermerge as usize].load(Ordering::Relaxed),
            transferal_exchange_ns: imp::BURDEN_NS[Burden::TransferalExchange as usize]
                .load(Ordering::Relaxed),
            crossings: imp::CROSSINGS.load(Ordering::Relaxed),
        };
        let report = ParallelismReport {
            work_ns: imp::WORK_NS.load(Ordering::Relaxed),
            span_ns: root_final.0,
            burdened_span_ns: root_final.1,
            spawns: imp::SPAWNS.load(Ordering::Relaxed),
            syncs: imp::SYNCS.load(Ordering::Relaxed),
            burden,
        };
        imp::LAST_WORK_NS.store(report.work_ns, Ordering::Relaxed);
        imp::LAST_SPAN_NS.store(report.span_ns, Ordering::Relaxed);
        imp::LAST_BSPAN_NS.store(report.burdened_span_ns, Ordering::Relaxed);
        register_metrics_source();
        report
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = root_final;
        ParallelismReport::default()
    }
}

/// Snapshot of the current strand's `(span, bspan)` at a spawn point,
/// to be stored in the spawned task's job header. Counts one spawn.
/// Returns zeros when not profiling.
// lint: hot-path
#[inline]
pub fn spawn_point() -> (u64, u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return (0, 0);
        }
        imp::SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        imp::CTX.with(|cell| {
            let mut ctx = cell.get();
            imp::flush(&mut ctx);
            cell.set(ctx);
            (ctx.span_ns, ctx.bspan_ns)
        })
    }
    #[cfg(not(feature = "trace"))]
    {
        (0, 0)
    }
}

/// Starts a strand whose spawn point carried `spawn` — used by task
/// executors (inline, stolen, scope, root). Saves and replaces the
/// calling thread's context; pass the returned [`SavedCtx`] to
/// [`strand_end`].
#[inline]
pub fn strand_begin(spawn: (u64, u64)) -> SavedCtx {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return SavedCtx::default();
        }
        imp::CTX.with(|cell| {
            let saved = cell.get();
            cell.set(imp::Ctx {
                active: true,
                span_ns: spawn.0,
                bspan_ns: spawn.1,
                debit_ns: 0,
                seg_start: crate::clock::now_ns(),
            });
            SavedCtx(saved)
        })
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = spawn;
        SavedCtx::default()
    }
}

/// Ends the current strand, restores the saved context, and returns the
/// strand's final `(span, bspan)` — to be published through the job's
/// latch for the joining owner. Returns zeros when not profiling.
#[inline]
pub fn strand_end(saved: SavedCtx) -> (u64, u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return (0, 0);
        }
        imp::CTX.with(|cell| {
            let mut ctx = cell.get();
            imp::flush(&mut ctx);
            let out = (ctx.span_ns, ctx.bspan_ns);
            cell.set(saved.0);
            out
        })
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = saved;
        (0, 0)
    }
}

/// Pauses the current strand at a sync point (the continuation is about
/// to wait for its spawned tasks), returning its `(span, bspan)` so
/// far. Counts one sync. The context stays installed but inactive; any
/// foreign jobs executed while waiting nest their own contexts over it.
#[inline]
pub fn sync_pause() -> (u64, u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return (0, 0);
        }
        imp::SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        imp::CTX.with(|cell| {
            let mut ctx = cell.get();
            imp::flush(&mut ctx);
            ctx.active = false;
            cell.set(ctx);
            (ctx.span_ns, ctx.bspan_ns)
        })
    }
    #[cfg(not(feature = "trace"))]
    {
        (0, 0)
    }
}

/// Resumes the continuation after a sync: the new span pair is the
/// caller-computed elementwise max of the continuation's pair and every
/// joined task's final pair, and `merge_ns` (the hypermerge the owner
/// just ran) is added to the burdened side only.
#[inline]
pub fn sync_resume(span_ns: u64, bspan_ns: u64, merge_ns: u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return;
        }
        imp::CTX.with(|cell| {
            cell.set(imp::Ctx {
                active: true,
                span_ns,
                bspan_ns: bspan_ns + merge_ns,
                debit_ns: 0,
                seg_start: crate::clock::now_ns(),
            });
        });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (span_ns, bspan_ns, merge_ns);
    }
}

/// Charges `ns` of reducer burden to the session and debits it from the
/// current strand's unburdened span. Called by `cilkm-core` at its
/// instrumented view-creation / insertion / transferal / merge sites.
/// One `Relaxed` load when not profiling.
// lint: hot-path
#[inline]
pub fn charge(kind: Burden, ns: u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() || ns == 0 {
            return;
        }
        // SAFETY: `Burden` discriminants are 0..=4 and BURDEN_NS has 5
        // slots, so the index is always in bounds.
        unsafe { imp::BURDEN_NS.get_unchecked(kind as usize) }
            .fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
        imp::CTX.with(|cell| {
            let mut ctx = cell.get();
            if ctx.active {
                ctx.debit_ns += ns;
                cell.set(ctx);
            }
        });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, ns);
    }
}

/// Counts `n` simulated kernel crossings against the session (their
/// latency is already inside the transferal/creation charges).
// lint: hot-path
#[inline]
pub fn charge_crossings(n: u64) {
    #[cfg(feature = "trace")]
    {
        if !profiling() {
            return;
        }
        imp::CROSSINGS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = n;
    }
}

/// Registers the `profile.*` metrics source with the global registry
/// (idempotent). Exposes the last finished session's work/span plus the
/// live burden accumulators.
#[cfg(feature = "trace")]
fn register_metrics_source() {
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, OnceLock};

    struct ProfileMetrics;

    impl crate::metrics::MetricsSource for ProfileMetrics {
        fn collect(&self, out: &mut crate::metrics::MetricsCollector) {
            out.counter("work_ns", imp::LAST_WORK_NS.load(Ordering::Relaxed));
            out.counter("span_ns", imp::LAST_SPAN_NS.load(Ordering::Relaxed));
            out.counter(
                "burdened_span_ns",
                imp::LAST_BSPAN_NS.load(Ordering::Relaxed),
            );
            out.counter("spawns", imp::SPAWNS.load(Ordering::Relaxed));
            out.counter("syncs", imp::SYNCS.load(Ordering::Relaxed));
            out.counter(
                "burden_view_creation_ns",
                imp::BURDEN_NS[Burden::ViewCreation as usize].load(Ordering::Relaxed),
            );
            out.counter(
                "burden_view_insertion_ns",
                imp::BURDEN_NS[Burden::ViewInsertion as usize].load(Ordering::Relaxed),
            );
            out.counter(
                "burden_transferal_ns",
                imp::BURDEN_NS[Burden::Transferal as usize].load(Ordering::Relaxed),
            );
            out.counter(
                "burden_hypermerge_ns",
                imp::BURDEN_NS[Burden::Hypermerge as usize].load(Ordering::Relaxed),
            );
            out.counter(
                "burden_transferal_exchange_ns",
                imp::BURDEN_NS[Burden::TransferalExchange as usize].load(Ordering::Relaxed),
            );
            out.counter("crossings", imp::CROSSINGS.load(Ordering::Relaxed));
        }
    }

    static SOURCE: OnceLock<Arc<ProfileMetrics>> = OnceLock::new();
    SOURCE.get_or_init(|| {
        let src = Arc::new(ProfileMetrics);
        let weak: std::sync::Weak<ProfileMetrics> = Arc::downgrade(&src);
        crate::metrics::global().register("profile", weak);
        src
    });
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    // The profiling flag and accumulators are process-wide; tests that
    // run sessions serialize on one lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin_ns(ns: u64) {
        let t0 = crate::clock::now_ns();
        while crate::clock::now_ns() - t0 < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_calls_are_inert() {
        let _g = serial();
        assert!(!profiling());
        assert_eq!(spawn_point(), (0, 0));
        let saved = strand_begin((5, 5));
        charge(Burden::Hypermerge, 100);
        assert_eq!(strand_end(saved), (0, 0));
        assert_eq!(sync_pause(), (0, 0));
        sync_resume(1, 2, 3);
    }

    #[test]
    fn serial_session_span_equals_work() {
        let _g = serial();
        begin_session();
        let saved = strand_begin((0, 0));
        spin_ns(200_000);
        let root = strand_end(saved);
        let report = end_session(root);
        assert!(report.work_ns >= 200_000, "work {}", report.work_ns);
        // A single strand: span == bspan == its own segment, and work
        // only differs by other threads' noise (none here).
        assert_eq!(report.span_ns, root.0);
        assert_eq!(report.burdened_span_ns, root.1);
        assert!(report.span_ns >= 200_000);
        assert!((report.parallelism() - 1.0).abs() < 0.2);
    }

    #[test]
    fn fold_takes_max_and_burden_extends_bspan_only() {
        let _g = serial();
        begin_session();
        let saved = strand_begin((0, 0));
        spin_ns(50_000);
        let spawn = spawn_point(); // task inherits this pair
        spin_ns(30_000);
        let left = sync_pause();

        // Simulate the spawned task on this same thread (the fold logic
        // is pure arithmetic; placement doesn't matter).
        let inner = strand_begin(spawn);
        spin_ns(120_000);
        charge(Burden::Transferal, 40_000);
        let child = strand_end(inner);

        // Child ran longer: it carries the span. Its burden charge grew
        // bspan relative to span by ~40 µs.
        assert!(child.0 > left.0);
        assert!(child.1 >= child.0 + 40_000 - 1_000);

        sync_resume(left.0.max(child.0), left.1.max(child.1), 10_000);
        spin_ns(20_000);
        let root = strand_end(saved);
        let report = end_session(root);

        assert_eq!(report.spawns, 1);
        assert_eq!(report.syncs, 1);
        assert_eq!(report.burden.transferal_ns, 40_000);
        assert_eq!(report.burden.hypermerge_ns, 0, "merge_ns is caller-side");
        // Work counts both branches; span only the longer one.
        assert!(report.work_ns >= 220_000 - 2_000);
        assert!(report.span_ns < report.work_ns);
        // Burden sits on the burdened side: bspan >= span + charges.
        assert!(
            report.burdened_span_ns >= report.span_ns + 45_000,
            "bspan {} span {}",
            report.burdened_span_ns,
            report.span_ns
        );
    }

    #[test]
    fn charge_is_debited_from_unburdened_span() {
        let _g = serial();
        begin_session();
        let saved = strand_begin((0, 0));
        spin_ns(10_000);
        charge(Burden::Hypermerge, 1_000_000_000); // absurd: bigger than the segment
        spin_ns(10_000);
        let root = strand_end(saved);
        let report = end_session(root);
        // The debit saturates at the segment length: span never goes
        // negative, bspan keeps the real wall time.
        assert!(report.span_ns < report.burdened_span_ns);
        assert!(report.burdened_span_ns >= 20_000);
        assert_eq!(report.burden.hypermerge_ns, 1_000_000_000);
    }

    #[test]
    fn metrics_source_reports_last_session() {
        let _g = serial();
        begin_session();
        let saved = strand_begin((0, 0));
        spin_ns(5_000);
        charge_crossings(3);
        let root = strand_end(saved);
        let report = end_session(root);
        let snap = crate::metrics::global().snapshot();
        assert_eq!(snap.counter("profile.work_ns"), Some(report.work_ns));
        assert_eq!(snap.counter("profile.span_ns"), Some(report.span_ns));
        assert_eq!(snap.counter("profile.crossings"), Some(3));
    }

    #[test]
    fn report_renders_and_ratios() {
        let r = ParallelismReport {
            work_ns: 1_000,
            span_ns: 250,
            burdened_span_ns: 500,
            spawns: 3,
            syncs: 2,
            burden: BurdenBreakdown {
                transferal_ns: 100,
                ..Default::default()
            },
        };
        assert!((r.parallelism() - 4.0).abs() < 1e-9);
        assert!((r.burdened_parallelism() - 2.0).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("parallelism"));
        assert!(text.contains("transferal 100 ns"));
        assert_eq!(ParallelismReport::default().parallelism(), 0.0);
    }
}
