//! Model-switchable synchronization facade (same pattern as
//! `cilkm-runtime/src/msync.rs`): the tracer ring's publication atomics
//! go through here so that, under `--features model`, the single-writer /
//! concurrent-drain protocol runs on `cilkm-checker`'s recorded
//! primitives and can be verified by the model checker.

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(not(feature = "model"))]
pub(crate) use std::sync::atomic;

/// Records a plain-memory write for the checker's race detector (no-op
/// outside `--features model`). `addr` identifies the location.
#[inline]
pub(crate) fn note_write(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::trace::note_write(addr, "TraceRingSlot");
    #[cfg(not(feature = "model"))]
    let _ = addr;
}

/// Records a plain-memory read for the checker's race detector (no-op
/// outside `--features model`).
#[inline]
pub(crate) fn note_read(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::trace::note_read(addr, "TraceRingSlot");
    #[cfg(not(feature = "model"))]
    let _ = addr;
}
