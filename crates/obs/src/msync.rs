//! Model- and sanitizer-switchable synchronization facade (same
//! pattern as `cilkm-runtime/src/msync.rs`): the tracer ring's
//! publication atomics go through here so that, under `--features
//! model`, the single-writer / concurrent-drain protocol runs on
//! `cilkm-checker`'s recorded primitives and can be verified by the
//! model checker — and so that, under `--features sanitize`, real runs
//! feed the dynamic race detectors instead (DESIGN.md §17).

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) use cilkm_san::sync::atomic;
#[cfg(not(any(feature = "model", feature = "sanitize")))]
pub(crate) use std::sync::atomic;

/// Records a plain-memory write for the checker's (or sanitizer's)
/// race detector; no-op in plain builds. `addr` identifies the
/// location.
#[inline]
pub(crate) fn note_write(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::trace::note_write(addr, "TraceRingSlot");
    #[cfg(all(not(feature = "model"), feature = "sanitize"))]
    cilkm_san::shadow_write(addr, "TraceRingSlot");
    #[cfg(not(any(feature = "model", feature = "sanitize")))]
    let _ = addr;
}

/// Records a plain-memory read for the checker's (or sanitizer's) race
/// detector; no-op in plain builds.
#[inline]
pub(crate) fn note_read(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::trace::note_read(addr, "TraceRingSlot");
    #[cfg(all(not(feature = "model"), feature = "sanitize"))]
    cilkm_san::shadow_read(addr, "TraceRingSlot");
    #[cfg(not(any(feature = "model", feature = "sanitize")))]
    let _ = addr;
}
