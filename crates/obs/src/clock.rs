//! The tracer's timestamp source.
//!
//! Trace events carry *monotonic wall time* in nanoseconds since an
//! arbitrary process-wide anchor (the first call). Rationale:
//!
//! * Cross-worker alignment is the whole point of a trace — per-thread
//!   CPU clocks (which the §8 overhead *totals* use, see
//!   `cilkm-core::instrument`) drift apart the moment a worker sleeps,
//!   so they cannot order events across workers.
//! * `clock_gettime(CLOCK_MONOTONIC)` is a vDSO call (~20 ns), cheap
//!   enough for cold scheduler events (steals, parks, merges). Nothing
//!   on the reducer-lookup fast path reads this clock.
//!
//! The anchor is process-wide, so timestamps from different pools and
//! threads are directly comparable and exporters only need one origin.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds of monotonic wall time since the process-wide anchor.
///
/// The first call (from any thread) establishes the anchor, so early
/// timestamps can be small but are never negative, and all later calls
/// across all threads share the same origin.
#[inline]
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Forces the anchor to be established now (e.g. at pool construction),
/// so the first traced event does not pay the one-time `OnceLock`
/// initialization inside a measured region.
pub fn warm_up() {
    let _ = now_ns();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_across_calls() {
        warm_up();
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn clock_advances_under_sleep() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_ns();
        assert!(b - a >= 1_000_000, "2ms sleep should advance >= 1ms");
    }

    #[test]
    fn clock_is_shared_across_threads() {
        let a = now_ns();
        let b = std::thread::spawn(now_ns).join().unwrap();
        let c = now_ns();
        // The spawned thread's reading uses the same anchor, so it lands
        // between two readings on this thread.
        assert!(a <= b && b <= c);
    }
}
