//! The unified metrics layer.
//!
//! Before this crate, each layer kept its own grab-bag of `AtomicU64`s:
//! `cilkm-core::instrument` for the §8 reduce-overhead totals,
//! `cilkm-tlmm::stats` for kernel-crossing counts, the runtime's
//! `WorkerStats` for steals. This module gives them one vocabulary:
//!
//! * [`Counter`] — a monotonic `u64`.
//! * [`Histogram`] — log2-bucketed latency distribution (bucket `i > 0`
//!   covers `[2^(i-1), 2^i)` ns; bucket 0 is exactly zero), so the §8
//!   overhead categories come out as distributions, not just totals.
//! * [`MetricsSource`] — anything that can dump its current values.
//! * [`MetricsRegistry`] — where sources register; producing a
//!   [`MetricsSnapshot`] that supports [`MetricsSnapshot::since`]
//!   (diffing two snapshots isolates one benchmark phase) and CSV/JSON
//!   export.
//!
//! Counters and histograms deliberately use `std` atomics, not the
//! model checker's recorded atomics: they are monitoring data with no
//! ordering obligations (all `Relaxed`), and routing them through the
//! checker would explode model state spaces for no verification value.

// lint: allow-file(raw-sync, counters and histograms are Relaxed-only monitoring data with no ordering obligations, and the registry is process-global; recorded msync primitives are scoped to one model run and would explode checker state for zero verification value — see the module docs above)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, Weak};

/// Number of log2 buckets in a [`Histogram`]; covers the full `u64`
/// range (bucket 63 absorbs everything at and above `2^62`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonic counter. All operations are `Relaxed`: values are
/// monitoring data, never synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (const, usable in statics).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used for gauges like high-water marks that
    /// are maintained single-writer and only read cross-thread).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Returns the bucket index a value falls into: 0 for 0, otherwise
/// `floor(log2(v)) + 1`, capped at the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in ns, sizes in
/// pages, ...). Thread-safe; recording is two `Relaxed` RMWs plus one on
/// the bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (const, usable in statics).
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array from an inline const.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_lower_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The samples recorded since `earlier` (per-bucket saturating
    /// difference, so a mismatched pair degrades rather than panics).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *out = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket prefix holding at least
    /// `q` (in `0.0..=1.0`) of the samples — a coarse quantile, exact to
    /// the log2 bucket. Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i + 1 < HISTOGRAM_BUCKETS {
                    bucket_lower_bound(i + 1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }
}

/// Sub-log2 resolution: each power-of-two octave of a [`FineHistogram`]
/// is split into `2^FINE_SUB_BITS` linearly spaced minor buckets, giving
/// 4× the resolution of [`Histogram`] where the transferal bimodality
/// lives (the 1–128 µs band) at ~12% relative bucket width.
pub const FINE_SUB_BITS: u32 = 2;

/// First octave that gets sub-bucketed (values below `2^(FINE_SUB_BITS)`
/// are bucketed exactly, one value per bucket).
const FINE_FIRST_OCTAVE: u32 = FINE_SUB_BITS;

/// Highest octave a [`FineHistogram`] resolves; `2^20` ns ≈ 1.05 ms, so
/// the fine range covers the whole transferal latency band with room
/// above the 128 µs bucket the motivation names. Larger samples clamp
/// into the last bucket.
pub const FINE_MAX_OCTAVE: u32 = 20;

/// Number of buckets in a [`FineHistogram`]: the exact region
/// (`0..2^FINE_SUB_BITS`) plus four minor buckets per octave from
/// [`FINE_SUB_BITS`] through [`FINE_MAX_OCTAVE`] inclusive.
pub const FINE_BUCKETS: usize =
    (1 << FINE_SUB_BITS) + ((FINE_MAX_OCTAVE - FINE_FIRST_OCTAVE + 1) << FINE_SUB_BITS) as usize;

/// The fine bucket index a value falls into. Values in `0..4` map to
/// themselves; larger values go to octave `floor(log2 v)` and minor
/// bucket `(v >> (octave - FINE_SUB_BITS)) & 3`; values above the fine
/// range clamp into the last bucket.
#[inline]
pub fn fine_bucket_index(v: u64) -> usize {
    if v < (1 << FINE_SUB_BITS) {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave > FINE_MAX_OCTAVE {
        return FINE_BUCKETS - 1;
    }
    let minor = ((v >> (octave - FINE_SUB_BITS)) & ((1 << FINE_SUB_BITS) - 1)) as usize;
    (1 << FINE_SUB_BITS) + (((octave - FINE_FIRST_OCTAVE) << FINE_SUB_BITS) as usize) + minor
}

/// Inclusive lower bound of fine bucket `i` (the inverse of
/// [`fine_bucket_index`] on bucket boundaries).
#[inline]
pub fn fine_bucket_lower_bound(i: usize) -> u64 {
    let exact = 1usize << FINE_SUB_BITS;
    if i < exact {
        return i as u64;
    }
    let k = i - exact;
    let octave = FINE_FIRST_OCTAVE + (k >> FINE_SUB_BITS) as u32;
    let minor = (k & ((1 << FINE_SUB_BITS) - 1)) as u64;
    ((1 << FINE_SUB_BITS) as u64 + minor) << (octave - FINE_SUB_BITS)
}

/// A high-resolution histogram: log2 octaves split into linear minor
/// buckets (HdrHistogram-style), so quantiles in the 1–128 µs band are
/// exact to ~12% instead of the 2× of [`Histogram`]. Recording costs the
/// same three `Relaxed` RMWs.
#[derive(Debug)]
pub struct FineHistogram {
    buckets: [AtomicU64; FINE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for FineHistogram {
    fn default() -> FineHistogram {
        FineHistogram::new()
    }
}

impl FineHistogram {
    /// A fresh empty histogram (const, usable in statics).
    pub const fn new() -> FineHistogram {
        FineHistogram {
            buckets: [const { AtomicU64::new(0) }; FINE_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[fine_bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> FineHistogramSnapshot {
        let mut buckets = [0u64; FINE_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        FineHistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`FineHistogram`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FineHistogramSnapshot {
    /// Per-bucket sample counts (see [`fine_bucket_lower_bound`]).
    pub buckets: [u64; FINE_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl Default for FineHistogramSnapshot {
    fn default() -> FineHistogramSnapshot {
        FineHistogramSnapshot {
            buckets: [0; FINE_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl FineHistogramSnapshot {
    /// The samples recorded since `earlier` (saturating, as in
    /// [`HistogramSnapshot::since`]).
    pub fn since(&self, earlier: &FineHistogramSnapshot) -> FineHistogramSnapshot {
        let mut buckets = [0u64; FINE_BUCKETS];
        for (out, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *out = now.saturating_sub(*then);
        }
        FineHistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket prefix holding at least `q`
    /// of the samples — a quantile exact to the fine bucket (~12%
    /// relative width in the sub-bucketed octaves). Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i + 1 < FINE_BUCKETS {
                    fine_bucket_lower_bound(i + 1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }
}

/// One exported metric value.
///
/// The histogram variant is ~0.5 KiB (64 buckets), far larger than the
/// counter variant, but values live briefly inside snapshot maps and
/// staying `Copy` keeps the diffing/export code simple — boxing would
/// buy nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A plain counter/gauge reading.
    Counter(u64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// The sink a [`MetricsSource`] dumps into. Prefixes every name with the
/// source's registered prefix, so sources never collide.
pub struct MetricsCollector {
    prefix: String,
    map: BTreeMap<String, MetricValue>,
}

impl MetricsCollector {
    /// Records a counter/gauge value under `name`.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.map
            .insert(format!("{}.{}", self.prefix, name), MetricValue::Counter(v));
    }

    /// Records a histogram reading under `name`.
    pub fn histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.map.insert(
            format!("{}.{}", self.prefix, name),
            MetricValue::Histogram(h),
        );
    }
}

/// Anything that can report its current metric values. Implemented by
/// the reducer domain (`cilkm-core`), the page arena (`cilkm-tlmm`), and
/// the worker pool (`cilkm-runtime`).
pub trait MetricsSource: Send + Sync {
    /// Dumps every current value into `out`.
    fn collect(&self, out: &mut MetricsCollector);
}

/// The process-wide list of metric sources.
///
/// Sources register a `Weak` handle under a base name and get back a
/// unique prefix (`pool`, `pool#2`, ...); dropping the source simply
/// makes it disappear from later snapshots, so registration never keeps
/// a domain or pool alive.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Weak<dyn MetricsSource>)>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests use private registries; production
    /// code uses [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a source under `base`, returning the unique prefix its
    /// metrics will appear under. Dead sources are pruned on the way.
    pub fn register(&self, base: &str, source: Weak<dyn MetricsSource>) -> String {
        let mut sources = self.sources.lock().unwrap();
        sources.retain(|(_, w)| w.strong_count() > 0);
        let mut prefix = base.to_owned();
        let mut n = 1usize;
        while sources.iter().any(|(p, _)| *p == prefix) {
            n += 1;
            prefix = format!("{base}#{n}");
        }
        sources.push((prefix.clone(), source));
        prefix
    }

    /// Collects every live source into one snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sources = self.sources.lock().unwrap();
        let mut map = BTreeMap::new();
        for (prefix, weak) in sources.iter() {
            let Some(source) = weak.upgrade() else {
                continue;
            };
            let mut collector = MetricsCollector {
                prefix: prefix.clone(),
                map: std::mem::take(&mut map),
            };
            source.collect(&mut collector);
            map = collector.map;
        }
        MetricsSnapshot { values: map }
    }
}

/// The process-wide registry every production source registers with.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A point-in-time reading of every registered metric, keyed by
/// `prefix.name`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Metric values in deterministic (sorted) name order.
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The change since `earlier`: counters and histograms are diffed
    /// (saturating); metrics absent from `earlier` pass through whole.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut values = BTreeMap::new();
        for (name, now) in &self.values {
            let diffed = match (now, earlier.values.get(name)) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(e))) => {
                    MetricValue::Counter(n.saturating_sub(*e))
                }
                (MetricValue::Histogram(n), Some(MetricValue::Histogram(e))) => {
                    MetricValue::Histogram(n.since(e))
                }
                _ => *now,
            };
            values.insert(name.clone(), diffed);
        }
        MetricsSnapshot { values }
    }

    /// Looks up a counter by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram by full name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_ops() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn bucket_boundaries_sit_at_powers_of_two() {
        // Satellite requirement: the boundary cases are exact.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for p in 1..62 {
            let v = 1u64 << p;
            // 2^p opens bucket p+1; 2^p - 1 closes bucket p.
            assert_eq!(bucket_index(v), p + 1, "2^{p} must open a new bucket");
            assert_eq!(bucket_index(v - 1), p, "2^{p}-1 must stay below");
            assert_eq!(bucket_lower_bound(p + 1), v);
        }
        // The top buckets saturate instead of overflowing the array.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn fine_bucket_layout_round_trips() {
        // Satellite requirement: every fine bucket's lower bound maps
        // back to the bucket it bounds, bounds are strictly increasing,
        // and the value just below each boundary lands one bucket lower.
        for i in 0..FINE_BUCKETS {
            let lb = fine_bucket_lower_bound(i);
            assert_eq!(fine_bucket_index(lb), i, "lower bound of bucket {i}");
            if i > 0 {
                assert!(
                    fine_bucket_lower_bound(i - 1) < lb,
                    "bounds must be strictly increasing at {i}"
                );
                assert_eq!(
                    fine_bucket_index(lb - 1),
                    i - 1,
                    "value below bucket {i}'s bound must land in bucket {}",
                    i - 1
                );
            }
        }
        // Exact region: one value per bucket below 2^FINE_SUB_BITS.
        for v in 0..(1u64 << FINE_SUB_BITS) {
            assert_eq!(fine_bucket_index(v), v as usize);
        }
        // Above the fine range everything clamps into the last bucket.
        assert_eq!(fine_bucket_index(u64::MAX), FINE_BUCKETS - 1);
        assert_eq!(
            fine_bucket_index(1 << (FINE_MAX_OCTAVE + 1)),
            FINE_BUCKETS - 1
        );
    }

    #[test]
    fn fine_histogram_resolves_the_microsecond_band() {
        let h = FineHistogram::new();
        // 1.1 µs and 1.6 µs share a log2 bucket but not a fine bucket.
        assert_eq!(bucket_index(1_100), bucket_index(1_600));
        assert_ne!(fine_bucket_index(1_100), fine_bucket_index(1_600));
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile_upper_bound(0.5);
        // Fine p50 sits within ~12% of the true 1 µs mode, not at 2 µs.
        assert!(p50 <= 1_280, "fine p50 {p50} must stay near the 1 µs mode");
        assert!(s.quantile_upper_bound(1.0) > 100_000);
        let before = s;
        h.record(1_000);
        let d = h.snapshot().since(&before);
        assert_eq!(d.count, 1);
        assert_eq!(d.buckets[fine_bucket_index(1_000)], 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.buckets[bucket_index(0)], 1);
        assert_eq!(s.buckets[bucket_index(2)], 2); // 2 and 3 share a bucket
        assert_eq!(s.buckets[bucket_index(1000)], 1);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_since_isolates_a_phase() {
        let h = Histogram::new();
        h.record(5);
        let before = h.snapshot();
        h.record(100);
        h.record(200);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 300);
        assert_eq!(delta.buckets[bucket_index(5)], 0);
        assert_eq!(delta.buckets[bucket_index(100)], 1);
        assert_eq!(delta.buckets[bucket_index(200)], 1);
    }

    #[test]
    fn quantile_upper_bound_is_bucket_exact() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), 16);
        assert_eq!(s.quantile_upper_bound(0.99), 16);
        assert_eq!(s.quantile_upper_bound(1.0), 1 << 21);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }

    struct FakeSource {
        hits: Counter,
        lat: Histogram,
    }

    impl MetricsSource for FakeSource {
        fn collect(&self, out: &mut MetricsCollector) {
            out.counter("hits", self.hits.get());
            out.histogram("lat_ns", self.lat.snapshot());
        }
    }

    fn fake() -> Arc<FakeSource> {
        Arc::new(FakeSource {
            hits: Counter::new(),
            lat: Histogram::new(),
        })
    }

    #[test]
    fn registry_snapshot_and_diff_round_trip() {
        let reg = MetricsRegistry::new();
        let src = fake();
        let weak: Weak<FakeSource> = Arc::downgrade(&src);
        let prefix = reg.register("pool", weak);
        assert_eq!(prefix, "pool");

        src.hits.add(3);
        src.lat.record(128);
        let a = reg.snapshot();
        assert_eq!(a.counter("pool.hits"), Some(3));
        assert_eq!(a.histogram("pool.lat_ns").unwrap().count, 1);

        src.hits.add(2);
        src.lat.record(256);
        let b = reg.snapshot();
        let d = b.since(&a);
        assert_eq!(d.counter("pool.hits"), Some(2));
        let lat = d.histogram("pool.lat_ns").unwrap();
        assert_eq!(lat.count, 1);
        assert_eq!(lat.buckets[bucket_index(256)], 1);
        assert_eq!(lat.buckets[bucket_index(128)], 0);
    }

    #[test]
    fn registry_uniquifies_prefixes_and_drops_dead_sources() {
        let reg = MetricsRegistry::new();
        let a = fake();
        let b = fake();
        assert_eq!(reg.register("pool", Arc::downgrade(&a) as _), "pool");
        assert_eq!(reg.register("pool", Arc::downgrade(&b) as _), "pool#2");
        b.hits.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool.hits"), Some(0));
        assert_eq!(snap.counter("pool#2.hits"), Some(1));

        drop(a);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pool.hits"), None, "dead sources vanish");
        assert_eq!(snap.counter("pool#2.hits"), Some(1));

        // The freed name is reusable once the dead weak is pruned.
        let c = fake();
        assert_eq!(reg.register("pool", Arc::downgrade(&c) as _), "pool");
    }

    #[test]
    fn snapshot_diff_passes_new_metrics_through() {
        let reg = MetricsRegistry::new();
        let a = reg.snapshot();
        let src = fake();
        src.hits.add(9);
        reg.register("late", Arc::downgrade(&src) as _);
        let d = reg.snapshot().since(&a);
        assert_eq!(d.counter("late.hits"), Some(9));
    }
}
