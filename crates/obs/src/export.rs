//! Trace and metrics exporters (and the matching loaders).
//!
//! Two trace formats are written side by side:
//!
//! * **Chrome `trace_event` JSON** ([`write_chrome_json`]) — loads
//!   directly in Perfetto or `chrome://tracing`. Paired kinds
//!   (job, merge, park, region) become `B`/`E` duration slices; the rest
//!   become instants. One JSON object per line, which keeps the loader
//!   ([`read_chrome_json`]) a line scanner instead of a JSON engine —
//!   the workspace builds offline, so there is no serde to lean on.
//! * **Events CSV** ([`write_events_csv`]) — a lossless
//!   `worker,ts_ns,kind,arg` dump for ad-hoc tooling, loaded back by
//!   [`read_events_csv`].
//!
//! Metrics snapshots get flat CSV ([`write_metrics_csv`]) and JSON
//! ([`write_metrics_json`]) dumps; histograms are flattened into
//! `count` / `sum` / `mean` / coarse quantiles plus their non-empty
//! buckets.
//!
//! The loaders only promise to read what the writers here produce.

use std::io::{self, Write};

use crate::event::{Event, EventKind};
use crate::metrics::{bucket_lower_bound, MetricValue, MetricsSnapshot};
use crate::trace::{ThreadTrace, Trace};

/// For paired kinds, the Chrome slice name and whether this side opens
/// (`B`) or closes (`E`) it.
fn span_of(kind: EventKind) -> Option<(&'static str, bool)> {
    match kind {
        EventKind::RegionBegin => Some(("region", true)),
        EventKind::RegionEnd => Some(("region", false)),
        EventKind::JobBegin => Some(("job", true)),
        EventKind::JobEnd => Some(("job", false)),
        EventKind::MergeBegin => Some(("merge", true)),
        EventKind::MergeEnd => Some(("merge", false)),
        EventKind::Park => Some(("park", true)),
        EventKind::Wake => Some(("park", false)),
        EventKind::StrandBegin => Some(("strand", true)),
        EventKind::StrandEnd => Some(("strand", false)),
        EventKind::SyncBegin => Some(("sync", true)),
        EventKind::SyncEnd => Some(("sync", false)),
        _ => None,
    }
}

fn kind_from_span(name: &str, begin: bool) -> Option<EventKind> {
    match (name, begin) {
        ("region", true) => Some(EventKind::RegionBegin),
        ("region", false) => Some(EventKind::RegionEnd),
        ("job", true) => Some(EventKind::JobBegin),
        ("job", false) => Some(EventKind::JobEnd),
        ("merge", true) => Some(EventKind::MergeBegin),
        ("merge", false) => Some(EventKind::MergeEnd),
        ("park", true) => Some(EventKind::Park),
        ("park", false) => Some(EventKind::Wake),
        ("strand", true) => Some(EventKind::StrandBegin),
        ("strand", false) => Some(EventKind::StrandEnd),
        ("sync", true) => Some(EventKind::SyncBegin),
        ("sync", false) => Some(EventKind::SyncEnd),
        _ => None,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes a Perfetto-loadable Chrome `trace_event` JSON document. `tid`
/// is the thread's index in the (label-sorted) trace; timestamps are
/// microseconds with nanosecond precision preserved in the fraction.
pub fn write_chrome_json<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    write_chrome_json_impl(trace, &[], w)
}

/// Like [`write_chrome_json`], but also renders the critical path from
/// a [`crate::dag::DagAnalysis`] as an extra named track (`tid` one past
/// the real threads, labeled `critical-path`): one `X` complete-event
/// slice per path node, so the span is visible as its own lane in
/// Perfetto next to the per-worker lanes. The loader skips `X` events,
/// so a file written this way still round-trips its event content.
pub fn write_chrome_json_with_path<W: Write>(
    trace: &Trace,
    path: &[crate::dag::PathNode],
    w: &mut W,
) -> io::Result<()> {
    write_chrome_json_impl(trace, path, w)
}

fn write_chrome_json_impl<W: Write>(
    trace: &Trace,
    path: &[crate::dag::PathNode],
    w: &mut W,
) -> io::Result<()> {
    writeln!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let mut line = |w: &mut W, s: String| -> io::Result<()> {
        if first {
            first = false;
            writeln!(w, "{s}")
        } else {
            writeln!(w, ",{s}")
        }
    };
    for (tid, t) in trace.threads.iter().enumerate() {
        line(
            w,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&t.label)
            ),
        )?;
        if t.dropped > 0 {
            line(
                w,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"cilkm_dropped\",\
                     \"args\":{{\"dropped\":{}}}}}",
                    t.dropped
                ),
            )?;
        }
        for ev in &t.events {
            let ts_us = ev.ts_ns as f64 / 1000.0;
            let s = match span_of(ev.kind) {
                Some((name, begin)) => format!(
                    "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\
                     \"name\":\"{name}\",\"args\":{{\"arg\":{}}}}}",
                    if begin { 'B' } else { 'E' },
                    ev.arg
                ),
                None => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\"s\":\"t\",\
                     \"name\":\"{}\",\"args\":{{\"arg\":{}}}}}",
                    ev.kind.name(),
                    ev.arg
                ),
            };
            line(w, s)?;
        }
    }
    if !path.is_empty() {
        let tid = trace.threads.len();
        line(
            w,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"critical-path\"}}}}"
            ),
        )?;
        for node in path {
            let ts_us = node.begin_ts_ns as f64 / 1000.0;
            let dur_us = node.end_ts_ns.saturating_sub(node.begin_ts_ns) as f64 / 1000.0;
            line(
                w,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3},\
                     \"dur\":{dur_us:.3},\"name\":\"{}\",\
                     \"args\":{{\"worker\":\"{}\",\"burden_ns\":{}}}}}",
                    json_escape(&node.label),
                    json_escape(&node.worker),
                    node.burden_ns
                ),
            )?;
        }
    }
    writeln!(w, "]}}")
}

/// Pulls `"key":<raw json scalar>` out of one of our own single-line
/// JSON objects. Only handles the writer's output shape.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        Some(&inner[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Loads a trace written by [`write_chrome_json`]. Timestamps come back
/// quantized to the stored microsecond precision (whole ns).
pub fn read_chrome_json(text: &str) -> Result<Trace, String> {
    // tid -> (label, dropped, events)
    let mut threads: Vec<(String, u64, Vec<Event>)> = Vec::new();
    let at = |tid: usize, threads: &mut Vec<(String, u64, Vec<Event>)>| {
        while threads.len() <= tid {
            threads.push((format!("tid-{}", threads.len()), 0, Vec::new()));
        }
    };
    for line in text.lines() {
        let line = line.trim().trim_start_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\"") {
            continue;
        }
        let ph = json_field(line, "ph").ok_or_else(|| format!("missing ph: {line}"))?;
        let tid: usize = json_field(line, "tid")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("missing tid: {line}"))?;
        at(tid, &mut threads);
        let name = json_field(line, "name").unwrap_or("");
        match ph {
            "M" => match name {
                "thread_name" => {
                    // Two "name" keys on this line; the label is the
                    // last one (inside args).
                    if let Some(pos) = line.rfind("\"name\":\"") {
                        let rest = &line[pos + 8..];
                        if let Some(end) = rest.find('"') {
                            threads[tid].0 = rest[..end].to_owned();
                        }
                    }
                }
                "cilkm_dropped" => {
                    threads[tid].1 = json_field(line, "dropped")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0);
                }
                _ => {}
            },
            "B" | "E" | "i" => {
                let kind = if ph == "i" {
                    EventKind::from_name(name)
                } else {
                    kind_from_span(name, ph == "B")
                }
                .ok_or_else(|| format!("unknown event name {name:?}"))?;
                let ts_us: f64 = json_field(line, "ts")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("missing ts: {line}"))?;
                let arg: u64 = json_field(line, "arg")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                threads[tid].2.push(Event {
                    ts_ns: (ts_us * 1000.0).round() as u64,
                    kind,
                    arg,
                });
            }
            _ => {}
        }
    }
    let mut out: Vec<ThreadTrace> = threads
        .into_iter()
        .map(|(label, dropped, events)| ThreadTrace {
            label,
            events,
            dropped,
        })
        // Metadata-only lanes (e.g. the `critical-path` track, whose
        // `X` slices are derived data, not events) carry nothing to
        // re-analyze; drop them instead of inventing empty workers.
        .filter(|t| !t.events.is_empty() || t.dropped > 0)
        .collect();
    out.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(Trace { threads: out })
}

/// Writes the lossless `worker,ts_ns,kind,arg` event dump. A pseudo-row
/// with kind `dropped` carries each thread's lost-event count.
pub fn write_events_csv<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    writeln!(w, "worker,ts_ns,kind,arg")?;
    for t in &trace.threads {
        for ev in &t.events {
            writeln!(w, "{},{},{},{}", t.label, ev.ts_ns, ev.kind.name(), ev.arg)?;
        }
        if t.dropped > 0 {
            writeln!(w, "{},0,dropped,{}", t.label, t.dropped)?;
        }
    }
    Ok(())
}

/// Loads a dump written by [`write_events_csv`].
pub fn read_events_csv(text: &str) -> Result<Trace, String> {
    let mut threads: Vec<ThreadTrace> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(4, ',');
        let (worker, ts, kind, arg) = (
            parts.next().ok_or_else(|| format!("line {i}: no worker"))?,
            parts.next().ok_or_else(|| format!("line {i}: no ts"))?,
            parts.next().ok_or_else(|| format!("line {i}: no kind"))?,
            parts.next().ok_or_else(|| format!("line {i}: no arg"))?,
        );
        let ts_ns: u64 = ts.parse().map_err(|_| format!("line {i}: bad ts {ts:?}"))?;
        let arg: u64 = arg
            .parse()
            .map_err(|_| format!("line {i}: bad arg {arg:?}"))?;
        let t = match threads.iter_mut().find(|t| t.label == worker) {
            Some(t) => t,
            None => {
                threads.push(ThreadTrace {
                    label: worker.to_owned(),
                    events: Vec::new(),
                    dropped: 0,
                });
                threads.last_mut().unwrap()
            }
        };
        if kind == "dropped" {
            t.dropped = arg;
        } else {
            let kind =
                EventKind::from_name(kind).ok_or_else(|| format!("line {i}: bad kind {kind:?}"))?;
            t.events.push(Event { ts_ns, kind, arg });
        }
    }
    threads.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(Trace { threads })
}

/// Flattens one histogram into `(suffix, text value)` rows shared by the
/// CSV and JSON metric writers.
fn histogram_rows(h: &crate::metrics::HistogramSnapshot) -> Vec<(String, String)> {
    let mut rows = vec![
        ("count".into(), h.count.to_string()),
        ("sum".into(), h.sum.to_string()),
        ("mean".into(), format!("{:.3}", h.mean())),
        ("p50_le".into(), h.quantile_upper_bound(0.5).to_string()),
        ("p99_le".into(), h.quantile_upper_bound(0.99).to_string()),
    ];
    for (i, &b) in h.buckets.iter().enumerate() {
        if b > 0 {
            rows.push((
                format!("bucket_ge_{}", bucket_lower_bound(i)),
                b.to_string(),
            ));
        }
    }
    rows
}

/// Writes a flat `metric,value` CSV. Histograms expand into
/// `name.count`, `name.sum`, `name.mean`, coarse quantiles, and one row
/// per non-empty bucket.
pub fn write_metrics_csv<W: Write>(snap: &MetricsSnapshot, w: &mut W) -> io::Result<()> {
    writeln!(w, "metric,value")?;
    for (name, value) in &snap.values {
        match value {
            MetricValue::Counter(v) => writeln!(w, "{name},{v}")?,
            MetricValue::Histogram(h) => {
                for (suffix, v) in histogram_rows(h) {
                    writeln!(w, "{name}.{suffix},{v}")?;
                }
            }
        }
    }
    Ok(())
}

/// Writes the snapshot as one flat JSON object (histograms expand into
/// dotted keys, as in the CSV form).
pub fn write_metrics_json<W: Write>(snap: &MetricsSnapshot, w: &mut W) -> io::Result<()> {
    writeln!(w, "{{")?;
    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, value) in &snap.values {
        match value {
            MetricValue::Counter(v) => rows.push((name.clone(), v.to_string())),
            MetricValue::Histogram(h) => {
                for (suffix, v) in histogram_rows(h) {
                    rows.push((format!("{name}.{suffix}"), v));
                }
            }
        }
    }
    for (i, (name, v)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(w, "  \"{}\": {v}{comma}", json_escape(name))?;
    }
    writeln!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsSnapshot};

    fn sample_trace() -> Trace {
        Trace {
            threads: vec![
                ThreadTrace {
                    label: "cilkm-worker-0".into(),
                    events: vec![
                        Event {
                            ts_ns: 1_500,
                            kind: EventKind::JobBegin,
                            arg: 0,
                        },
                        Event {
                            ts_ns: 2_500,
                            kind: EventKind::StealSuccess,
                            arg: 1,
                        },
                        Event {
                            ts_ns: 9_000,
                            kind: EventKind::JobEnd,
                            arg: 0,
                        },
                    ],
                    dropped: 0,
                },
                ThreadTrace {
                    label: "cilkm-worker-1".into(),
                    events: vec![
                        Event {
                            ts_ns: 3_000,
                            kind: EventKind::Park,
                            arg: 0,
                        },
                        Event {
                            ts_ns: 8_000,
                            kind: EventKind::Wake,
                            arg: 0,
                        },
                        Event {
                            ts_ns: 8_100,
                            kind: EventKind::Pmap,
                            arg: 16,
                        },
                    ],
                    dropped: 2,
                },
            ],
        }
    }

    #[test]
    fn events_csv_round_trips_losslessly() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_events_csv(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_events_csv(&text).unwrap();
        assert_eq!(back.threads.len(), 2);
        for (a, b) in trace.threads.iter().zip(&back.threads) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.events, b.events);
            assert_eq!(a.dropped, b.dropped);
        }
    }

    #[test]
    fn chrome_json_round_trips_kinds_and_args() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_chrome_json(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));

        let back = read_chrome_json(&text).unwrap();
        assert_eq!(back.threads.len(), 2);
        assert_eq!(back.threads[0].label, "cilkm-worker-0");
        assert_eq!(back.threads[1].dropped, 2);
        for (a, b) in trace.threads.iter().zip(&back.threads) {
            assert_eq!(a.events.len(), b.events.len());
            for (ea, eb) in a.events.iter().zip(&b.events) {
                assert_eq!(ea.kind, eb.kind);
                assert_eq!(ea.arg, eb.arg);
                // Timestamps survive at microsecond-file precision.
                assert_eq!(ea.ts_ns, eb.ts_ns);
            }
        }
    }

    #[test]
    fn critical_path_track_is_written_and_skipped_on_load() {
        let trace = sample_trace();
        let path = vec![
            crate::dag::PathNode {
                label: "strand 1".into(),
                worker: "cilkm-worker-0".into(),
                begin_ts_ns: 1_500,
                end_ts_ns: 8_000,
                burden_ns: 0,
            },
            crate::dag::PathNode {
                label: "hypermerge @ sync 2".into(),
                worker: "cilkm-worker-0".into(),
                begin_ts_ns: 8_000,
                end_ts_ns: 9_000,
                burden_ns: 1_000,
            },
        ];
        let mut buf = Vec::new();
        write_chrome_json_with_path(&trace, &path, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // The path renders as its own named track of X slices on a tid
        // one past the real threads.
        assert!(text.contains("\"name\":\"critical-path\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"burden_ns\":1000"));
        assert!(text.contains(&format!("\"tid\":{}", trace.threads.len())));
        // The loader sees exactly the same event content as a plain
        // write: the path track is derived data, not events.
        let back = read_chrome_json(&text).unwrap();
        let mut plain = Vec::new();
        write_chrome_json(&trace, &mut plain).unwrap();
        let plain_back = read_chrome_json(&String::from_utf8(plain).unwrap()).unwrap();
        assert_eq!(back.threads.len(), plain_back.threads.len());
        for (a, b) in back.threads.iter().zip(&plain_back.threads) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.events, b.events);
        }
    }

    proptest::proptest! {
        /// Every event kind — including the PR-8 DAG vocabulary — with
        /// arbitrary args survives both exporters. Timestamps are kept
        /// under 2^50 ns (~13 days) so the Chrome format's f64
        /// microsecond field stays exact: at 2^52 the representation
        /// error of `ts/1000.0` reaches the 0.5 ns rounding boundary.
        #[test]
        fn any_event_stream_round_trips_both_formats(
            raw in proptest::collection::vec(
                (0u64..(1 << 50), 0..EventKind::ALL.len(), proptest::prelude::any::<u64>()),
                1..48,
            )
        ) {
            let events: Vec<Event> = raw
                .into_iter()
                .map(|(ts_ns, k, arg)| Event { ts_ns, kind: EventKind::ALL[k], arg })
                .collect();
            let trace = Trace {
                threads: vec![ThreadTrace { label: "w0".into(), events, dropped: 0 }],
            };

            let mut buf = Vec::new();
            write_events_csv(&trace, &mut buf).unwrap();
            let csv_back = read_events_csv(&String::from_utf8(buf).unwrap()).unwrap();
            proptest::prop_assert_eq!(&csv_back.threads[0].events, &trace.threads[0].events);

            let mut buf = Vec::new();
            write_chrome_json(&trace, &mut buf).unwrap();
            let json_back = read_chrome_json(&String::from_utf8(buf).unwrap()).unwrap();
            proptest::prop_assert_eq!(&json_back.threads[0].events, &trace.threads[0].events);
        }
    }

    #[test]
    fn metrics_csv_and_json_flatten_histograms() {
        let h = Histogram::new();
        h.record(100);
        h.record(5_000);
        let mut snap = MetricsSnapshot::default();
        snap.values.insert(
            "core.lookups".into(),
            crate::metrics::MetricValue::Counter(42),
        );
        snap.values.insert(
            "core.merge_ns".into(),
            crate::metrics::MetricValue::Histogram(h.snapshot()),
        );

        let mut buf = Vec::new();
        write_metrics_csv(&snap, &mut buf).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.contains("core.lookups,42"));
        assert!(csv.contains("core.merge_ns.count,2"));
        assert!(csv.contains("core.merge_ns.sum,5100"));
        assert!(csv.contains("core.merge_ns.bucket_ge_64,1"));
        assert!(csv.contains("core.merge_ns.bucket_ge_4096,1"));

        let mut buf = Vec::new();
        write_metrics_json(&snap, &mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.contains("\"core.lookups\": 42"));
        assert!(json.contains("\"core.merge_ns.count\": 2"));
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
    }
}
