//! The process-wide tracing front end.
//!
//! Instrumentation sites in the runtime call [`emit`], which is the only
//! function on any remotely warm path. Its cost structure:
//!
//! * **`trace` feature off** (the default): the body is compiled out and
//!   the call folds to nothing — the acceptance bar is *zero* lookup
//!   regression with the feature disabled.
//! * **Feature on, tracing disabled at runtime**: one `Relaxed` load of
//!   a process-wide flag.
//! * **Feature on and enabled**: a clock read plus a ring push (two
//!   plain stores and a `Release` store; see [`crate::ring`]).
//!
//! Each thread lazily creates its own ring on first emit and registers
//! the shared handle in a process-wide list; [`drain`] snapshots every
//! registered ring into a [`Trace`]. Draining is race-free even while
//! workers keep emitting (verified under the model checker), so callers
//! such as `Pool::run` can collect a trace without quiescing the pool.

// lint: allow-file(raw-sync, the tracer's enabled flag and ring registry are process-global control plane shared with non-pool threads; the recorded msync primitives are scoped to a model run and cannot back process-wide statics — ring hand-off itself is verified separately in crates/checker's drain model)

use crate::event::{Event, EventKind};

#[cfg(feature = "trace")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    use crate::clock;
    use crate::event::{Event, EventKind};
    use crate::ring::{TraceRing, TraceWriter};

    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);

    /// Task-id allocator for the DAG events ([`EventKind::Spawn`] and
    /// friends). Starts at 1 so 0 can mean "no id" (tracing was off when
    /// the task was spawned).
    pub(super) static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

    fn registry() -> &'static Mutex<Vec<Arc<TraceRing>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<TraceRing>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Per-thread ring capacity: `CILKM_TRACE_CAP` (events), read once.
    fn capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            std::env::var("CILKM_TRACE_CAP")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(super::DEFAULT_RING_CAPACITY)
        })
    }

    thread_local! {
        static WRITER: RefCell<Option<TraceWriter>> = const { RefCell::new(None) };
    }

    /// One-time per-thread ring setup: names and allocates the ring and
    /// registers its shared handle. Outlined from [`emit`] so the warm
    /// path stays allocation- and formatting-free (the lint checks it).
    #[cold]
    fn new_writer() -> TraceWriter {
        let label = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
        let (writer, ring) = TraceRing::new(capacity(), label);
        registry().lock().unwrap().push(ring);
        writer
    }

    // lint: hot-path
    pub(super) fn emit(kind: EventKind, arg: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let ev = Event {
            ts_ns: clock::now_ns(),
            kind,
            arg,
        };
        WRITER.with(|cell| {
            // Re-entrancy (an emit during ring setup) or emit during TLS
            // teardown would fail the borrow / access; such events are
            // silently skipped rather than aborting the process.
            let Ok(mut slot) = cell.try_borrow_mut() else {
                return;
            };
            let writer = slot.get_or_insert_with(new_writer);
            writer.push(ev);
        });
    }

    pub(super) fn drain() -> super::Trace {
        let rings = registry().lock().unwrap();
        let mut threads: Vec<super::ThreadTrace> = rings
            .iter()
            .map(|ring| super::ThreadTrace {
                label: ring.label().to_owned(),
                events: ring.snapshot(),
                dropped: ring.dropped(),
            })
            .collect();
        // Stable order for exports and tests regardless of which thread
        // happened to register first.
        threads.sort_by(|a, b| a.label.cmp(&b.label));
        super::Trace { threads }
    }
}

/// Default per-thread ring capacity in events (24 bytes each, so 1.5 MiB
/// per thread). Override with the `CILKM_TRACE_CAP` environment variable.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// True if the crate was built with the `trace` feature; when false,
/// [`emit`] compiles to nothing and [`set_enabled`] cannot turn tracing
/// on.
#[inline]
pub fn compiled() -> bool {
    cfg!(feature = "trace")
}

/// Turns runtime event collection on or off (no-op without the `trace`
/// feature). Returns whether tracing is actually on afterwards.
pub fn set_enabled(on: bool) -> bool {
    #[cfg(feature = "trace")]
    {
        if on {
            crate::clock::warm_up();
        }
        imp::ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
        on
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = on;
        false
    }
}

/// Whether events are currently being collected.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        imp::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Allocates a fresh nonzero task id for the DAG events
/// ([`EventKind::Spawn`] / [`EventKind::StrandBegin`] /
/// [`EventKind::SyncBegin`] and friends), or returns 0 when tracing is
/// off (compiled out or disabled) so spawn sites pay only the
/// [`enabled`] check. Ids are process-global and never reused, so they
/// stay unique across regions and pools.
// lint: hot-path
#[inline]
pub fn next_task_id() -> u64 {
    #[cfg(feature = "trace")]
    {
        use std::sync::atomic::Ordering;
        if !imp::ENABLED.load(Ordering::Relaxed) {
            return 0;
        }
        imp::NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        0
    }
}

/// Records one event on the calling thread's ring. The meaning of `arg`
/// depends on `kind` (see [`EventKind`]).
// lint: hot-path
#[inline]
pub fn emit(kind: EventKind, arg: u64) {
    #[cfg(feature = "trace")]
    imp::emit(kind, arg);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, arg);
    }
}

/// Snapshots every thread's ring into a [`Trace`]. Safe to call while
/// other threads keep emitting; each ring contributes its published
/// prefix. Returns an empty trace without the `trace` feature.
pub fn drain() -> Trace {
    #[cfg(feature = "trace")]
    {
        imp::drain()
    }
    #[cfg(not(feature = "trace"))]
    {
        Trace {
            threads: Vec::new(),
        }
    }
}

/// The events one thread recorded, in emission order.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// The thread's name at first emit (workers are named
    /// `cilkm-worker-N` by the pool).
    pub label: String,
    /// Published events, oldest first.
    pub events: Vec<Event>,
    /// Events lost because the ring filled up. Nonzero `dropped` means
    /// durations derived from this trace undercount.
    pub dropped: u64,
}

/// A drained trace: one [`ThreadTrace`] per thread that ever emitted,
/// sorted by label.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-thread event sequences.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Total events across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True if no thread recorded any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to full rings, across all threads.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Windows the trace to events at or after `t0` (a [`crate::clock`]
    /// timestamp), dropping threads left with nothing to report. Rings
    /// are never cleared, so this is how a caller isolates one traced
    /// region from earlier ones.
    pub fn since_ns(mut self, t0: u64) -> Trace {
        for t in &mut self.threads {
            t.events.retain(|e| e.ts_ns >= t0);
        }
        self.threads
            .retain(|t| !t.events.is_empty() || t.dropped > 0);
        self
    }

    /// Events of one kind across all threads (analysis helper).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == kind)
            .count() as u64
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    // The enabled flag and ring registry are process-wide, so the tests
    // that toggle them run under one lock to avoid cross-talk.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_emit_records_nothing() {
        let _g = serial();
        set_enabled(false);
        let before = drain().len();
        emit(EventKind::Park, 0);
        assert_eq!(drain().len(), before);
    }

    #[test]
    fn enabled_emit_is_drained_with_thread_label() {
        let _g = serial();
        set_enabled(true);
        std::thread::Builder::new()
            .name("obs-test-thread".into())
            .spawn(|| {
                emit(EventKind::StealSuccess, 7);
                emit(EventKind::Pmap, 3);
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let trace = drain();
        let t = trace
            .threads
            .iter()
            .find(|t| t.label == "obs-test-thread")
            .expect("ring registered under the thread name");
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, EventKind::StealSuccess);
        assert_eq!(t.events[0].arg, 7);
        assert_eq!(t.events[1].kind, EventKind::Pmap);
        assert!(t.events[0].ts_ns <= t.events[1].ts_ns);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn compiled_reflects_feature() {
        assert!(compiled());
    }
}
