//! # cilkm-obs — runtime observability for the cilkm workspace
//!
//! The paper's evaluation (§8, Figures 1 and 8) rests on *decomposing*
//! reduce overhead — view creation, view insertion, view transferal,
//! hypermerge — and on *counting* `sys_pmap` kernel crossings. This crate
//! is the one place all of that telemetry flows through:
//!
//! * [`trace`] — a lock-free per-worker **event tracer**: fixed-capacity
//!   thread-local ring buffers of compact binary [`Event`]s (steal
//!   success/fail, job begin/end, detach/attach, merge begin/end,
//!   park/wake, simulated kernel crossings), timestamped with a cheap
//!   monotonic [`clock`]. Compiled out entirely unless the `trace` cargo
//!   feature is on; runtime-switchable on top of that.
//! * [`metrics`] — a **metrics registry** that unifies the reducer
//!   instrumentation (`cilkm-core`), kernel-crossing counters
//!   (`cilkm-tlmm`), and scheduler counters (`cilkm-runtime`) behind one
//!   snapshot/diff API, with log2-bucketed latency [`Histogram`]s for
//!   the four §8 overhead categories.
//! * [`export`] — Chrome `trace_event` JSON (loads in Perfetto /
//!   `chrome://tracing`) and flat CSV/JSON dumps for `bench_out/`.
//! * [`analyze`] — the summarizer behind the `cilkm-trace` binary:
//!   per-worker utilization, steal/idle breakdown, merge critical-path
//!   estimate, crossings per steal.
//! * [`dag`] — offline **series-parallel DAG reconstruction** from the
//!   spawn/sync/strand events: exact work, span, parallelism, burdened
//!   span, and a top-K critical-path attribution table (which
//!   hypermerges, view transferals, and kernel crossings sit *on* the
//!   span).
//! * [`profile`] — the **online Cilkview-style work/span profiler**:
//!   constant-space per-worker accumulators that ride the scheduler's
//!   spawn/sync hand-offs, so `Pool::run_profiled` can return a
//!   [`ParallelismReport`] without draining any ring.
//!
//! Layering: this crate sits *below* `cilkm-tlmm`, `cilkm-runtime`, and
//! `cilkm-core`, all of which emit into it; it depends on nothing but
//! (optionally) `cilkm-checker` for model-checking its ring buffer.
//!
//! [`Event`]: event::Event
//! [`Histogram`]: metrics::Histogram

#![deny(missing_docs)]

pub mod analyze;
pub mod clock;
pub mod dag;
pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod trace;

pub(crate) mod msync;

#[cfg(all(test, feature = "model"))]
mod model_tests;

pub use dag::DagAnalysis;
pub use event::{Event, EventKind};
pub use metrics::{
    Counter, FineHistogram, FineHistogramSnapshot, Histogram, HistogramSnapshot, MetricValue,
    MetricsRegistry, MetricsSnapshot, MetricsSource,
};
pub use profile::{Burden, BurdenBreakdown, ParallelismReport};
pub use trace::{ThreadTrace, Trace};
