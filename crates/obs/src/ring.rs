//! The per-thread trace ring buffer.
//!
//! Design constraints, in order:
//!
//! 1. **The writer is the hot side.** A worker records an event with two
//!    plain stores and one `Release` store — no locks, no RMW, no
//!    allocation, no branches beyond the capacity check.
//! 2. **Draining must be race-free while workers keep running.** Idle
//!    workers emit park/steal events at any time, so the drain cannot
//!    assume quiescence. The ring is therefore *write-once*: slots
//!    `[0, len)` are immutable once `len` is published with `Release`,
//!    and a drainer reading `len` with `Acquire` only ever touches that
//!    immutable prefix. When the ring is full, new events are counted as
//!    dropped rather than wrapping (wrapping would overwrite slots a
//!    concurrent drainer may be reading).
//! 3. **Model-checkable.** The publication atomics go through
//!    [`crate::msync`], and slot accesses are reported to the checker's
//!    race detector, so the protocol in (2) is verified — not just
//!    argued — under `--features model` (see `model_tests`).
//!
//! Exactly one [`TraceWriter`] exists per ring; it is `!Sync` and its
//! `push` takes `&mut self`, so the single-writer contract is enforced
//! by the type system rather than by documentation.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::event::Event;
use crate::msync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::msync::{note_read, note_write};

/// The shared side of one thread's trace ring: readable by any thread.
pub struct TraceRing {
    label: String,
    slots: Box<[UnsafeCell<Event>]>,
    /// Number of published slots. Stored with `Release` after the slot
    /// write; loaded with `Acquire` by drainers.
    len: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: concurrent access is confined to the write-once protocol in
// the module docs — the unique `TraceWriter` writes slot `len` before
// publishing `len + 1` with `Release`, and readers only dereference
// slots below an `Acquire`-loaded `len`, which are never written again.
unsafe impl Send for TraceRing {}
// SAFETY: as for `Send`.
unsafe impl Sync for TraceRing {}

/// The unique writing handle of a [`TraceRing`].
///
/// Not `Clone`, and `push` takes `&mut self`: at most one thread can be
/// recording into a given ring at a time, which is what makes the plain
/// slot store in `push` sound.
pub struct TraceWriter {
    ring: Arc<TraceRing>,
}

impl TraceRing {
    /// Creates a ring of `capacity` events and returns the unique writer
    /// plus the shared (drainable) handle.
    pub fn new(capacity: usize, label: impl Into<String>) -> (TraceWriter, Arc<TraceRing>) {
        assert!(capacity > 0, "trace ring needs at least one slot");
        let ring = Arc::new(TraceRing {
            label: label.into(),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(Event::ZERO))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        });
        (
            TraceWriter {
                ring: Arc::clone(&ring),
            },
            ring,
        )
    }

    /// The label this ring was registered under (thread/worker name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the published events. Safe to call at any time, even
    /// while the owning thread keeps recording: only the immutable
    /// prefix below the `Acquire`-loaded length is read.
    pub fn snapshot(&self) -> Vec<Event> {
        let n = self.len.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            note_read(slot.get() as usize);
            // SAFETY: `slot` is below the published length, so it was
            // fully written before the writer's `Release` store that our
            // `Acquire` load observed, and write-once slots are never
            // touched again.
            out.push(unsafe { *slot.get() });
        }
        out
    }

    /// Model-only negative control: reads one slot *past* the published
    /// length, deliberately violating the write-once protocol. The model
    /// checker must report this as a data race (see `model_tests`) —
    /// proving the race detector is actually watching the slots, so the
    /// clean verdict on [`TraceRing::snapshot`] means something.
    #[cfg(feature = "model")]
    pub fn snapshot_overread(&self) -> Vec<Event> {
        let n = (self.len.load(Ordering::Acquire) + 1).min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            note_read(slot.get() as usize);
            // SAFETY: deliberately unsound-by-protocol (that is the
            // point of the test); the read itself stays in-bounds and
            // `Event` is `Copy` with no invalid bit patterns, so the
            // torn value is still a valid `Event`.
            out.push(unsafe { *slot.get() });
        }
        out
    }
}

impl TraceWriter {
    /// Records one event; counts it as dropped if the ring is full.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        let ring = &*self.ring;
        // Only this writer ever stores `len`, so a Relaxed load reads
        // our own last store.
        let n = ring.len.load(Ordering::Relaxed);
        if n == ring.slots.len() {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = ring.slots[n].get();
        note_write(slot as usize);
        // SAFETY: slot `n` is above the published length, so no reader
        // touches it yet, and `&mut self` excludes other writers.
        unsafe { *slot = ev };
        // Publish: the slot write happens-before any reader that
        // observes the new length.
        ring.len.store(n + 1, Ordering::Release);
    }

    /// The shared handle of the ring this writer feeds.
    pub fn ring(&self) -> &Arc<TraceRing> {
        &self.ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Park,
            arg: ts * 10,
        }
    }

    #[test]
    fn push_then_snapshot_round_trips() {
        let (mut w, ring) = TraceRing::new(8, "t");
        for i in 0..5 {
            w.push(ev(i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
            assert_eq!(e.arg, i as u64 * 10);
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.label(), "t");
    }

    #[test]
    fn full_ring_counts_drops_and_keeps_prefix() {
        let (mut w, ring) = TraceRing::new(3, "t");
        for i in 0..10 {
            w.push(ev(i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].ts_ns, 2, "earliest events are kept, not wrapped");
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn snapshot_is_a_stable_prefix_under_concurrent_writes() {
        let (mut w, ring) = TraceRing::new(4096, "t");
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut last = 0usize;
                for _ in 0..1000 {
                    let snap = ring.snapshot();
                    assert!(snap.len() >= last, "published prefix never shrinks");
                    for (i, e) in snap.iter().enumerate() {
                        assert_eq!(e.ts_ns, i as u64, "prefix contents are immutable");
                    }
                    last = snap.len();
                }
            })
        };
        for i in 0..4096 {
            w.push(ev(i));
        }
        reader.join().unwrap();
        assert_eq!(ring.snapshot().len(), 4096);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = TraceRing::new(0, "t");
    }
}
