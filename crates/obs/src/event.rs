//! Compact binary trace events.
//!
//! One event is 24 bytes: a nanosecond timestamp ([`crate::clock`]), a
//! kind byte, and one argument word whose meaning depends on the kind
//! (victim index for steals, page count for `pmap`, and so on). Events
//! are written into per-thread ring buffers ([`crate::ring`]) and only
//! decoded at export/analysis time.

/// What happened. The discriminants are stable (they appear in exported
/// CSV files), so new kinds must be appended, not inserted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A `Pool::run` region started (emitted on the calling thread).
    RegionBegin = 0,
    /// A `Pool::run` region completed.
    RegionEnd = 1,
    /// A steal committed; `arg` = victim worker index.
    StealSuccess = 2,
    /// A full steal sweep found nothing. Emitted once per *idle episode*
    /// (the first failed sweep after useful work), not per sweep — the
    /// per-sweep total lives in the pool's `failed_steals` counter, and
    /// per-sweep events would flood the ring while workers spin.
    StealFail = 3,
    /// A foreign job (stolen, injected, or leapfrogged) started.
    JobBegin = 4,
    /// The foreign job finished (after its view transferal).
    JobEnd = 5,
    /// View transferal out of the current context. `arg` = 0 for a
    /// detach (views published to a join frame), 1 for a suspension
    /// (views set aside for leapfrogging).
    Detach = 6,
    /// A view set was re-installed as the current context. `arg` as for
    /// [`EventKind::Detach`].
    Attach = 7,
    /// A hypermerge started at a join.
    MergeBegin = 8,
    /// The hypermerge finished.
    MergeEnd = 9,
    /// The worker is about to park (all steal attempts failed).
    Park = 10,
    /// The worker returned from parking.
    Wake = 11,
    /// Simulated `sys_palloc` kernel crossing.
    Palloc = 12,
    /// Simulated `sys_pfree` kernel crossing.
    Pfree = 13,
    /// Simulated `sys_pmap` kernel crossing; `arg` = pages touched.
    Pmap = 14,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 15] = [
        EventKind::RegionBegin,
        EventKind::RegionEnd,
        EventKind::StealSuccess,
        EventKind::StealFail,
        EventKind::JobBegin,
        EventKind::JobEnd,
        EventKind::Detach,
        EventKind::Attach,
        EventKind::MergeBegin,
        EventKind::MergeEnd,
        EventKind::Park,
        EventKind::Wake,
        EventKind::Palloc,
        EventKind::Pfree,
        EventKind::Pmap,
    ];

    /// Stable lower-case name (used in CSV and Chrome trace output).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RegionBegin => "region_begin",
            EventKind::RegionEnd => "region_end",
            EventKind::StealSuccess => "steal_success",
            EventKind::StealFail => "steal_fail",
            EventKind::JobBegin => "job_begin",
            EventKind::JobEnd => "job_end",
            EventKind::Detach => "detach",
            EventKind::Attach => "attach",
            EventKind::MergeBegin => "merge_begin",
            EventKind::MergeEnd => "merge_end",
            EventKind::Park => "park",
            EventKind::Wake => "wake",
            EventKind::Palloc => "palloc",
            EventKind::Pfree => "pfree",
            EventKind::Pmap => "pmap",
        }
    }

    /// Parses a stable name back into a kind (for trace-file loading).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Reconstructs a kind from its discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One trace event: timestamp, kind, argument.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process clock anchor ([`crate::clock`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (see [`EventKind`] variants).
    pub arg: u64,
}

impl Event {
    /// A placeholder event (ring buffers are initialized with these; a
    /// reader never observes one because only the written prefix of a
    /// ring is published).
    pub const ZERO: Event = Event {
        ts_ns: 0,
        kind: EventKind::RegionBegin,
        arg: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_name("nonsense"), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn discriminants_are_dense_and_stable() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k as u8 as usize, i, "discriminants must stay dense");
        }
    }
}
