//! Compact binary trace events.
//!
//! One event is 24 bytes: a nanosecond timestamp ([`crate::clock`]), a
//! kind byte, and one argument word whose meaning depends on the kind
//! (victim index for steals, page count for `pmap`, and so on). Events
//! are written into per-thread ring buffers ([`crate::ring`]) and only
//! decoded at export/analysis time.

/// What happened. The discriminants are stable (they appear in exported
/// CSV files), so new kinds must be appended, not inserted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A `Pool::run` region started (emitted on the calling thread).
    RegionBegin = 0,
    /// A `Pool::run` region completed.
    RegionEnd = 1,
    /// A steal committed; `arg` = victim worker index.
    StealSuccess = 2,
    /// A full steal sweep found nothing. Emitted once per *idle episode*
    /// (the first failed sweep after useful work), not per sweep — the
    /// per-sweep total lives in the pool's `failed_steals` counter, and
    /// per-sweep events would flood the ring while workers spin.
    StealFail = 3,
    /// A foreign job (stolen, injected, or leapfrogged) started.
    JobBegin = 4,
    /// The foreign job finished (after its view transferal).
    JobEnd = 5,
    /// View transferal out of the current context. `arg` = 0 for a
    /// detach (views published to a join frame), 1 for a suspension
    /// (views set aside for leapfrogging).
    Detach = 6,
    /// A view set was re-installed as the current context. `arg` as for
    /// [`EventKind::Detach`].
    Attach = 7,
    /// A hypermerge started at a join.
    MergeBegin = 8,
    /// The hypermerge finished.
    MergeEnd = 9,
    /// The worker is about to park (all steal attempts failed).
    Park = 10,
    /// The worker returned from parking.
    Wake = 11,
    /// Simulated `sys_palloc` kernel crossing.
    Palloc = 12,
    /// Simulated `sys_pfree` kernel crossing.
    Pfree = 13,
    /// Simulated `sys_pmap` kernel crossing; `arg` = pages touched.
    Pmap = 14,
    /// A task (the right branch of a `join`, a `scope` spawn, or the
    /// root job of a `Pool::run` region) was made stealable; `arg` = the
    /// task id from [`crate::trace::next_task_id`]. Together with the
    /// strand-boundary events below this makes the series-parallel DAG
    /// reconstructible offline (see [`crate::dag`]).
    Spawn = 15,
    /// A spawned task started executing *inline* on the worker that
    /// spawned it (the common popped-own-deque case); `arg` = task id.
    /// Foreign execution reuses [`EventKind::JobBegin`] with the task id
    /// as `arg`.
    StrandBegin = 16,
    /// The inline task of the matching [`EventKind::StrandBegin`]
    /// finished; `arg` = task id.
    StrandEnd = 17,
    /// The continuation reached the sync point of a `join` or `scope`
    /// (left branch done, about to wait for spawned tasks); `arg` = the
    /// task id being joined (`join`) or a fresh sync id (`scope`).
    SyncBegin = 18,
    /// The sync completed: all joined tasks finished and any hypermerge
    /// ran; `arg` as for [`EventKind::SyncBegin`].
    SyncEnd = 19,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 20] = [
        EventKind::RegionBegin,
        EventKind::RegionEnd,
        EventKind::StealSuccess,
        EventKind::StealFail,
        EventKind::JobBegin,
        EventKind::JobEnd,
        EventKind::Detach,
        EventKind::Attach,
        EventKind::MergeBegin,
        EventKind::MergeEnd,
        EventKind::Park,
        EventKind::Wake,
        EventKind::Palloc,
        EventKind::Pfree,
        EventKind::Pmap,
        EventKind::Spawn,
        EventKind::StrandBegin,
        EventKind::StrandEnd,
        EventKind::SyncBegin,
        EventKind::SyncEnd,
    ];

    /// Stable lower-case name (used in CSV and Chrome trace output).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RegionBegin => "region_begin",
            EventKind::RegionEnd => "region_end",
            EventKind::StealSuccess => "steal_success",
            EventKind::StealFail => "steal_fail",
            EventKind::JobBegin => "job_begin",
            EventKind::JobEnd => "job_end",
            EventKind::Detach => "detach",
            EventKind::Attach => "attach",
            EventKind::MergeBegin => "merge_begin",
            EventKind::MergeEnd => "merge_end",
            EventKind::Park => "park",
            EventKind::Wake => "wake",
            EventKind::Palloc => "palloc",
            EventKind::Pfree => "pfree",
            EventKind::Pmap => "pmap",
            EventKind::Spawn => "spawn",
            EventKind::StrandBegin => "strand_begin",
            EventKind::StrandEnd => "strand_end",
            EventKind::SyncBegin => "sync_begin",
            EventKind::SyncEnd => "sync_end",
        }
    }

    /// Parses a stable name back into a kind (for trace-file loading).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Reconstructs a kind from its discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One trace event: timestamp, kind, argument.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process clock anchor ([`crate::clock`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (see [`EventKind`] variants).
    pub arg: u64,
}

impl Event {
    /// A placeholder event (ring buffers are initialized with these; a
    /// reader never observes one because only the written prefix of a
    /// ring is published).
    pub const ZERO: Event = Event {
        ts_ns: 0,
        kind: EventKind::RegionBegin,
        arg: 0,
    };
}

/// Packs a cpu id into the high 32 bits of an event argument, keeping
/// the kind-specific payload in the low 32. The stored value is
/// `cpu + 1` so that 0 keeps meaning "cpu unknown" (portable fallback,
/// or tracing enabled on a platform without `sched_getcpu`); the
/// payload survives unchanged for decoders that only read the low word
/// via [`arg_low`].
#[inline]
pub fn pack_cpu(low: u64, cpu: Option<u32>) -> u64 {
    debug_assert!(low <= u32::MAX as u64, "payload must fit in 32 bits");
    let hi = match cpu {
        Some(c) => (c as u64).wrapping_add(1) << 32,
        None => 0,
    };
    hi | (low & 0xffff_ffff)
}

/// The kind-specific payload of a cpu-packed argument (low 32 bits).
#[inline]
pub fn arg_low(arg: u64) -> u64 {
    arg & 0xffff_ffff
}

/// The cpu id packed into `arg` by [`pack_cpu`], if one was recorded.
#[inline]
pub fn arg_cpu(arg: u64) -> Option<u32> {
    let hi = (arg >> 32) as u32;
    hi.checked_sub(1)
}

/// The CPU the calling thread is running on, via `sched_getcpu`.
/// Returns `None` on platforms without the call (and under Miri, whose
/// FFI layer does not model it) — the portable fallback the trace
/// format encodes as "cpu unknown".
#[inline]
pub fn current_cpu() -> Option<u32> {
    #[cfg(all(target_os = "linux", not(miri)))]
    {
        extern "C" {
            fn sched_getcpu() -> i32;
        }
        // SAFETY: `sched_getcpu` takes no arguments, has no
        // preconditions, and returns -1 on error; it is async-signal
        // safe on glibc (a vDSO/rseq read).
        let cpu = unsafe { sched_getcpu() };
        u32::try_from(cpu).ok()
    }
    #[cfg(not(all(target_os = "linux", not(miri))))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_name("nonsense"), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn discriminants_are_dense_and_stable() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k as u8 as usize, i, "discriminants must stay dense");
        }
    }

    #[test]
    fn cpu_packing_round_trips() {
        assert_eq!(pack_cpu(7, None), 7);
        assert_eq!(arg_cpu(7), None);
        assert_eq!(arg_low(7), 7);
        let packed = pack_cpu(3, Some(0));
        assert_eq!(arg_low(packed), 3);
        assert_eq!(arg_cpu(packed), Some(0));
        let packed = pack_cpu(u32::MAX as u64, Some(u32::MAX - 1));
        assert_eq!(arg_low(packed), u32::MAX as u64);
        assert_eq!(arg_cpu(packed), Some(u32::MAX - 1));
    }

    #[test]
    fn current_cpu_is_stable_enough_to_call() {
        // Smoke: must not crash; on Linux outside Miri it reports a cpu.
        let c = current_cpu();
        if cfg!(all(target_os = "linux", not(miri))) {
            assert!(c.is_some());
        }
    }
}
