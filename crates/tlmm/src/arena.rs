//! The simulated physical-page allocator ("the kernel side" of TLMM).

// lint: allow-file(raw-sync, this crate plays the kernel in the simulation and is deliberately outside the model-checked surface — its `model` feature only forwards to the tracer (see Cargo.toml); the free-list mutex and crossing counters stand in for kernel-internal locking that TLMM-Linux itself provides)

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::stats;
use crate::{PageDesc, PAGE_SIZE, PD_NULL};

/// Layout of one simulated physical page: 4 KBytes, page-aligned, zeroed on
/// allocation (fresh physical pages are zero-filled by the kernel, a fact
/// the SPA-map recycling invariant of §7 relies on).
fn page_layout() -> Layout {
    Layout::from_size_align(PAGE_SIZE, PAGE_SIZE).expect("static layout")
}

/// One arena slot: either a live page or a free-list link.
enum Slot {
    /// A live physical page (base pointer of a 4-KByte allocation).
    Live(*mut u8),
    /// Free slot; value is the next free slot index or `u32::MAX`.
    Free(u32),
}

// SAFETY: the raw page pointer in a `Live` slot is plain heap memory
// owned by the arena, freed exactly once by `pfree`/`Drop`.
unsafe impl Send for Slot {}

struct ArenaInner {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
}

/// Aggregate statistics for a [`PageArena`].
#[derive(Copy, Clone, Debug, Default)]
pub struct PageArenaStats {
    /// Pages currently allocated and not yet freed.
    pub live_pages: usize,
    /// Total pages handed out by this arena (a batched `palloc` counts
    /// once per page here, though it is a single kernel crossing).
    pub total_allocs: u64,
    /// Total `pfree` calls served by this arena.
    pub total_frees: u64,
    /// High-water mark of simultaneously live pages.
    pub peak_live_pages: usize,
}

/// The simulated kernel physical-page allocator.
///
/// The arena owns every page it hands out and recycles descriptors through
/// a free list, so a [`PageDesc`] is only valid between the `palloc` that
/// produced it and the matching `pfree`. All methods are thread-safe; any
/// thread may allocate, free, or resolve descriptors — mirroring the fact
/// that TLMM page descriptors are accessible by all threads in the
/// process (§4).
pub struct PageArena {
    inner: Mutex<ArenaInner>,
    total_allocs: AtomicU64,
    total_frees: AtomicU64,
    peak_live: AtomicU64,
    /// Per-domain kernel-crossing accounting (an arena is owned by one
    /// reducer domain, so "per arena" is "per domain").
    crossings: stats::CrossingCounters,
}

// SAFETY: the slot table (the only raw-pointer holder) is behind a
// `Mutex`, and the counters are atomics.
unsafe impl Send for PageArena {}
// SAFETY: as for `Send` — all shared mutation goes through the `Mutex`
// or the atomic counters; handed-out page pointers are the callers'
// responsibility (see `PageDesc`).
unsafe impl Sync for PageArena {}

impl PageArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PageArena {
            inner: Mutex::new(ArenaInner {
                slots: Vec::new(),
                free_head: u32::MAX,
                live: 0,
            }),
            total_allocs: AtomicU64::new(0),
            total_frees: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            crossings: stats::CrossingCounters::new(),
        }
    }

    /// This arena's (i.e. this domain's) kernel-crossing counters.
    pub fn crossings(&self) -> &stats::CrossingCounters {
        &self.crossings
    }

    /// Simulated `sys_palloc`: allocates a zeroed physical page and
    /// returns its descriptor.
    pub fn palloc(&self) -> PageDesc {
        self.crossings.charge_palloc();
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `page_layout()` is the non-zero-sized 4-KiB layout.
        let page = unsafe { alloc_zeroed(page_layout()) };
        assert!(!page.is_null(), "simulated physical memory exhausted");

        let mut inner = self.inner.lock();
        let pd = Self::insert_live_page(&mut inner, page);
        self.peak_live
            .fetch_max(inner.live as u64, Ordering::Relaxed);
        self.debug_validate(&inner);
        pd
    }

    /// Simulated batched `sys_palloc`: allocates `n` zeroed physical
    /// pages and appends their descriptors to `out`, charging a **single**
    /// kernel crossing for the whole batch (the §4 batching argument — a
    /// batched allocation syscall amortizes the crossing the same way a
    /// multi-page `sys_pmap` does).
    pub fn palloc_batch(&self, n: usize, out: &mut Vec<PageDesc>) {
        if n == 0 {
            return;
        }
        self.crossings.charge_palloc_batch(n as u64);
        self.total_allocs.fetch_add(n as u64, Ordering::Relaxed);
        out.reserve(n);
        let mut inner = self.inner.lock();
        for _ in 0..n {
            // SAFETY: `page_layout()` is the non-zero-sized 4-KiB layout.
            let page = unsafe { alloc_zeroed(page_layout()) };
            assert!(!page.is_null(), "simulated physical memory exhausted");
            out.push(Self::insert_live_page(&mut inner, page));
        }
        self.peak_live
            .fetch_max(inner.live as u64, Ordering::Relaxed);
        self.debug_validate(&inner);
    }

    /// Installs a freshly allocated page into the slot table (free-list
    /// slot if available, otherwise a new slot) and returns its
    /// descriptor. Caller holds the arena lock and handles stats.
    fn insert_live_page(inner: &mut ArenaInner, page: *mut u8) -> PageDesc {
        inner.live += 1;
        if inner.free_head != u32::MAX {
            let idx = inner.free_head;
            match inner.slots[idx as usize] {
                Slot::Free(next) => inner.free_head = next,
                Slot::Live(_) => unreachable!("free list points at live slot"),
            }
            inner.slots[idx as usize] = Slot::Live(page);
            PageDesc(idx)
        } else {
            let idx = inner.slots.len();
            assert!(
                idx < u32::MAX as usize - 1,
                "page descriptor space exhausted"
            );
            inner.slots.push(Slot::Live(page));
            PageDesc(idx as u32)
        }
    }

    /// Simulated `sys_pfree`: frees a descriptor and its physical page.
    ///
    /// # Panics
    ///
    /// Panics on double-free, on [`PD_NULL`], or on a descriptor this
    /// arena never issued — all of which would be kernel bugs or
    /// use-after-free in the runtime above, and are therefore loud.
    pub fn pfree(&self, pd: PageDesc) {
        assert!(pd != PD_NULL, "pfree(PD_NULL)");
        self.crossings.charge_pfree();
        self.total_frees.fetch_add(1, Ordering::Relaxed);

        let page = {
            let mut inner = self.inner.lock();
            let free_head = inner.free_head;
            let slot = inner
                .slots
                .get_mut(pd.0 as usize)
                .unwrap_or_else(|| panic!("pfree of unknown descriptor {pd:?}"));
            let page = match *slot {
                Slot::Live(p) => p,
                Slot::Free(_) => panic!("double pfree of {pd:?}"),
            };
            *slot = Slot::Free(free_head);
            inner.free_head = pd.0;
            inner.live -= 1;
            self.debug_validate(&inner);
            page
        };
        // SAFETY: `page` came from `alloc_zeroed(page_layout())` in
        // `palloc`; marking the slot `Free` above makes this the last
        // use of the pointer.
        unsafe { dealloc(page, page_layout()) };
    }

    /// Debug-build audit of page-descriptor ownership: the `live`
    /// counter must equal the number of `Live` slots, the free list must
    /// thread through exactly the `Free` slots (no cycles, no repeats,
    /// no dangling indices), and live pages must be distinct allocations.
    /// Release builds compile this to nothing.
    fn debug_validate(&self, inner: &ArenaInner) {
        let _ = inner;
        #[cfg(debug_assertions)]
        {
            let mut live = 0usize;
            let mut free = 0usize;
            let mut bases = std::collections::HashSet::new();
            for slot in &inner.slots {
                match *slot {
                    Slot::Live(p) => {
                        live += 1;
                        debug_assert!(!p.is_null(), "live slot holds null page");
                        debug_assert!(bases.insert(p as usize), "two descriptors own one page");
                    }
                    Slot::Free(_) => free += 1,
                }
            }
            debug_assert_eq!(inner.live, live, "arena live counter out of sync");
            let mut walked = 0usize;
            let mut cursor = inner.free_head;
            while cursor != u32::MAX {
                debug_assert!(
                    (cursor as usize) < inner.slots.len(),
                    "free list escapes the slot table"
                );
                match inner.slots[cursor as usize] {
                    Slot::Free(next) => cursor = next,
                    Slot::Live(_) => {
                        panic!("free list points at live descriptor {cursor}")
                    }
                }
                walked += 1;
                debug_assert!(walked <= inner.slots.len(), "free list cycle");
            }
            debug_assert_eq!(walked, free, "free list misses free slots");
        }
    }

    /// Kernel-internal descriptor resolution: base pointer of the page.
    ///
    /// This is what the simulated MMU consults when a [`TlmmRegion`]
    /// installs a mapping; user code never calls it on the fast path.
    ///
    /// # Panics
    ///
    /// Panics if `pd` is not currently live.
    ///
    /// [`TlmmRegion`]: crate::TlmmRegion
    pub fn page_base(&self, pd: PageDesc) -> *mut u8 {
        let inner = self.inner.lock();
        match inner.slots.get(pd.0 as usize) {
            Some(&Slot::Live(p)) => p,
            _ => panic!("page_base of dead descriptor {pd:?}"),
        }
    }

    /// Returns `true` if `pd` currently names a live page.
    pub fn is_live(&self, pd: PageDesc) -> bool {
        if pd == PD_NULL {
            return false;
        }
        let inner = self.inner.lock();
        matches!(inner.slots.get(pd.0 as usize), Some(&Slot::Live(_)))
    }

    /// Number of currently live pages.
    pub fn live_pages(&self) -> usize {
        self.inner.lock().live
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> PageArenaStats {
        PageArenaStats {
            live_pages: self.live_pages(),
            total_allocs: self.total_allocs.load(Ordering::Relaxed),
            total_frees: self.total_frees.load(Ordering::Relaxed),
            peak_live_pages: self.peak_live.load(Ordering::Relaxed) as usize,
        }
    }
}

impl Default for PageArena {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PageArena {
    fn drop(&mut self) {
        // Release any pages the runtime leaked (e.g. after a panic); the
        // kernel reclaims physical memory when the process dies, and so do
        // we when the arena does.
        let inner = self.inner.get_mut();
        for slot in &inner.slots {
            if let Slot::Live(p) = *slot {
                // SAFETY: live slots hold pages from `palloc`'s
                // allocator, not yet freed (else they would be `Free`).
                unsafe { dealloc(p, page_layout()) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palloc_returns_zeroed_distinct_pages() {
        let arena = PageArena::new();
        let a = arena.palloc();
        let b = arena.palloc();
        assert_ne!(a, b);
        let pa = arena.page_base(a);
        let pb = arena.page_base(b);
        assert_ne!(pa, pb);
        for off in [0usize, 1, PAGE_SIZE / 2, PAGE_SIZE - 1] {
            // SAFETY: both pages are live and `off < PAGE_SIZE`.
            unsafe {
                assert_eq!(*pa.add(off), 0);
                assert_eq!(*pb.add(off), 0);
            }
        }
        arena.pfree(a);
        arena.pfree(b);
        assert_eq!(arena.live_pages(), 0);
    }

    #[test]
    fn descriptors_are_recycled_lifo() {
        let arena = PageArena::new();
        let a = arena.palloc();
        let b = arena.palloc();
        arena.pfree(a);
        let c = arena.palloc();
        // The freed descriptor slot is reused.
        assert_eq!(c.raw(), a.raw());
        arena.pfree(b);
        arena.pfree(c);
    }

    #[test]
    fn recycled_descriptor_points_at_fresh_zeroed_page() {
        let arena = PageArena::new();
        let a = arena.palloc();
        // SAFETY: `a` is live and the write is in bounds.
        unsafe { *arena.page_base(a) = 0xAB };
        arena.pfree(a);
        let b = arena.palloc();
        // Same descriptor number, but the memory is zeroed again.
        assert_eq!(b.raw(), a.raw());
        // SAFETY: `b` is live; reads byte 0 of the page.
        unsafe { assert_eq!(*arena.page_base(b), 0) };
        arena.pfree(b);
    }

    #[test]
    #[should_panic(expected = "double pfree")]
    fn double_free_panics() {
        let arena = PageArena::new();
        let a = arena.palloc();
        arena.pfree(a);
        arena.pfree(a);
    }

    #[test]
    #[should_panic(expected = "pfree(PD_NULL)")]
    fn pfree_null_panics() {
        let arena = PageArena::new();
        arena.pfree(PD_NULL);
    }

    #[test]
    fn palloc_batch_charges_one_crossing_for_n_pages() {
        let arena = PageArena::new();
        let mut pds = Vec::new();
        arena.palloc_batch(6, &mut pds);
        assert_eq!(pds.len(), 6);
        assert_eq!(arena.live_pages(), 6);
        let s = arena.crossings().snapshot();
        assert_eq!(s.palloc_calls, 1, "one crossing for the whole batch");
        assert_eq!(s.palloc_pages, 6);
        // Pages are distinct, live, and zeroed — same contract as palloc.
        let mut bases = std::collections::HashSet::new();
        for &pd in &pds {
            assert!(arena.is_live(pd));
            let base = arena.page_base(pd);
            assert!(bases.insert(base as usize), "duplicate page in batch");
            // SAFETY: `pd` is live; reads byte 0 of the page.
            unsafe { assert_eq!(*base, 0) };
        }
        for pd in pds {
            arena.pfree(pd);
        }
        assert_eq!(arena.live_pages(), 0);
    }

    #[test]
    fn palloc_batch_zero_is_free() {
        let arena = PageArena::new();
        let mut pds = Vec::new();
        arena.palloc_batch(0, &mut pds);
        assert!(pds.is_empty());
        assert_eq!(arena.crossings().snapshot().total_crossings(), 0);
    }

    #[test]
    fn palloc_batch_reuses_freed_descriptors() {
        let arena = PageArena::new();
        let a = arena.palloc();
        let b = arena.palloc();
        arena.pfree(a);
        arena.pfree(b);
        let mut pds = Vec::new();
        arena.palloc_batch(3, &mut pds);
        // Two recycled slots plus one fresh one.
        let mut raws: Vec<u32> = pds.iter().map(|p| p.raw()).collect();
        raws.sort_unstable();
        assert_eq!(raws, vec![0, 1, 2]);
        for pd in pds {
            arena.pfree(pd);
        }
    }

    #[test]
    fn is_live_tracks_lifecycle() {
        let arena = PageArena::new();
        assert!(!arena.is_live(PD_NULL));
        let a = arena.palloc();
        assert!(arena.is_live(a));
        arena.pfree(a);
        assert!(!arena.is_live(a));
    }

    #[test]
    fn stats_track_peak_and_totals() {
        let arena = PageArena::new();
        let pds: Vec<_> = (0..5).map(|_| arena.palloc()).collect();
        for pd in &pds[..3] {
            arena.pfree(*pd);
        }
        let s = arena.stats();
        assert_eq!(s.live_pages, 2);
        assert_eq!(s.total_allocs, 5);
        assert_eq!(s.total_frees, 3);
        assert_eq!(s.peak_live_pages, 5);
        for pd in &pds[3..] {
            arena.pfree(*pd);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn descriptors_are_shareable_across_threads() {
        use std::sync::Arc;
        let arena = Arc::new(PageArena::new());
        let pd = arena.palloc();
        // SAFETY: `pd` is live and this thread has sole access.
        unsafe { *arena.page_base(pd) = 42 };
        let arena2 = Arc::clone(&arena);
        // SAFETY: the page stays live (freed by neither thread) and the
        // spawn/join pair orders the write before this read.
        let got = std::thread::spawn(move || unsafe { *arena2.page_base(pd) })
            .join()
            .unwrap();
        assert_eq!(got, 42);
        arena.pfree(pd);
    }
}
