//! # cilkm-tlmm — a user-space simulation of TLMM-Linux
//!
//! Thread-local memory mapping (TLMM) is the operating-system substrate of
//! Cilk-M (Lee et al., PACT 2010; Lee, Shafi, Leiserson, SPAA 2012 §4). It
//! designates one region of a process's virtual address space as *private*:
//! the region occupies the same virtual-address range in every thread, but
//! each thread may map different physical pages into it, while the rest of
//! the address space stays shared as usual. The original system is a Linux
//! kernel modification that gives each thread its own root page directory
//! and exposes three system calls:
//!
//! * `sys_palloc` — allocate a physical page; returns a *page descriptor*
//!   (analogous to a file descriptor) that names the page process-wide;
//! * `sys_pfree` — free a page descriptor and its physical page;
//! * `sys_pmap`  — map an array of page descriptors at consecutive
//!   page-aligned virtual addresses starting at a base address inside the
//!   calling thread's TLMM region; the special descriptor [`PD_NULL`]
//!   removes a mapping.
//!
//! A stock kernel cannot express "same virtual address, different physical
//! page, same process", so this crate *simulates* the mechanism in user
//! space while preserving the interface and the cost shape that the SPAA
//! 2012 evaluation depends on:
//!
//! * [`PageArena`] plays the role of the kernel's physical-page allocator:
//!   it owns page-aligned 4-KByte pages and hands out [`PageDesc`]
//!   descriptors valid across all threads ([`PageArena::palloc`] /
//!   [`PageArena::pfree`]).
//! * [`TlmmRegion`] plays the role of one thread's private region: a table
//!   from region page index to page descriptor, updated by
//!   [`TlmmRegion::pmap`]. "Hardware address translation" is simulated by a
//!   per-region flat array of page base pointers, so resolving a
//!   [`TlmmAddr`] costs one indexed load — the analogue of a TLB hit.
//! * Every simulated kernel entry (`palloc`/`pfree`/`pmap`) bumps global
//!   [`stats`] counters, and an optional [`stats::set_crossing_cost_ns`]
//!   cost model spins for a configurable duration per crossing so the
//!   "too many `sys_pmap` calls become a scalability bottleneck" argument
//!   of §5 can be reproduced quantitatively.
//!
//! Memory inside a mapped page is exposed as raw pointers: the same page
//! may legitimately be mapped by several regions at once (that is the whole
//! point of publishing page descriptors), so Rust references would be
//! unsound to hand out wholesale. Callers (the `cilkm-core` memory-mapped
//! reducer backend) are responsible for ensuring exclusive access through
//! their own protocol, exactly as the Cilk-M runtime is.

#![deny(missing_docs)]

mod arena;
mod region;
pub mod stats;

pub use arena::{PageArena, PageArenaStats};
pub use region::{TlmmAddr, TlmmRegion};

/// Size in bytes of one simulated physical page (x86-64 small page).
pub const PAGE_SIZE: usize = 4096;

/// A process-wide name for a simulated physical page.
///
/// Page descriptors are the TLMM analogue of file descriptors (§4): any
/// thread that learns a descriptor may map the underlying physical page
/// into its own region with [`TlmmRegion::pmap`]. Descriptors are small
/// copyable integers; [`PD_NULL`] is the distinguished "unmap" value.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PageDesc(pub(crate) u32);

/// The distinguished page descriptor that requests removal of a mapping.
///
/// Passing `PD_NULL` at position *i* of a [`TlmmRegion::pmap`] call unmaps
/// the page at `base + i` instead of mapping one, mirroring the special
/// `PD_NULL` value of the TLMM interface.
pub const PD_NULL: PageDesc = PageDesc(u32::MAX);

impl PageDesc {
    /// Returns `true` if this is the [`PD_NULL`] unmap request.
    #[inline]
    pub fn is_null(self) -> bool {
        self == PD_NULL
    }

    /// Raw integer value (for logs and tests).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}
