//! Kernel-crossing counters and an optional cost model for simulated
//! crossings.
//!
//! The SPAA 2012 paper argues (§5) that a naive TLMM reducer design — one
//! that stores views directly in the TLMM region — would need many
//! `sys_pmap` calls per steal, and that "if the number of `sys_pmap` calls
//! is too great, the kernel crossing overhead can become a scalability
//! bottleneck". The counters here let experiments observe exactly how many
//! simulated crossings each design performs, and the cost model lets the
//! `ablation_naive` bench charge a configurable latency per crossing.
//!
//! Accounting is **per domain**: every [`crate::PageArena`] (one per
//! reducer domain) owns a [`CrossingCounters`], so concurrent domains and
//! benchmark phases cannot bleed into each other's numbers. Each charge
//! also feeds the per-thread event tracer (`cilkm-obs`). (The original
//! process-global counters lived here as a deprecated shim for one
//! release; every consumer now reads
//! [`CrossingCounters::snapshot`] through [`crate::PageArena::crossings`].)

// lint: allow(raw-sync, crossing counters are Relaxed-only monitoring data in the unmodeled kernel-side crate; the cost model and counter reads have no ordering obligations — same policy as cilkm-obs::metrics)
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cilkm_obs::metrics::Counter;
use cilkm_obs::{trace, EventKind};

/// Simulated cost of one kernel crossing, in nanoseconds (0 = free).
static CROSSING_COST_NS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of one domain's kernel-crossing counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingSnapshot {
    /// `sys_palloc` calls.
    pub palloc_calls: u64,
    /// Individual pages allocated by `palloc` calls (a batched call
    /// allocates many pages for one crossing, per the §4 batching
    /// argument).
    pub palloc_pages: u64,
    /// `sys_pfree` calls.
    pub pfree_calls: u64,
    /// `sys_pmap` calls.
    pub pmap_calls: u64,
    /// Individual page table entries touched by `pmap` calls.
    pub pmap_pages: u64,
}

impl CrossingSnapshot {
    /// Total simulated user/kernel round trips (each call is one crossing
    /// pair: user mode to kernel mode and back, per §5).
    pub fn total_crossings(&self) -> u64 {
        self.palloc_calls + self.pfree_calls + self.pmap_calls
    }

    /// Counter-wise difference `self - earlier` (for measuring a window).
    pub fn since(&self, earlier: &CrossingSnapshot) -> CrossingSnapshot {
        CrossingSnapshot {
            palloc_calls: self.palloc_calls - earlier.palloc_calls,
            palloc_pages: self.palloc_pages - earlier.palloc_pages,
            pfree_calls: self.pfree_calls - earlier.pfree_calls,
            pmap_calls: self.pmap_calls - earlier.pmap_calls,
            pmap_pages: self.pmap_pages - earlier.pmap_pages,
        }
    }
}

/// Per-domain kernel-crossing counters.
///
/// One instance lives on each [`crate::PageArena`] (reducer domains each
/// own an arena), so crossing counts can be attributed to the domain that
/// caused them. The `charge_*` methods are the only charge sites in the
/// crate: besides bumping these counters they emit a tracer event and pay
/// the [`crossing_cost_ns`] model.
#[derive(Debug, Default)]
pub struct CrossingCounters {
    palloc_calls: Counter,
    palloc_pages: Counter,
    pfree_calls: Counter,
    pmap_calls: Counter,
    pmap_pages: Counter,
}

impl CrossingCounters {
    /// Fresh zeroed counters.
    pub const fn new() -> CrossingCounters {
        CrossingCounters {
            palloc_calls: Counter::new(),
            palloc_pages: Counter::new(),
            pfree_calls: Counter::new(),
            pmap_calls: Counter::new(),
            pmap_pages: Counter::new(),
        }
    }

    /// Reads this domain's counters.
    pub fn snapshot(&self) -> CrossingSnapshot {
        CrossingSnapshot {
            palloc_calls: self.palloc_calls.get(),
            palloc_pages: self.palloc_pages.get(),
            pfree_calls: self.pfree_calls.get(),
            pmap_calls: self.pmap_calls.get(),
            pmap_pages: self.pmap_pages.get(),
        }
    }

    /// Charges one simulated `sys_palloc` crossing.
    #[inline]
    pub fn charge_palloc(&self) {
        self.palloc_calls.inc();
        self.palloc_pages.inc();
        trace::emit(EventKind::Palloc, 0);
        cilkm_obs::profile::charge_crossings(1);
        pay_crossing_cost();
    }

    /// Charges one simulated batched `sys_palloc` crossing allocating
    /// `pages` pages (one crossing regardless of the batch size — the §4
    /// batching argument, same as [`CrossingCounters::charge_pmap`]).
    #[inline]
    pub fn charge_palloc_batch(&self, pages: u64) {
        self.palloc_calls.inc();
        self.palloc_pages.add(pages);
        trace::emit(EventKind::Palloc, pages);
        cilkm_obs::profile::charge_crossings(1);
        pay_crossing_cost();
    }

    /// Charges one simulated `sys_pfree` crossing.
    #[inline]
    pub fn charge_pfree(&self) {
        self.pfree_calls.inc();
        trace::emit(EventKind::Pfree, 0);
        cilkm_obs::profile::charge_crossings(1);
        pay_crossing_cost();
    }

    /// Charges one simulated `sys_pmap` crossing touching `pages` page
    /// table entries (one crossing regardless of the batch size — the §4
    /// batching argument).
    #[inline]
    pub fn charge_pmap(&self, pages: u64) {
        self.pmap_calls.inc();
        self.pmap_pages.add(pages);
        trace::emit(EventKind::Pmap, pages);
        cilkm_obs::profile::charge_crossings(1);
        pay_crossing_cost();
    }
}

/// Sets the simulated latency charged to every kernel crossing.
///
/// The real TLMM-Linux syscalls cost on the order of a microsecond
/// (two kernel crossings plus page-table manipulation). Setting a nonzero
/// cost makes each simulated `palloc`/`pfree`/`pmap` spin for that long,
/// which is how the naive-design ablation turns its crossing *counts* into
/// wall-clock effects. The default is 0 (crossings are only counted).
pub fn set_crossing_cost_ns(ns: u64) {
    CROSSING_COST_NS.store(ns, Ordering::Relaxed);
}

/// Current simulated crossing latency in nanoseconds.
pub fn crossing_cost_ns() -> u64 {
    CROSSING_COST_NS.load(Ordering::Relaxed)
}

/// Pays the cost model for one kernel crossing (a no-op at cost 0).
#[inline]
fn pay_crossing_cost() {
    let cost = CROSSING_COST_NS.load(Ordering::Relaxed);
    if cost != 0 {
        spin_for_ns(cost);
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
fn spin_for_ns(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_since_subtracts_componentwise() {
        let a = CrossingSnapshot {
            palloc_calls: 10,
            palloc_pages: 40,
            pfree_calls: 4,
            pmap_calls: 7,
            pmap_pages: 70,
        };
        let b = CrossingSnapshot {
            palloc_calls: 3,
            palloc_pages: 12,
            pfree_calls: 1,
            pmap_calls: 2,
            pmap_pages: 20,
        };
        let d = a.since(&b);
        assert_eq!(d.palloc_calls, 7);
        assert_eq!(d.palloc_pages, 28);
        assert_eq!(d.pfree_calls, 3);
        assert_eq!(d.pmap_calls, 5);
        assert_eq!(d.pmap_pages, 50);
        assert_eq!(d.total_crossings(), 15);
    }

    #[test]
    fn per_domain_counters_do_not_bleed_into_each_other() {
        let a = crate::PageArena::new();
        let b = crate::PageArena::new();
        let pd = a.palloc();
        a.pfree(pd);
        let mut region_b = crate::TlmmRegion::new(std::sync::Arc::new(crate::PageArena::new()));
        let pd_b = region_b.arena().palloc();
        region_b.pmap(0, &[pd_b]);

        let sa = a.crossings().snapshot();
        assert_eq!(sa.palloc_calls, 1);
        assert_eq!(sa.palloc_pages, 1);
        assert_eq!(sa.pfree_calls, 1);
        assert_eq!(sa.pmap_calls, 0, "domain A never pmapped");

        assert_eq!(b.crossings().snapshot(), CrossingSnapshot::default());

        let sb = region_b.arena().crossings().snapshot();
        assert_eq!(sb.palloc_calls, 1);
        assert_eq!(sb.pmap_calls, 1);
        assert_eq!(sb.pmap_pages, 1);
    }

    #[test]
    fn charge_increments_and_respects_cost_model() {
        let counters = CrossingCounters::new();
        counters.charge_pmap(3);
        counters.charge_palloc_batch(5);
        let s = counters.snapshot();
        assert_eq!(s.pmap_calls, 1);
        assert_eq!(s.pmap_pages, 3);
        assert_eq!(s.palloc_calls, 1, "a batched palloc is one crossing");
        assert_eq!(s.palloc_pages, 5);

        // With a visible cost the charge should take at least that long.
        set_crossing_cost_ns(200_000);
        let t = Instant::now();
        counters.charge_pmap(1);
        assert!(t.elapsed().as_nanos() >= 200_000);
        set_crossing_cost_ns(0);
    }
}
