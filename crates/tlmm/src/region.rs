//! A thread's private TLMM region (the "user side" of TLMM).

use std::sync::Arc;

use crate::{PageArena, PageDesc, PAGE_SIZE, PD_NULL};

/// A byte address inside the TLMM region, relative to the region base.
///
/// In real TLMM the region occupies a fixed 512-GByte slice of every
/// thread's virtual address space (one root-page-directory entry, §4), so
/// a TLMM address is globally meaningful: the same numeric address names
/// "the same slot" in *every* worker's private region. We model that by
/// making `TlmmAddr` a plain offset; the memory-mapped reducer stores one
/// in each reducer object as its `tlmm_addr` field (§6).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TlmmAddr(pub usize);

impl TlmmAddr {
    /// The region page index containing this address.
    #[inline]
    pub fn page(self) -> usize {
        self.0 / PAGE_SIZE
    }

    /// The byte offset within the page.
    #[inline]
    pub fn offset(self) -> usize {
        self.0 % PAGE_SIZE
    }

    /// Builds an address from a page index and in-page offset.
    #[inline]
    pub fn from_parts(page: usize, offset: usize) -> TlmmAddr {
        debug_assert!(offset < PAGE_SIZE);
        TlmmAddr(page * PAGE_SIZE + offset)
    }
}

/// One thread's private TLMM region.
///
/// The region is a table from region page index to mapped page descriptor,
/// plus a flat array of cached page base pointers that plays the role of
/// the hardware TLB: resolving an address on the fast path is a single
/// indexed load followed by pointer arithmetic, so the memory-mapped
/// reducer lookup built on top of it is a short, branch-predictable
/// straight-line sequence — the property the paper's Figure 1 measures.
///
/// Mutating the mapping goes through [`TlmmRegion::pmap`], the analogue of
/// `sys_pmap`, which is charged as a simulated kernel crossing.
///
/// A region is owned by exactly one worker thread at a time (it is `Send`
/// but deliberately not `Sync`); sharing page *contents* across workers is
/// done by publishing page descriptors, never by sharing the region.
pub struct TlmmRegion {
    arena: Arc<PageArena>,
    /// Region page index -> mapped descriptor (PD_NULL where unmapped).
    table: Vec<PageDesc>,
    /// Cached translation: region page index -> page base (null where
    /// unmapped). Kept in lock-step with `table`.
    bases: Vec<*mut u8>,
    /// Number of `pmap` calls made by this region (per-region view of the
    /// global counter, for per-worker accounting).
    pmap_calls: u64,
}

// SAFETY: a region owns no memory of its own beyond indices; the
// pointers refer to arena pages which are kept alive by the `Arc`.
// Moving a region between threads (e.g. handing it to a worker at pool
// start) is sound.
unsafe impl Send for TlmmRegion {}

impl TlmmRegion {
    /// Creates an empty region backed by `arena`.
    pub fn new(arena: Arc<PageArena>) -> Self {
        TlmmRegion {
            arena,
            table: Vec::new(),
            bases: Vec::new(),
            pmap_calls: 0,
        }
    }

    /// The arena backing this region.
    pub fn arena(&self) -> &Arc<PageArena> {
        &self.arena
    }

    /// Simulated `sys_pmap`: maps `descs` at consecutive pages starting at
    /// region page `base_page`; [`PD_NULL`] entries remove mappings.
    ///
    /// One call is charged as a single kernel crossing regardless of the
    /// number of descriptors, mirroring the batched interface of §4 that
    /// lets Cilk-M amortize remapping against steals.
    ///
    /// # Panics
    ///
    /// Panics if any non-null descriptor is not live in the arena.
    pub fn pmap(&mut self, base_page: usize, descs: &[PageDesc]) {
        self.arena.crossings().charge_pmap(descs.len() as u64);
        self.pmap_calls += 1;

        let end = base_page + descs.len();
        if end > self.table.len() {
            self.table.resize(end, PD_NULL);
            self.bases.resize(end, std::ptr::null_mut());
        }
        for (i, &pd) in descs.iter().enumerate() {
            let page = base_page + i;
            if pd.is_null() {
                self.table[page] = PD_NULL;
                self.bases[page] = std::ptr::null_mut();
            } else {
                let base = self.arena.page_base(pd);
                debug_assert!(
                    !self
                        .table
                        .iter()
                        .enumerate()
                        .any(|(other, &mapped)| other != page && mapped == pd),
                    "descriptor {pd:?} mapped at two pages of one region"
                );
                self.table[page] = pd;
                self.bases[page] = base;
            }
        }
    }

    /// Simulated scattered `sys_pmap`: installs `(page, descriptor)`
    /// entries at arbitrary (not necessarily contiguous) region pages in
    /// one call — still a **single** kernel crossing charged with one
    /// page-table entry per element, the same §4 batching argument as
    /// [`TlmmRegion::pmap`]. [`PD_NULL`] entries remove mappings. This is
    /// the call the exchange-based view transferal uses to swap a batch
    /// of occupied pages out of the region and zeroed replacements in.
    ///
    /// # Panics
    ///
    /// Panics if any non-null descriptor is not live in the arena.
    pub fn pmap_scatter(&mut self, entries: &[(usize, PageDesc)]) {
        self.arena.crossings().charge_pmap(entries.len() as u64);
        self.pmap_calls += 1;

        let end = entries.iter().map(|&(p, _)| p + 1).max().unwrap_or(0);
        if end > self.table.len() {
            self.table.resize(end, PD_NULL);
            self.bases.resize(end, std::ptr::null_mut());
        }
        for &(page, pd) in entries {
            if pd.is_null() {
                self.table[page] = PD_NULL;
                self.bases[page] = std::ptr::null_mut();
            } else {
                let base = self.arena.page_base(pd);
                debug_assert!(
                    !self
                        .table
                        .iter()
                        .enumerate()
                        .any(|(other, &mapped)| other != page && mapped == pd),
                    "descriptor {pd:?} mapped at two pages of one region"
                );
                self.table[page] = pd;
                self.bases[page] = base;
            }
        }
    }

    /// Number of `pmap` calls this region has made.
    pub fn pmap_calls(&self) -> u64 {
        self.pmap_calls
    }

    /// The descriptor currently mapped at region page `page`, if any.
    pub fn desc_at(&self, page: usize) -> PageDesc {
        self.table.get(page).copied().unwrap_or(PD_NULL)
    }

    /// Highest mapped region page index + 1 (table extent).
    pub fn extent_pages(&self) -> usize {
        self.table.len()
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.table.iter().filter(|pd| !pd.is_null()).count()
    }

    /// Fast-path address translation: base pointer of the page holding
    /// `addr`, or null if unmapped. This is the simulated TLB hit.
    #[inline]
    pub fn page_base(&self, page: usize) -> *mut u8 {
        if page < self.bases.len() {
            self.bases[page]
        } else {
            std::ptr::null_mut()
        }
    }

    /// Resolves `addr` to a raw pointer, or null if the page is unmapped.
    ///
    /// # Safety of use
    ///
    /// The returned pointer is valid while the page stays mapped in this
    /// region and live in the arena; the caller's protocol must guarantee
    /// exclusive access (the Cilk-M runtime guarantees it by only letting
    /// the owning worker touch its private SPA maps).
    #[inline]
    pub fn resolve(&self, addr: TlmmAddr) -> *mut u8 {
        let base = self.page_base(addr.page());
        if base.is_null() {
            std::ptr::null_mut()
        } else {
            // SAFETY: `base` is a live page and `addr.offset()` is
            // < PAGE_SIZE by `TlmmAddr` construction, so the result
            // stays in bounds (in-page offsets cannot overflow).
            unsafe { base.add(addr.offset()) }
        }
    }

    /// Raw slice of cached page base pointers (the simulated TLB), for
    /// backends that want to embed translation in their own fast path.
    #[inline]
    pub fn bases(&self) -> &[*mut u8] {
        &self.bases
    }

    /// Test/debug helper: reads a byte through the region mapping.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped.
    pub fn read_byte(&self, addr: TlmmAddr) -> u8 {
        let p = self.resolve(addr);
        assert!(
            !p.is_null(),
            "read through unmapped TLMM page {}",
            addr.page()
        );
        // SAFETY: non-null `resolve` results point into a live mapped
        // page; `&self` means no concurrent `write_byte` on this region.
        unsafe { *p }
    }

    /// Test/debug helper: writes a byte through the region mapping.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped.
    pub fn write_byte(&mut self, addr: TlmmAddr, val: u8) {
        let p = self.resolve(addr);
        assert!(
            !p.is_null(),
            "write through unmapped TLMM page {}",
            addr.page()
        );
        // SAFETY: as in `read_byte`, and `&mut self` makes the write
        // exclusive.
        unsafe { *p = val }
    }
}

impl std::fmt::Debug for TlmmRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlmmRegion")
            .field("extent_pages", &self.extent_pages())
            .field("mapped_pages", &self.mapped_pages())
            .field("pmap_calls", &self.pmap_calls)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<PageArena>, TlmmRegion) {
        let arena = Arc::new(PageArena::new());
        let region = TlmmRegion::new(Arc::clone(&arena));
        (arena, region)
    }

    #[test]
    fn pmap_installs_contiguous_mapping() {
        let (arena, mut region) = setup();
        let descs: Vec<_> = (0..3).map(|_| arena.palloc()).collect();
        region.pmap(2, &descs);
        assert_eq!(region.mapped_pages(), 3);
        assert_eq!(region.desc_at(0), PD_NULL);
        assert_eq!(region.desc_at(2), descs[0]);
        assert_eq!(region.desc_at(4), descs[2]);
        assert!(region.page_base(1).is_null());
        assert!(!region.page_base(3).is_null());
        for pd in descs {
            arena.pfree(pd);
        }
    }

    #[test]
    fn pd_null_unmaps() {
        let (arena, mut region) = setup();
        let a = arena.palloc();
        region.pmap(0, &[a]);
        assert_eq!(region.mapped_pages(), 1);
        region.pmap(0, &[PD_NULL]);
        assert_eq!(region.mapped_pages(), 0);
        assert!(region.resolve(TlmmAddr(100)).is_null());
        arena.pfree(a);
    }

    #[test]
    fn same_virtual_address_different_physical_pages_per_region() {
        // The defining TLMM property (§4, Figure 3): two "threads" map
        // different physical pages at the same region address.
        let (arena, mut r0) = setup();
        let mut r1 = TlmmRegion::new(Arc::clone(&arena));
        let p0 = arena.palloc();
        let p1 = arena.palloc();
        r0.pmap(0, &[p0]);
        r1.pmap(0, &[p1]);

        let addr = TlmmAddr(123);
        r0.write_byte(addr, 7);
        r1.write_byte(addr, 9);
        assert_eq!(r0.read_byte(addr), 7);
        assert_eq!(r1.read_byte(addr), 9);

        arena.pfree(p0);
        arena.pfree(p1);
    }

    #[test]
    fn shared_descriptor_aliases_the_same_page() {
        // Publishing a descriptor lets another region see the same bytes —
        // the mechanism behind the mapping strategy of §7.
        let (arena, mut r0) = setup();
        let mut r1 = TlmmRegion::new(Arc::clone(&arena));
        let p = arena.palloc();
        r0.pmap(0, &[p]);
        r1.pmap(5, &[p]);
        r0.write_byte(TlmmAddr(42), 0xEE);
        assert_eq!(r1.read_byte(TlmmAddr::from_parts(5, 42)), 0xEE);
        arena.pfree(p);
    }

    #[test]
    fn addr_round_trips_page_and_offset() {
        let a = TlmmAddr::from_parts(3, 17);
        assert_eq!(a.page(), 3);
        assert_eq!(a.offset(), 17);
        assert_eq!(a.0, 3 * PAGE_SIZE + 17);
    }

    #[test]
    fn pmap_counts_calls_per_region() {
        let (arena, mut region) = setup();
        let a = arena.palloc();
        let b = arena.palloc();
        region.pmap(0, &[a, b]);
        region.pmap(0, &[PD_NULL, PD_NULL]);
        assert_eq!(region.pmap_calls(), 2);
        arena.pfree(a);
        arena.pfree(b);
    }

    #[test]
    fn pmap_scatter_installs_noncontiguous_entries_in_one_crossing() {
        let (arena, mut region) = setup();
        let a = arena.palloc();
        let b = arena.palloc();
        let before = arena.crossings().snapshot();
        region.pmap_scatter(&[(0, a), (7, b)]);
        let d = arena.crossings().snapshot().since(&before);
        assert_eq!(d.pmap_calls, 1, "one crossing for the scattered batch");
        assert_eq!(d.pmap_pages, 2);
        assert_eq!(region.desc_at(0), a);
        assert_eq!(region.desc_at(7), b);
        assert_eq!(region.mapped_pages(), 2);
        assert!(region.page_base(3).is_null());
        // Mixed install/unmap in one scattered call.
        region.pmap_scatter(&[(0, PD_NULL)]);
        assert_eq!(region.desc_at(0), PD_NULL);
        assert_eq!(region.mapped_pages(), 1);
        arena.pfree(a);
        arena.pfree(b);
    }

    #[test]
    fn pmap_scatter_swaps_a_page_for_a_replacement() {
        // The exchange-transferal shape: the occupied page goes out, a
        // zeroed replacement comes in, both in one crossing.
        let (arena, mut region) = setup();
        let occupied = arena.palloc();
        region.pmap(3, &[occupied]);
        region.write_byte(TlmmAddr::from_parts(3, 9), 0x5A);
        let replacement = arena.palloc();
        region.pmap_scatter(&[(3, replacement)]);
        assert_eq!(region.desc_at(3), replacement);
        // The region now sees a zeroed page; the occupied page's bytes
        // survive for whoever holds its descriptor.
        assert_eq!(region.read_byte(TlmmAddr::from_parts(3, 9)), 0);
        // SAFETY: `occupied` is still live (freed below, after the read).
        unsafe { assert_eq!(*arena.page_base(occupied).add(9), 0x5A) };
        arena.pfree(occupied);
        arena.pfree(replacement);
    }

    #[test]
    fn remap_replaces_existing_mapping() {
        let (arena, mut region) = setup();
        let a = arena.palloc();
        let b = arena.palloc();
        region.pmap(0, &[a]);
        region.write_byte(TlmmAddr(0), 1);
        region.pmap(0, &[b]);
        // Fresh page is zeroed; old data lives on page `a` only.
        assert_eq!(region.read_byte(TlmmAddr(0)), 0);
        // SAFETY: page `a` is still live (freed below, after the read).
        unsafe { assert_eq!(*arena.page_base(a), 1) };
        arena.pfree(a);
        arena.pfree(b);
    }

    #[test]
    fn resolve_out_of_extent_is_null() {
        let (_arena, region) = setup();
        assert!(region.resolve(TlmmAddr(1 << 30)).is_null());
    }
}
