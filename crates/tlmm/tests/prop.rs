//! Property tests for the TLMM simulation: a region's view of memory must
//! always agree with a straightforward model of "page table over an arena".

// Property suites are orders of magnitude too slow under the Miri
// interpreter; the crates' inline unit tests cover the same paths there.
#![cfg(not(miri))]

use std::collections::HashMap;
use std::sync::Arc;

use cilkm_tlmm::{PageArena, PageDesc, TlmmAddr, TlmmRegion, PAGE_SIZE, PD_NULL};

use proptest::prelude::*;

/// Operations a fuzzer can drive against one region.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a page and map it at the given region page.
    MapFresh { page: u8 },
    /// Unmap whatever is at the given region page (page stays live).
    Unmap { page: u8 },
    /// Write a byte through the region.
    Write { page: u8, offset: u16, val: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(|page| Op::MapFresh { page }),
        (0u8..16).prop_map(|page| Op::Unmap { page }),
        (0u8..16, 0u16..PAGE_SIZE as u16, any::<u8>()).prop_map(|(page, offset, val)| Op::Write {
            page,
            offset,
            val
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Region reads always agree with a shadow model keyed by
    /// (mapped descriptor, offset); unmapped pages resolve to null.
    #[test]
    fn region_matches_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let arena = Arc::new(PageArena::new());
        let mut region = TlmmRegion::new(Arc::clone(&arena));
        // Shadow: region page -> descriptor, and (descriptor, offset) -> byte.
        let mut mapping: HashMap<u8, PageDesc> = HashMap::new();
        let mut bytes: HashMap<(u32, u16), u8> = HashMap::new();
        let mut all_pds: Vec<PageDesc> = Vec::new();

        for op in &ops {
            match *op {
                Op::MapFresh { page } => {
                    let pd = arena.palloc();
                    all_pds.push(pd);
                    region.pmap(page as usize, &[pd]);
                    mapping.insert(page, pd);
                }
                Op::Unmap { page } => {
                    region.pmap(page as usize, &[PD_NULL]);
                    mapping.remove(&page);
                }
                Op::Write { page, offset, val } => {
                    let addr = TlmmAddr::from_parts(page as usize, offset as usize);
                    if let Some(&pd) = mapping.get(&page) {
                        region.write_byte(addr, val);
                        bytes.insert((pd.raw(), offset), val);
                    } else {
                        prop_assert!(region.resolve(addr).is_null());
                    }
                }
            }
        }

        // Final check: every mapped page reads back exactly the shadow bytes.
        for (&page, &pd) in &mapping {
            for off in [0u16, 1, 17, (PAGE_SIZE - 1) as u16] {
                let expect = bytes.get(&(pd.raw(), off)).copied().unwrap_or(0);
                let addr = TlmmAddr::from_parts(page as usize, off as usize);
                prop_assert_eq!(region.read_byte(addr), expect);
            }
        }

        for pd in all_pds {
            arena.pfree(pd);
        }
        prop_assert_eq!(arena.live_pages(), 0);
    }

    /// Descriptors published by one region can be mapped by another and the
    /// two alias the same bytes, at possibly different region addresses.
    #[test]
    fn descriptor_sharing_aliases(offsets in proptest::collection::vec(0usize..PAGE_SIZE, 1..16)) {
        let arena = Arc::new(PageArena::new());
        let mut r0 = TlmmRegion::new(Arc::clone(&arena));
        let mut r1 = TlmmRegion::new(Arc::clone(&arena));
        let pd = arena.palloc();
        r0.pmap(0, &[pd]);
        r1.pmap(9, &[pd]);
        for (i, &off) in offsets.iter().enumerate() {
            r0.write_byte(TlmmAddr::from_parts(0, off), i as u8);
            prop_assert_eq!(r1.read_byte(TlmmAddr::from_parts(9, off)), i as u8);
        }
        arena.pfree(pd);
    }
}
