//! Litmus tests for the checker itself: known-good protocols must pass
//! under every explored schedule, and known-bad ones must be caught.

use std::sync::Arc;

use cilkm_checker::cell::TraceCell;
use cilkm_checker::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use cilkm_checker::sync::{Condvar, Mutex};
use cilkm_checker::{model, thread, try_model};

/// Message passing with release/acquire is sound: if the acquire load
/// sees the flag, the data store is visible.
#[test]
fn mp_release_acquire_passes() {
    let report = try_model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicUsize::new(0));
        let (f2, d2) = (flag.clone(), data.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    })
    .expect("release/acquire message passing must verify");
    assert!(report.schedules > 1, "expected multiple schedules explored");
}

/// The same protocol with a Relaxed flag store is broken, and the model
/// must find the schedule where the data read is stale.
#[test]
fn mp_relaxed_flag_detected() {
    let err = try_model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicUsize::new(0));
        let (f2, d2) = (flag.clone(), data.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale data after relaxed flag"
            );
        }
        t.join().unwrap();
    })
    .expect_err("relaxed message passing must be refuted");
    assert!(
        err.message.contains("stale data"),
        "unexpected failure: {err}"
    );
}

/// Store buffering: with SeqCst accesses, at least one thread must see
/// the other's store.
#[test]
fn sb_seqcst_passes() {
    try_model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r1 = x.load(Ordering::SeqCst);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SeqCst store buffering violated");
    })
    .expect("SeqCst store buffering must verify");
}

/// Store buffering with Relaxed accesses can read both zeros; the model
/// must reach that outcome.
#[test]
fn sb_relaxed_detected() {
    try_model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "both-zero outcome reached");
    })
    .expect_err("relaxed store buffering must reach the both-zero outcome");
}

/// SeqCst *fences* between relaxed accesses also forbid the both-zero
/// outcome (this is the pattern the sleeper protocol uses).
#[test]
fn sb_seqcst_fence_passes() {
    try_model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SeqCst-fenced store buffering violated");
    })
    .expect("SeqCst-fenced store buffering must verify");
}

/// Unsynchronized plain-memory writes are flagged as a data race.
#[test]
fn plain_race_detected() {
    let err = try_model(|| {
        let cell = Arc::new(TraceCell::new(0usize));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: intentionally racy for the test; the model
                // aborts the schedule before UB can matter (the pointer
                // itself is valid and aligned).
                unsafe { *p += 1 }
            });
        });
        cell.with_mut(|p| {
            // SAFETY: as above — valid pointer, race is the point.
            unsafe { *p += 1 }
        });
        t.join().unwrap();
    })
    .expect_err("unsynchronized writes must race");
    assert!(err.message.contains("data race"), "unexpected: {err}");
}

/// The same writes under a mutex are race-free and lose no increments.
#[test]
fn mutex_serializes_writes() {
    model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            *c2.lock() += 1;
        });
        *counter.lock() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock(), 2);
    });
}

/// Classic ABBA lock-order inversion deadlocks in some schedule.
#[test]
fn abba_deadlock_detected() {
    let err = try_model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    })
    .expect_err("ABBA locking must deadlock in some schedule");
    assert!(err.message.contains("deadlock"), "unexpected: {err}");
}

/// A park with no matching unpark is reported as a deadlock rather than
/// hanging the test.
#[test]
fn lost_park_detected() {
    let err = try_model(|| {
        let t = thread::spawn(|| {
            thread::park();
        });
        t.join().unwrap();
    })
    .expect_err("park without unpark must deadlock");
    assert!(err.message.contains("deadlock"), "unexpected: {err}");
}

/// Unpark-before-park leaves a token, so the park returns immediately
/// in every schedule.
#[test]
fn unpark_token_is_kept() {
    model(|| {
        let parked = Arc::new(AtomicBool::new(false));
        let p2 = parked.clone();
        let t = thread::spawn(move || {
            thread::park();
            p2.store(true, Ordering::Release);
        });
        t.thread().unpark();
        t.join().unwrap();
        assert!(parked.load(Ordering::Acquire));
    });
}

/// Condvar handshake (the LockLatch pattern): the waiter always wakes.
#[test]
fn condvar_handshake() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    });
}

/// Spawn/join transfers happens-before: the parent sees the child's
/// plain writes after join without extra synchronization.
#[test]
fn join_transfers_clock() {
    model(|| {
        let cell = Arc::new(TraceCell::new(0usize));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: single writer; the parent only reads after join.
                unsafe { *p = 7 }
            });
        });
        t.join().unwrap();
        let v = cell.with(|p| {
            // SAFETY: child finished and was joined; no concurrent writer.
            unsafe { *p }
        });
        assert_eq!(v, 7);
    });
}
