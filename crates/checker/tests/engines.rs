//! Cross-engine tests: the DPOR engine must agree with naive DFS on
//! every litmus verdict while exploring a fraction of the schedules,
//! and the PCT engine must be seed-deterministic and replayable.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use cilkm_checker::cell::TraceCell;
use cilkm_checker::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use cilkm_checker::sync::Mutex;
use cilkm_checker::{thread, try_model_with, Config};

/// Serializes tests that read or write process environment variables
/// the engines consult (`CILKM_CHECK_SEED`, `CILKM_CHECK_STATS`).
static ENV_LOCK: StdMutex<()> = StdMutex::new(());

fn dfs_unbounded() -> Config {
    Config {
        preemptions: None,
        ..Config::default()
    }
}

// ---- Scenario zoo (fn pointers so one table drives both engines) ----

/// Sound release/acquire message passing.
fn mp_release_acquire() {
    let flag = Arc::new(AtomicBool::new(false));
    let data = Arc::new(AtomicUsize::new(0));
    let (f2, d2) = (flag.clone(), data.clone());
    let t = thread::spawn(move || {
        d2.store(42, Ordering::Relaxed);
        f2.store(true, Ordering::Release);
    });
    if flag.load(Ordering::Acquire) {
        assert_eq!(data.load(Ordering::Relaxed), 42);
    }
    t.join().unwrap();
}

/// Broken message passing: relaxed flag store leaks a stale data read.
fn mp_relaxed() {
    let flag = Arc::new(AtomicBool::new(false));
    let data = Arc::new(AtomicUsize::new(0));
    let (f2, d2) = (flag.clone(), data.clone());
    let t = thread::spawn(move || {
        d2.store(42, Ordering::Relaxed);
        f2.store(true, Ordering::Relaxed);
    });
    if flag.load(Ordering::Acquire) {
        assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
    }
    t.join().unwrap();
}

/// SeqCst store buffering: at least one thread sees the other's store.
fn sb_seqcst() {
    let x = Arc::new(AtomicUsize::new(0));
    let y = Arc::new(AtomicUsize::new(0));
    let (x2, y2) = (x.clone(), y.clone());
    let t = thread::spawn(move || {
        x2.store(1, Ordering::SeqCst);
        y2.load(Ordering::SeqCst)
    });
    y.store(1, Ordering::SeqCst);
    let r1 = x.load(Ordering::SeqCst);
    let r2 = t.join().unwrap();
    assert!(r1 == 1 || r2 == 1, "SeqCst store buffering violated");
}

/// Two threads with fully disjoint data: every interleaving is
/// equivalent, so DPOR should collapse the tree DFS enumerates.
fn independent_counters() {
    let a = Arc::new(AtomicUsize::new(0));
    let b = Arc::new(AtomicUsize::new(0));
    let a2 = a.clone();
    let t = thread::spawn(move || {
        for _ in 0..3 {
            a2.fetch_add(1, Ordering::Relaxed);
        }
    });
    for _ in 0..3 {
        b.fetch_add(1, Ordering::Relaxed);
    }
    t.join().unwrap();
    assert_eq!(b.load(Ordering::Relaxed), 3);
}

/// Two release/acquire channels with disjoint locations, one per
/// producer thread: the producers are fully independent of each other,
/// so DFS pays for interleavings DPOR never runs.
fn mp_two_channels() {
    let f1 = Arc::new(AtomicBool::new(false));
    let d1 = Arc::new(AtomicUsize::new(0));
    let f2 = Arc::new(AtomicBool::new(false));
    let d2 = Arc::new(AtomicUsize::new(0));
    let (fa, da) = (f1.clone(), d1.clone());
    let t1 = thread::spawn(move || {
        da.store(1, Ordering::Relaxed);
        fa.store(true, Ordering::Release);
    });
    let (fb, db) = (f2.clone(), d2.clone());
    let t2 = thread::spawn(move || {
        db.store(2, Ordering::Relaxed);
        fb.store(true, Ordering::Release);
    });
    if f1.load(Ordering::Acquire) {
        assert_eq!(d1.load(Ordering::Relaxed), 1);
    }
    if f2.load(Ordering::Acquire) {
        assert_eq!(d2.load(Ordering::Relaxed), 2);
    }
    t1.join().unwrap();
    t2.join().unwrap();
}

/// Mutex-serialized increments lose nothing.
fn mutex_counter() {
    let counter = Arc::new(Mutex::new(0usize));
    let c2 = counter.clone();
    let t = thread::spawn(move || {
        *c2.lock() += 1;
    });
    *counter.lock() += 1;
    t.join().unwrap();
    assert_eq!(*counter.lock(), 2);
}

/// Unsynchronized plain-memory race.
fn plain_race() {
    let cell = Arc::new(TraceCell::new(0usize));
    let c2 = cell.clone();
    let t = thread::spawn(move || {
        c2.with_mut(|p| {
            // SAFETY: intentionally racy; the model aborts the schedule
            // before the UB can matter (pointer is valid and aligned).
            unsafe { *p += 1 }
        });
    });
    cell.with_mut(|p| {
        // SAFETY: as above.
        unsafe { *p += 1 }
    });
    t.join().unwrap();
}

/// Park with no unpark: deadlock in every schedule.
fn lost_park() {
    let t = thread::spawn(|| {
        thread::park();
    });
    t.join().unwrap();
}

const SUITE: &[(&str, fn(), bool)] = &[
    ("mp_release_acquire", mp_release_acquire, true),
    ("mp_relaxed", mp_relaxed, false),
    ("sb_seqcst", sb_seqcst, true),
    ("independent_counters", independent_counters, true),
    ("mp_two_channels", mp_two_channels, true),
    ("mutex_counter", mutex_counter, true),
    ("plain_race", plain_race, false),
    ("lost_park", lost_park, false),
];

/// The S5 gate: DPOR and DFS must return the same verdict on every
/// litmus scenario at identical bounds (none), and passing verdicts must
/// be complete (true exhaustion, not a schedule-cap timeout).
#[test]
fn dpor_and_dfs_verdicts_agree() {
    for &(name, f, expect_pass) in SUITE {
        let dfs = try_model_with(dfs_unbounded(), f);
        let dpor = try_model_with(Config::dpor(), f);
        assert_eq!(
            dfs.is_ok(),
            expect_pass,
            "dfs verdict flipped on {name}: {dfs:?}"
        );
        assert_eq!(
            dpor.is_ok(),
            expect_pass,
            "dpor verdict flipped on {name}: {dpor:?}"
        );
        if let (Ok(a), Ok(b)) = (&dfs, &dpor) {
            assert!(a.complete, "dfs did not exhaust {name}");
            assert!(b.complete, "dpor did not exhaust {name}");
        }
    }
}

/// The reduction claim: at identical (unbounded) limits DPOR completes
/// the passing scenarios in at most a quarter of the schedules DFS
/// needs, and accounts for the rest as pruned.
#[test]
fn dpor_prunes_at_least_4x_on_independent_work() {
    for &(name, f) in &[
        ("independent_counters", independent_counters as fn()),
        ("mp_two_channels", mp_two_channels as fn()),
    ] {
        let dfs = try_model_with(dfs_unbounded(), f).expect(name);
        let dpor = try_model_with(Config::dpor(), f).expect(name);
        assert!(
            dpor.schedules * 4 <= dfs.schedules,
            "{name}: dpor ran {} of dfs's {} schedules (> 25%)",
            dpor.schedules,
            dfs.schedules
        );
        assert!(
            dpor.pruned > 0,
            "{name}: expected sleep-set/backtrack pruning to be recorded"
        );
        assert!(
            dpor.dependence_classes > 0,
            "{name}: dependence classes must be reported"
        );
    }
}

/// PCT is a pure function of its seed: two runs with the same
/// configuration fail with byte-identical reports on a buggy scenario,
/// and the printed `seed:depth` pair replays the failure in exactly one
/// schedule.
#[test]
fn pct_is_deterministic_and_replayable() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = || try_model_with(Config::pct(0xC11F, 2, 500), mp_relaxed);
    let e1 = run().expect_err("pct must find the relaxed-mp bug");
    let e2 = run().expect_err("pct must find the relaxed-mp bug");
    assert_eq!(e1.message, e2.message, "same seed, different failure");
    assert_eq!(e1.schedules_explored, e2.schedules_explored);

    // The failure report carries its own reproducer.
    let pair = e1
        .message
        .split("CILKM_CHECK_SEED=")
        .nth(1)
        .expect("failure must print a replay pair")
        .split_whitespace()
        .next()
        .unwrap();
    let (seed, depth) = pair.split_once(':').expect("seed:depth format");
    let replay = try_model_with(
        Config::pct_replay(seed.parse().unwrap(), depth.parse().unwrap()),
        mp_relaxed,
    )
    .expect_err("replaying the printed seed must reproduce the failure");
    assert_eq!(
        replay.schedules_explored, 1,
        "replay must reproduce on the first schedule"
    );
}

/// `CILKM_CHECK_SEED` overrides a PCT config with a single replayed
/// schedule — the env-var path of the same plumbing.
#[test]
fn pct_env_seed_overrides_sampling() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let bad = try_model_with(Config::pct(0xC11F, 2, 500), mp_relaxed)
        .expect_err("pct must find the relaxed-mp bug");
    let pair = bad
        .message
        .split("CILKM_CHECK_SEED=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    std::env::set_var("CILKM_CHECK_SEED", &pair);
    let replay = try_model_with(Config::pct(0, 9, 1), mp_relaxed);
    std::env::remove_var("CILKM_CHECK_SEED");
    let err = replay.expect_err("env seed must replay the failing schedule");
    assert_eq!(err.schedules_explored, 1);
}

/// A passing PCT run never claims exhaustion.
#[test]
fn pct_pass_is_incomplete() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = try_model_with(Config::pct(7, 2, 50), mp_release_acquire)
        .expect("sound protocol must pass under sampling");
    assert_eq!(report.schedules, 50);
    assert!(!report.complete, "sampling must not claim exhaustion");
}

/// `CILKM_CHECK_STATS` captures one deterministic JSON entry per
/// `(test, engine)` pair.
#[test]
fn stats_report_is_written_and_merged() {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join("cilkm_engines_stats_test.json");
    let _ = std::fs::remove_file(&path);
    std::env::set_var("CILKM_CHECK_STATS", &path);
    let dpor = try_model_with(Config::dpor(), independent_counters).unwrap();
    let _ = try_model_with(dfs_unbounded(), independent_counters).unwrap();
    std::env::remove_var("CILKM_CHECK_STATS");
    let text = std::fs::read_to_string(&path).expect("stats file must exist");
    let _ = std::fs::remove_file(&path);
    assert!(text.starts_with("{\n  \"schema_version\": 1"), "{text}");
    assert!(
        text.contains("\"engine\":\"dpor\"") && text.contains("\"engine\":\"dfs\""),
        "one entry per engine: {text}"
    );
    assert!(
        text.contains(&format!("\"schedules\":{}", dpor.schedules)),
        "entry must carry the real schedule count: {text}"
    );
    assert!(
        text.contains("\"verdict\":\"pass\""),
        "verdict recorded: {text}"
    );
}

/// The stale-read bound is now tunable: with bound 0 every relaxed load
/// reads the newest store, so the broken mp scenario cannot exhibit its
/// stale read (the sampler "passes" it) while the default bound still
/// finds it. This pins the config plumbing, not the memory model.
#[test]
fn stale_read_bound_is_tunable() {
    let tight = Config {
        stale_read_bound: 0,
        preemptions: None,
        ..Config::default()
    };
    try_model_with(tight, mp_relaxed)
        .expect("with stale_read_bound=0 loads are coherence-latest; no stale read exists");
    try_model_with(dfs_unbounded(), mp_relaxed)
        .expect_err("default bound must still expose the stale read");
}
