//! Sleep-set dynamic partial-order reduction (Flanagan–Godefroid DPOR
//! with the SDPOR-style happens-before filter).
//!
//! The DFS engine enumerates every branch of every scheduling decision,
//! so two *independent* operations cost it both orders even though the
//! orders are indistinguishable. This engine executes one schedule,
//! inspects the recorded step log, and only schedules alternatives at
//! decisions where a *dependent* pair (same atomic location with at
//! least one write, same sync object — see `Access::dependent`) actually
//! raced: for the earlier step `i` of each non-happens-before-ordered
//! dependent pair `(i, j)`, the thread of `j` is added to the backtrack
//! set of the decision that scheduled `i` (or every candidate there,
//! when that thread was not schedulable — the conservative fallback
//! that makes the explored set persistent). The vector clocks the
//! checker already maintains provide the happens-before filter: a pair
//! ordered through *intermediate* steps cannot be reordered directly,
//! and the intermediates contribute their own backtrack points.
//!
//! Sleep sets prune the re-execution of interleavings equivalent to an
//! explored one: once a sibling branch that ran thread `q` (first
//! access `a`) is fully explored, `q` "sleeps" in the remaining
//! branches of that decision until some step dependent with `a` (or by
//! `q` itself) executes; a backtrack choice whose thread is still
//! asleep is discarded without running it. Waking is conservative —
//! dropping an entry early only costs pruning, never soundness.
//!
//! Scope: only yield-point decisions (`DecisionKind::SchedFree`) are
//! reduced. Forced handoffs (a thread blocked or finished — these
//! decide wake and lock-acquisition order without producing a fresh
//! step) and weak-memory value decisions are explored exhaustively,
//! exactly as the DFS engine explores them.

use crate::exec::{
    run_one, Access, Chooser, Config, DecisionKind, ModelError, Report, RunOutcome, StepRec,
};
use crate::stats::Acc;

/// A fully-explored sibling branch of a free decision.
struct Done {
    choice: usize,
    tid: usize,
    /// First access the branch's thread performed, when one was seen
    /// (`None` for sleep-skipped branches and threads that finished
    /// without a visible op — such entries never enter sleep sets).
    access: Option<Access>,
}

enum Kind {
    /// Backtrackable yield-point decision.
    Free {
        /// Candidate tids in choice order.
        cands: Vec<usize>,
        /// First access of the currently-running branch, once bound.
        chosen_access: Option<Access>,
        /// Backtrack set: choice indices that must still be explored.
        pending: Vec<usize>,
        /// Fully-explored sibling branches.
        done: Vec<Done>,
    },
    /// Forced scheduling or value decision: every alternative explored.
    Exhaustive {
        /// Next unexplored choice.
        next: usize,
    },
}

/// One decision point on the current exploration path.
struct Node {
    arity: usize,
    chosen: usize,
    kind: Kind,
}

/// Extends the node stack with this execution's fresh decisions and
/// binds each free node's currently-chosen branch to the first access
/// its thread performed.
fn sync_nodes(nodes: &mut Vec<Node>, out: &RunOutcome) {
    debug_assert!(nodes.len() <= out.decisions.len());
    for (i, n) in nodes.iter().enumerate() {
        debug_assert_eq!(n.arity, out.decisions[i].arity, "nondeterministic arity");
        debug_assert_eq!(n.chosen, out.decisions[i].chosen, "replay diverged");
    }
    for d in &out.decisions[nodes.len()..] {
        nodes.push(Node {
            arity: d.arity,
            chosen: d.chosen,
            kind: match &d.kind {
                DecisionKind::SchedFree { cands } => Kind::Free {
                    cands: cands.clone(),
                    chosen_access: None,
                    pending: Vec::new(),
                    done: Vec::new(),
                },
                DecisionKind::SchedForced | DecisionKind::Value => {
                    Kind::Exhaustive { next: d.chosen + 1 }
                }
            },
        });
    }
    for s in &out.steps {
        if s.sched >= nodes.len() {
            continue;
        }
        let node = &mut nodes[s.sched];
        if let Kind::Free {
            cands,
            chosen_access,
            ..
        } = &mut node.kind
        {
            // Consistency net: only bind when the step really belongs to
            // the chosen branch (see `pending_sched` in exec.rs).
            if cands.get(node.chosen) == Some(&s.tid) {
                *chosen_access = Some(s.access);
            }
        }
    }
}

/// FG backtrack-point computation over one execution's step log: for
/// every dependent, non-HB-ordered pair `(i, j)` (keeping only the last
/// such `i` per `(j, thread-of-i)`), request thread-of-`j` at the
/// decision that scheduled `i`.
fn update_backtracks(nodes: &mut [Node], steps: &[StepRec]) {
    let nthreads = steps.iter().map(|s| s.tid + 1).max().unwrap_or(0);
    let mut handled = vec![false; nthreads];
    for j in 1..steps.len() {
        let sj = &steps[j];
        handled.fill(false);
        for i in (0..j).rev() {
            let si = &steps[i];
            if si.tid == sj.tid || handled[si.tid] {
                continue;
            }
            if !Access::dependent(si.tid, si.access, sj.tid, sj.access) {
                continue;
            }
            if si.stamp <= sj.clock.get(si.tid) {
                // Ordered through intermediate steps: not reorderable
                // here; the intermediates carry their own races.
                continue;
            }
            handled[si.tid] = true;
            add_backtrack(nodes, si, sj.tid);
        }
    }
}

/// Adds thread `q` (or, when `q` is not a candidate, every candidate —
/// the persistence fallback) to the backtrack set of the decision that
/// scheduled step `si`.
fn add_backtrack(nodes: &mut [Node], si: &StepRec, q: usize) {
    let d = si.sched;
    if d >= nodes.len() {
        // Forced or unrecorded (single-candidate) scheduling point:
        // forced decisions are exhaustive, and a single-candidate point
        // has no alternative to request.
        return;
    }
    let chosen = nodes[d].chosen;
    let Kind::Free {
        cands,
        pending,
        done,
        ..
    } = &mut nodes[d].kind
    else {
        return;
    };
    let add = |c: usize, pending: &mut Vec<usize>, done: &[Done]| {
        if c != chosen && !done.iter().any(|dn| dn.choice == c) && !pending.contains(&c) {
            pending.push(c);
        }
    };
    if let Some(c) = cands.iter().position(|&t| t == q) {
        add(c, pending, done);
    } else {
        for c in 0..cands.len() {
            add(c, pending, done);
        }
    }
}

/// The sleeping threads at node `n` of the current path: every thread
/// whose branch was fully explored at an ancestor decision and that no
/// later step along the path woke (by performing a dependent access) or
/// invalidated (by being that thread).
fn sleep_at(nodes: &[Node], steps: &[StepRec], n: usize) -> Vec<usize> {
    let mut sleep: Vec<(usize, Access)> = Vec::new();
    let mut injected = 0usize;
    let inject_upto = |upto: usize, sleep: &mut Vec<(usize, Access)>, injected: &mut usize| {
        let upto = upto.min(n);
        while *injected < upto {
            if let Kind::Free { done, .. } = &nodes[*injected].kind {
                for d in done {
                    if let Some(a) = d.access {
                        sleep.push((d.tid, a));
                    }
                }
            }
            *injected += 1;
        }
    };
    for s in steps {
        if s.ndecisions > n {
            break;
        }
        inject_upto(s.ndecisions, &mut sleep, &mut injected);
        sleep.retain(|&(t, a)| t != s.tid && !Access::dependent(t, a, s.tid, s.access));
    }
    inject_upto(n, &mut sleep, &mut injected);
    sleep.into_iter().map(|(t, _)| t).collect()
}

/// Pulls the next branch to explore at the deepest node, discarding
/// (and counting) backtrack choices whose thread is asleep. `None`
/// means the node is exhausted.
fn next_choice(nodes: &mut [Node], last_steps: &[StepRec], acc: &mut Acc) -> Option<usize> {
    let n = nodes.len() - 1;
    loop {
        match &nodes[n].kind {
            Kind::Exhaustive { next } => {
                let c = *next;
                if c >= nodes[n].arity {
                    return None;
                }
                let Kind::Exhaustive { next } = &mut nodes[n].kind else {
                    unreachable!()
                };
                *next += 1;
                return Some(c);
            }
            Kind::Free { cands, pending, .. } => {
                let &c = pending.iter().min()?;
                let q = cands[c];
                let asleep = sleep_at(nodes, last_steps, n).contains(&q);
                let Kind::Free { pending, done, .. } = &mut nodes[n].kind else {
                    unreachable!()
                };
                pending.retain(|&x| x != c);
                if asleep {
                    // Equivalent to an interleaving already explored:
                    // skip without executing.
                    done.push(Done {
                        choice: c,
                        tid: q,
                        access: None,
                    });
                    acc.pruned += 1;
                    continue;
                }
                return Some(c);
            }
        }
    }
}

/// Switches the deepest node onto branch `c`, retiring the branch that
/// just finished exploring.
fn take_branch(nodes: &mut [Node], c: usize) {
    let node = nodes.last_mut().expect("take_branch on empty stack");
    if let Kind::Free {
        cands,
        chosen_access,
        done,
        ..
    } = &mut node.kind
    {
        done.push(Done {
            choice: node.chosen,
            tid: cands[node.chosen],
            access: chosen_access.take(),
        });
    }
    node.chosen = c;
}

/// Retires the deepest node, counting the sibling subtrees DPOR never
/// had to enter.
fn pop_node(nodes: &mut Vec<Node>, acc: &mut Acc) {
    let node = nodes.pop().expect("pop_node on empty stack");
    if let Kind::Free { done, .. } = &node.kind {
        acc.pruned += node.arity.saturating_sub(done.len() + 1);
    }
}

/// The DPOR engine entry point.
pub(crate) fn explore<F>(config: &Config, f: &F, acc: &mut Acc) -> Result<Report, ModelError>
where
    F: Fn() + Sync,
{
    let mut nodes: Vec<Node> = Vec::new();
    let mut replay: Vec<usize> = Vec::new();
    let mut last_steps: Vec<StepRec>;
    let mut complete = true;
    'explore: loop {
        if acc.schedules >= config.max_schedules {
            complete = false;
            break;
        }
        acc.schedules += 1;
        let out = run_one(config, Chooser::Replay(replay.clone()), f);
        acc.absorb(&out);
        if let Some(msg) = out.failure {
            return Err(ModelError {
                message: msg,
                schedule: out.schedule,
                schedules_explored: acc.schedules,
            });
        }
        sync_nodes(&mut nodes, &out);
        last_steps = out.steps;
        update_backtracks(&mut nodes, &last_steps);
        loop {
            if nodes.is_empty() {
                break 'explore;
            }
            match next_choice(&mut nodes, &last_steps, acc) {
                Some(c) => {
                    take_branch(&mut nodes, c);
                    replay = nodes.iter().map(|nd| nd.chosen).collect();
                    continue 'explore;
                }
                None => pop_node(&mut nodes, acc),
            }
        }
    }
    Ok(acc.report(complete))
}
