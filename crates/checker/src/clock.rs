//! Vector clocks: the happens-before backbone of the checker.
//!
//! Every model thread carries a clock with one component per thread;
//! component `i` counts the visible operations thread `i` has executed.
//! Event `a` happens-before event `b` exactly when the clock recorded at
//! `a` is component-wise `<=` the clock of the thread executing `b`.

/// A vector clock over the (few) threads of one model execution.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub(crate) struct VClock {
    t: Vec<u32>,
}

impl VClock {
    /// The component for thread `i` (0 if never touched).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> u32 {
        self.t.get(i).copied().unwrap_or(0)
    }

    fn grow_to(&mut self, i: usize) {
        if self.t.len() <= i {
            self.t.resize(i + 1, 0);
        }
    }

    /// Advances thread `i`'s own component by one; returns the new value.
    pub(crate) fn bump(&mut self, i: usize) -> u32 {
        self.grow_to(i);
        self.t[i] += 1;
        self.t[i]
    }

    /// Component-wise maximum: `self := self ∪ other`.
    pub(crate) fn join(&mut self, other: &VClock) {
        self.grow_to(other.t.len().saturating_sub(1));
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }

    /// Raises component `i` to at least `v`.
    pub(crate) fn set_at_least(&mut self, i: usize, v: u32) {
        self.grow_to(i);
        if self.t[i] < v {
            self.t[i] = v;
        }
    }

    /// Component-wise `<=`: did everything up to `self` happen before a
    /// thread whose clock is `other`?
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.t.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.bump(0);
        b.bump(1);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn bump_counts() {
        let mut a = VClock::default();
        assert_eq!(a.bump(2), 1);
        assert_eq!(a.bump(2), 2);
        assert_eq!(a.get(2), 2);
        assert_eq!(a.get(0), 0);
    }
}
