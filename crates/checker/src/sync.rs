//! Drop-in synchronization primitives: `sync::atomic::*`, [`Mutex`],
//! [`Condvar`].
//!
//! Every type here is dual-mode. Outside a model run it forwards
//! directly to `std::sync` (with the parking_lot shim's ergonomics for
//! `Mutex`/`Condvar`), so crates compiled with their `model` feature
//! still behave normally in ordinary tests. Inside [`crate::model`],
//! every operation becomes a visible event: a scheduling point, a
//! vector-clock update, and — for loads — a choice among the stores the
//! memory model allows the thread to observe.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

use crate::exec::{self, Exec};

/// Atomic types and fences, mirroring `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::exec;

    /// An atomic memory fence (modeled under [`crate::model`]).
    #[inline]
    pub fn fence(ord: Ordering) {
        match exec::current() {
            None => std::sync::atomic::fence(ord),
            Some((e, t)) => e.op_fence(t, ord),
        }
    }

    macro_rules! atomic_int {
        ($(#[$meta:meta])* $name:ident, $real:path, $prim:ty) => {
            $(#[$meta])*
            pub struct $name {
                real: $real,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { real: <$real>::new(v) }
                }

                #[inline]
                fn key(&self) -> usize {
                    &self.real as *const $real as usize
                }

                /// Seed value for the modeled store history. Only the
                /// first model op on an address consults it; afterwards
                /// the real cell is kept write-through on the modeled
                /// coherence-latest value.
                #[inline]
                fn init(&self) -> u64 {
                    self.real.load(Ordering::Relaxed) as u64
                }

                /// Atomic load.
                #[inline]
                pub fn load(&self, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.load(ord),
                        Some((e, t)) => {
                            e.op_atomic_load(t, self.key(), ord, self.init()) as $prim
                        }
                    }
                }

                /// Atomic store.
                #[inline]
                pub fn store(&self, val: $prim, ord: Ordering) {
                    match exec::current() {
                        None => self.real.store(val, ord),
                        Some((e, t)) => {
                            e.op_atomic_store(t, self.key(), ord, self.init(), val as u64);
                            self.real.store(val, Ordering::Relaxed);
                        }
                    }
                }

                /// Atomic swap; returns the previous value.
                #[inline]
                pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.swap(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |_| val as u64,
                            );
                            self.real.store(val, Ordering::Relaxed);
                            old as $prim
                        }
                    }
                }

                /// Strong compare-exchange.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match exec::current() {
                        None => self.real.compare_exchange(current, new, success, failure),
                        Some((e, t)) => {
                            match e.op_atomic_cas(
                                t,
                                self.key(),
                                success,
                                failure,
                                self.init(),
                                current as u64,
                                new as u64,
                            ) {
                                Ok(v) => {
                                    self.real.store(new, Ordering::Relaxed);
                                    Ok(v as $prim)
                                }
                                Err(v) => Err(v as $prim),
                            }
                        }
                    }
                }

                /// Weak compare-exchange. The model never fails
                /// spuriously (a spurious failure is indistinguishable
                /// from a schedule where the CAS simply ran later).
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match exec::current() {
                        None => self
                            .real
                            .compare_exchange_weak(current, new, success, failure),
                        Some(_) => self.compare_exchange(current, new, success, failure),
                    }
                }

                /// Atomic wrapping add; returns the previous value.
                #[inline]
                pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_add(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| (v as $prim).wrapping_add(val) as u64,
                            ) as $prim;
                            self.real.store(old.wrapping_add(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Atomic wrapping subtract; returns the previous value.
                #[inline]
                pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_sub(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| (v as $prim).wrapping_sub(val) as u64,
                            ) as $prim;
                            self.real.store(old.wrapping_sub(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Atomic bitwise OR; returns the previous value.
                #[inline]
                pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_or(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| ((v as $prim) | val) as u64,
                            ) as $prim;
                            self.real.store(old | val, Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Atomic bitwise AND; returns the previous value.
                #[inline]
                pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_and(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| ((v as $prim) & val) as u64,
                            ) as $prim;
                            self.real.store(old & val, Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Atomic maximum; returns the previous value.
                #[inline]
                pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_max(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| (v as $prim).max(val) as u64,
                            ) as $prim;
                            self.real.store(old.max(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Atomic minimum; returns the previous value.
                #[inline]
                pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                    match exec::current() {
                        None => self.real.fetch_min(val, ord),
                        Some((e, t)) => {
                            let old = e.op_atomic_rmw(
                                t,
                                self.key(),
                                ord,
                                self.init(),
                                &mut |v| (v as $prim).min(val) as u64,
                            ) as $prim;
                            self.real.store(old.min(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                /// Mutable access without an atomic op (requires `&mut`).
                #[inline]
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.real.get_mut()
                }

                /// Consumes the atomic, returning its value.
                #[inline]
                pub fn into_inner(self) -> $prim {
                    self.real.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Not a modeled access: reads the write-through cell.
                    f.debug_tuple(stringify!($name))
                        .field(&self.real.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_int!(
        /// Model-aware `AtomicIsize`.
        AtomicIsize,
        std::sync::atomic::AtomicIsize,
        isize
    );

    /// Model-aware `AtomicBool`.
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic boolean.
        pub const fn new(v: bool) -> Self {
            Self {
                real: std::sync::atomic::AtomicBool::new(v),
            }
        }

        #[inline]
        fn key(&self) -> usize {
            &self.real as *const std::sync::atomic::AtomicBool as usize
        }

        #[inline]
        fn init(&self) -> u64 {
            self.real.load(Ordering::Relaxed) as u64
        }

        /// Atomic load.
        #[inline]
        pub fn load(&self, ord: Ordering) -> bool {
            match exec::current() {
                None => self.real.load(ord),
                Some((e, t)) => e.op_atomic_load(t, self.key(), ord, self.init()) != 0,
            }
        }

        /// Atomic store.
        #[inline]
        pub fn store(&self, val: bool, ord: Ordering) {
            match exec::current() {
                None => self.real.store(val, ord),
                Some((e, t)) => {
                    e.op_atomic_store(t, self.key(), ord, self.init(), val as u64);
                    self.real.store(val, Ordering::Relaxed);
                }
            }
        }

        /// Atomic swap; returns the previous value.
        #[inline]
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            match exec::current() {
                None => self.real.swap(val, ord),
                Some((e, t)) => {
                    let old = e.op_atomic_rmw(t, self.key(), ord, self.init(), &mut |_| val as u64);
                    self.real.store(val, Ordering::Relaxed);
                    old != 0
                }
            }
        }

        /// Strong compare-exchange.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match exec::current() {
                None => self.real.compare_exchange(current, new, success, failure),
                Some((e, t)) => {
                    match e.op_atomic_cas(
                        t,
                        self.key(),
                        success,
                        failure,
                        self.init(),
                        current as u64,
                        new as u64,
                    ) {
                        Ok(v) => {
                            self.real.store(new, Ordering::Relaxed);
                            Ok(v != 0)
                        }
                        Err(v) => Err(v != 0),
                    }
                }
            }
        }

        /// Weak compare-exchange (never spuriously fails in the model).
        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match exec::current() {
                None => self
                    .real
                    .compare_exchange_weak(current, new, success, failure),
                Some(_) => self.compare_exchange(current, new, success, failure),
            }
        }

        /// Mutable access without an atomic op.
        #[inline]
        pub fn get_mut(&mut self) -> &mut bool {
            self.real.get_mut()
        }

        /// Consumes the atomic, returning its value.
        #[inline]
        pub fn into_inner(self) -> bool {
            self.real.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.real.load(Ordering::Relaxed))
                .finish()
        }
    }

    /// Model-aware `AtomicPtr`.
    pub struct AtomicPtr<T> {
        real: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                real: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        #[inline]
        fn key(&self) -> usize {
            &self.real as *const std::sync::atomic::AtomicPtr<T> as usize
        }

        #[inline]
        fn init(&self) -> u64 {
            self.real.load(Ordering::Relaxed) as usize as u64
        }

        /// Atomic load.
        #[inline]
        pub fn load(&self, ord: Ordering) -> *mut T {
            match exec::current() {
                None => self.real.load(ord),
                Some((e, t)) => {
                    e.op_atomic_load(t, self.key(), ord, self.init()) as usize as *mut T
                }
            }
        }

        /// Atomic store.
        #[inline]
        pub fn store(&self, p: *mut T, ord: Ordering) {
            match exec::current() {
                None => self.real.store(p, ord),
                Some((e, t)) => {
                    e.op_atomic_store(t, self.key(), ord, self.init(), p as usize as u64);
                    self.real.store(p, Ordering::Relaxed);
                }
            }
        }

        /// Atomic swap; returns the previous pointer.
        #[inline]
        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            match exec::current() {
                None => self.real.swap(p, ord),
                Some((e, t)) => {
                    let old = e
                        .op_atomic_rmw(t, self.key(), ord, self.init(), &mut |_| p as usize as u64);
                    self.real.store(p, Ordering::Relaxed);
                    old as usize as *mut T
                }
            }
        }

        /// Strong compare-exchange.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            match exec::current() {
                None => self.real.compare_exchange(current, new, success, failure),
                Some((e, t)) => {
                    match e.op_atomic_cas(
                        t,
                        self.key(),
                        success,
                        failure,
                        self.init(),
                        current as usize as u64,
                        new as usize as u64,
                    ) {
                        Ok(v) => {
                            self.real.store(new, Ordering::Relaxed);
                            Ok(v as usize as *mut T)
                        }
                        Err(v) => Err(v as usize as *mut T),
                    }
                }
            }
        }

        /// Weak compare-exchange (never spuriously fails in the model).
        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            match exec::current() {
                None => self
                    .real
                    .compare_exchange_weak(current, new, success, failure),
                Some(_) => self.compare_exchange(current, new, success, failure),
            }
        }

        /// Mutable access without an atomic op.
        #[inline]
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.real.get_mut()
        }

        /// Consumes the atomic, returning the pointer.
        #[inline]
        pub fn into_inner(self) -> *mut T {
            self.real.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr")
                .field(&self.real.load(Ordering::Relaxed))
                .finish()
        }
    }
}

fn lock_real<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A mutex with the parking_lot shim's infallible API, modeled under
/// [`crate::model`]: lock acquisition is a scheduling point, contention
/// blocks in the model scheduler, and lock/unlock transfer vector
/// clocks (so data the lock protects is ordered for the race detector).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Mirrors the parking_lot shim's guard: a
/// [`Condvar`] can take the inner std guard out and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// Model context of the acquisition, if any: (execution, thread id).
    model: Option<(Arc<Exec>, usize)>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    fn key(&self) -> usize {
        &self.inner as *const std::sync::Mutex<T> as *const () as usize
    }

    /// Acquires the mutex, blocking (in the model scheduler when under
    /// a model run) until available. Never errors.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match exec::current() {
            None => MutexGuard {
                lock: self,
                model: None,
                guard: Some(lock_real(&self.inner)),
            },
            Some((e, t)) => {
                e.op_mutex_lock(t, self.key());
                // The model admits exactly one owner at a time, and
                // owners release the real lock before announcing the
                // model unlock, so this acquisition never contends.
                MutexGuard {
                    lock: self,
                    model: Some((e, t)),
                    guard: Some(lock_real(&self.inner)),
                }
            }
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match exec::current() {
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    model: None,
                    guard: Some(g),
                }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    model: None,
                    guard: Some(p.into_inner()),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
            Some((e, t)) => {
                if e.op_mutex_try_lock(t, self.key()) {
                    Some(MutexGuard {
                        lock: self,
                        model: Some((e, t)),
                        guard: Some(lock_real(&self.inner)),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next model-admitted owner
        // finds it free.
        drop(self.guard.take());
        if let Some((e, t)) = self.model.take() {
            // Skip the model unlock while unwinding: if the execution is
            // being torn down (ModelAbort) a nested abort panic would be
            // a double panic; if a test assertion is unwinding, the
            // thread's finish handler records the failure and the whole
            // execution stops anyway.
            if !std::thread::panicking() {
                e.op_mutex_unlock(t, self.lock.key());
            }
        }
    }
}

/// Result of a wait with a timeout.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with the parking_lot shim's by-`&mut`-guard
/// API. Under the model, waits block in the model scheduler and
/// timeouts never fire (a missing notification is then a detectable
/// deadlock instead of a silent timeout).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn key(&self) -> usize {
        &self.inner as *const std::sync::Condvar as usize
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.model.clone() {
            None => {
                let g = guard.guard.take().expect("guard already taken");
                let g = match self.inner.wait(g) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                guard.guard = Some(g);
            }
            Some((e, t)) => {
                // Release the real lock before the model releases the
                // modeled one; retake it once the model readmits us.
                drop(guard.guard.take().expect("guard already taken"));
                e.op_condvar_wait(t, self.key(), guard.lock.key());
                guard.guard = Some(lock_real(&guard.lock.inner));
            }
        }
    }

    /// Blocks until notified or `timeout` elapses. Under the model the
    /// timeout never fires — see the type-level docs.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match guard.model.clone() {
            None => {
                let g = guard.guard.take().expect("guard already taken");
                let (g, res) = match self.inner.wait_timeout(g, timeout) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                guard.guard = Some(g);
                WaitTimeoutResult {
                    timed_out: res.timed_out(),
                }
            }
            Some(_) => {
                self.wait(guard);
                WaitTimeoutResult { timed_out: false }
            }
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        match exec::current() {
            None => {
                self.inner.notify_one();
            }
            Some((e, t)) => e.op_condvar_notify(t, self.key(), false),
        }
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        match exec::current() {
            None => {
                self.inner.notify_all();
            }
            Some((e, t)) => e.op_condvar_notify(t, self.key(), true),
        }
    }
}
