//! Model-aware threads: spawn/join, park/unpark, `yield_now`.
//!
//! Outside a model run these forward to `std::thread`. Inside, spawned
//! closures run on real OS threads but are scheduled one-at-a-time by
//! the model, `park` blocks in the model scheduler (timeouts park
//! forever, turning lost wakeups into detectable deadlocks), and
//! `unpark` carries the loom/std token semantics plus a happens-before
//! edge.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as OsMutex};
use std::time::Duration;

use crate::exec::{self, Exec, ModelAbort};

/// A handle to a thread, usable for [`Thread::unpark`].
#[derive(Clone)]
pub struct Thread(Repr);

#[derive(Clone)]
enum Repr {
    Real(std::thread::Thread),
    Model { exec: Arc<Exec>, tid: usize },
}

impl Thread {
    /// Wakes the thread's next (or current) [`park`] call.
    pub fn unpark(&self) {
        match &self.0 {
            Repr::Real(t) => t.unpark(),
            Repr::Model { exec, tid } => {
                let (e, me) =
                    exec::current().expect("unpark of a model thread from outside its model run");
                debug_assert!(
                    Arc::ptr_eq(&e, exec),
                    "unpark across distinct model executions"
                );
                e.op_unpark(me, *tid);
            }
        }
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Real(t) => f.debug_tuple("Thread").field(&t.id()).finish(),
            Repr::Model { tid, .. } => f.debug_tuple("Thread").field(tid).finish(),
        }
    }
}

/// A handle to the calling thread.
pub fn current() -> Thread {
    match exec::current() {
        None => Thread(Repr::Real(std::thread::current())),
        Some((exec, tid)) => Thread(Repr::Model { exec, tid }),
    }
}

/// Blocks until another thread unparks this one (token semantics as in
/// `std::thread::park`).
pub fn park() {
    match exec::current() {
        None => std::thread::park(),
        Some((e, t)) => e.op_park(t),
    }
}

/// [`park`] with a timeout. Under the model the timeout never fires:
/// the thread parks until unparked, so a protocol that *relies* on the
/// timeout (a lost wakeup) deadlocks visibly instead of limping along.
pub fn park_timeout(dur: Duration) {
    match exec::current() {
        None => std::thread::park_timeout(dur),
        Some((e, t)) => e.op_park(t),
    }
}

/// Cooperatively gives up the scheduling baton. Under the model the
/// caller is also deprioritized until other runnable threads have
/// moved, which keeps spin-wait loops from exploding the schedule tree.
pub fn yield_now() {
    match exec::current() {
        None => std::thread::yield_now(),
        Some((e, t)) => e.op_yield(t),
    }
}

/// Owned permission to join on a thread.
pub struct JoinHandle<T>(HandleRepr<T>);

enum HandleRepr<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Exec>,
        tid: usize,
        slot: Arc<OsMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// A [`Thread`] handle for the spawned thread.
    pub fn thread(&self) -> Thread {
        match &self.0 {
            HandleRepr::Real(h) => Thread(Repr::Real(h.thread().clone())),
            HandleRepr::Model { exec, tid, .. } => Thread(Repr::Model {
                exec: exec.clone(),
                tid: *tid,
            }),
        }
    }

    /// Waits for the thread to finish and returns its result. Under the
    /// model, a panicking child aborts the whole execution before join
    /// returns, so the model arm only ever yields `Ok`.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleRepr::Real(h) => h.join(),
            HandleRepr::Model { tid, slot, .. } => {
                let (e, me) =
                    exec::current().expect("join of a model thread from outside its model run");
                e.op_join(me, tid);
                let v = slot
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("model thread finished without storing a result");
                Ok(v)
            }
        }
    }
}

/// Spawns a thread. Under the model the closure runs on a real OS
/// thread but only when the model scheduler hands it the baton.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_with(None, None, f)
}

/// [`spawn`] with an optional thread name and stack size. Outside a
/// model run both are applied via `std::thread::Builder`; inside, the
/// name is advisory (model threads are named by their model id) and the
/// stack size is ignored — model tests exercise protocols, not deep
/// recursion.
pub fn spawn_with<F, T>(name: Option<String>, stack_size: Option<usize>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match exec::current() {
        None => {
            let mut b = std::thread::Builder::new();
            if let Some(n) = name {
                b = b.name(n);
            }
            if let Some(s) = stack_size {
                b = b.stack_size(s);
            }
            JoinHandle(HandleRepr::Real(
                b.spawn(f).expect("failed to spawn thread"),
            ))
        }
        Some((e, parent_tid)) => {
            let child = e.op_spawn(parent_tid);
            let slot: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
            let e2 = e.clone();
            let slot2 = slot.clone();
            let os = std::thread::Builder::new()
                .name(format!("model-{child}"))
                .spawn(move || {
                    exec::set_current(Some((e2.clone(), child)));
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        e2.wait_for_turn(child);
                        f()
                    }));
                    exec::set_current(None);
                    match result {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                            e2.finish_thread(child, None);
                        }
                        Err(p) => {
                            if p.downcast_ref::<ModelAbort>().is_some() {
                                // Execution already failed elsewhere; the
                                // failure is recorded — just exit the OS
                                // thread quietly.
                            } else {
                                e2.finish_thread(child, Some(exec::payload_msg(p.as_ref())));
                            }
                        }
                    }
                })
                .expect("failed to spawn model OS thread");
            e.push_os_handle(os);
            JoinHandle(HandleRepr::Model {
                exec: e,
                tid: child,
                slot,
            })
        }
    }
}
