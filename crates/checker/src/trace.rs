//! Manual race-detector hooks for plain (non-atomic) memory.
//!
//! Code that hands out raw pointers into shared structures (the SPA map
//! accessors, the mmap lookup fast path) calls [`note_read`] /
//! [`note_write`] with the address it is about to touch. Outside a
//! model run both are no-ops (and compile to nothing once inlined), so
//! the instrumented crates pay nothing in normal builds even with their
//! `model` feature enabled.

use crate::exec;

/// Reports a plain read of `addr` to the model's happens-before race
/// detector. `what` names the structure for diagnostics. No-op outside
/// a model run.
#[inline]
pub fn note_read(addr: usize, what: &str) {
    if let Some((e, t)) = exec::current() {
        e.op_plain_read(t, addr, what);
    }
}

/// Reports a plain write of `addr` to the model's happens-before race
/// detector. No-op outside a model run.
#[inline]
pub fn note_write(addr: usize, what: &str) {
    if let Some((e, t)) = exec::current() {
        e.op_plain_write(t, addr, what);
    }
}
