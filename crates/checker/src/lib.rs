//! cilkm-checker: an in-tree, loom-style deterministic concurrency
//! model checker for the cilkm runtime.
//!
//! The build environment vendors no external crates, so this crate
//! plays the role loom plays for rayon/crossbeam: it provides drop-in
//! `sync::atomic::*`, [`sync::Mutex`]/[`sync::Condvar`], and
//! [`thread`] facades that the runtime crates adopt behind their
//! `model` cargo feature, plus the [`model`] entry point that runs a
//! closure under every (bounded) thread interleaving.
//!
//! # What the checker explores
//!
//! - **Schedules.** Threads are real OS threads, but exactly one runs
//!   at a time; before every visible operation the scheduler may hand
//!   the baton to another runnable thread. The default enumerator walks
//!   the decision tree depth-first with a CHESS-style preemption bound
//!   ([`Config::preemptions`]) and yield-exclusion for spin loops; the
//!   [`Engine::Dpor`] engine prunes schedules that only reorder
//!   independent operations, and [`Engine::Pct`] samples seeded
//!   randomized priority schedules for depths exhaustion cannot reach.
//! - **Weak memory.** Stores are kept per-location with vector-clock
//!   metadata; a load *chooses* among the stores it may legally observe,
//!   so a `Relaxed` load really can return a stale value in some
//!   schedule. Acquire/release/SeqCst edges and fences constrain the
//!   choice exactly as the C11 model (release sequences and SC fences
//!   are approximated conservatively).
//! - **Races.** Plain-memory accesses reported via [`trace`] or
//!   [`cell::TraceCell`] feed a happens-before race detector; a
//!   conflicting concurrent pair fails the run with both thread names.
//! - **Deadlocks.** `park_timeout`/`wait_for` never time out under the
//!   model, so a lost wakeup — the PR 1 sleeper bug — surfaces as a
//!   deterministic "deadlock" report rather than a silent stall.
//!
//! # Example
//!
//! ```
//! use cilkm_checker::{model, sync::atomic::{AtomicBool, AtomicUsize, Ordering}};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let flag = Arc::new(AtomicBool::new(false));
//!     let data = Arc::new(AtomicUsize::new(0));
//!     let (f2, d2) = (flag.clone(), data.clone());
//!     let t = cilkm_checker::thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(true, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) {
//!         // Acquire saw the Release store, so the data store is visible.
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! ```

#![deny(missing_docs)]

mod clock;
mod dpor;
mod exec;
mod pct;
mod stats;

pub mod cell;
pub mod sync;
pub mod thread;
pub mod trace;

pub use exec::{
    in_model, model, model_with, try_model, try_model_with, Config, Engine, ModelError, Report,
};
