//! [`TraceCell`]: an `UnsafeCell` whose accesses the model race-checks.
//!
//! Shared mutable state that real code guards with ad-hoc protocols
//! (deque slots, latch payloads, map entries) is wrapped in a
//! `TraceCell` under the `model` feature. Every access reports to the
//! happens-before race detector; outside a model run the cell is a
//! plain `UnsafeCell` with zero overhead.

use std::cell::UnsafeCell;

use crate::trace;

/// An `UnsafeCell` with loom-style `with`/`with_mut` access that the
/// model's race detector observes.
#[derive(Default)]
pub struct TraceCell<T: ?Sized> {
    value: UnsafeCell<T>,
}

// SAFETY: TraceCell makes no synchronization promises of its own — it
// exposes raw pointers exactly like `UnsafeCell`, and callers carry the
// same obligations they would with a bare `UnsafeCell<T>` shared across
// threads. The `Sync` bound mirrors what those callers already assert
// via their own `unsafe impl Sync` on containing types; the cell's sole
// addition is race *detection* under the model.
unsafe impl<T: ?Sized + Send> Sync for TraceCell<T> {}

impl<T> TraceCell<T> {
    /// Creates a new cell.
    pub const fn new(value: T) -> TraceCell<T> {
        TraceCell {
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> TraceCell<T> {
    /// Runs `f` with a shared raw pointer to the contents, reporting a
    /// read to the model's race detector.
    ///
    /// The pointer must not escape `f`; dereferencing it is subject to
    /// the usual `UnsafeCell` aliasing rules.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        trace::note_read(self.value.get() as *const () as usize, "TraceCell");
        f(self.value.get())
    }

    /// Runs `f` with an exclusive raw pointer to the contents,
    /// reporting a write to the model's race detector.
    ///
    /// The pointer must not escape `f`; the caller must guarantee no
    /// concurrent access, exactly as for a bare `UnsafeCell`.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        trace::note_write(self.value.get() as *const () as usize, "TraceCell");
        f(self.value.get())
    }

    /// Mutable access through an exclusive reference (never racy).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}
