//! Exploration statistics: per-run accounting and the deterministic
//! JSON report CI archives next to `lint_report.json`.
//!
//! Every `try_model_with` call accumulates schedule counts, DPOR
//! pruning, the distinct dependence classes touched, and the maximum
//! execution depth. When the `CILKM_CHECK_STATS` env var names a file,
//! the run's summary is merged into it keyed by `(test, engine)`: the
//! file is read, the entry replaced, and the whole report rewritten
//! sorted, so the final contents are identical across runs regardless of
//! test order (counts themselves are deterministic — DFS/DPOR by
//! construction, PCT by its fixed seed).

use std::collections::{BTreeMap, HashSet};
use std::sync::{Mutex as OsMutex, OnceLock};

use crate::exec::{ModelError, Report, RunOutcome};

/// Running totals for one `try_model_with` call.
#[derive(Default)]
pub(crate) struct Acc {
    /// Schedules executed so far.
    pub(crate) schedules: usize,
    /// DPOR: sibling subtrees skipped as redundant.
    pub(crate) pruned: usize,
    /// Distinct dependence classes seen across all executions.
    pub(crate) classes: HashSet<(u8, usize)>,
    /// Maximum visible-operation count of any single execution.
    pub(crate) max_depth: usize,
}

impl Acc {
    /// Folds one execution's outcome into the totals.
    pub(crate) fn absorb(&mut self, out: &RunOutcome) {
        for s in &out.steps {
            if let Some(c) = s.access.class(s.tid) {
                self.classes.insert(c);
            }
        }
        self.max_depth = self.max_depth.max(out.steps.len());
    }

    /// The public [`Report`] for a passing run.
    pub(crate) fn report(&self, complete: bool) -> Report {
        Report {
            schedules: self.schedules,
            complete,
            pruned: self.pruned,
            dependence_classes: self.classes.len(),
            max_depth: self.max_depth,
        }
    }
}

/// One line of the stats report.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    verdict: String,
    complete: bool,
    schedules: usize,
    pruned: usize,
    dependence_classes: usize,
    max_depth: usize,
}

fn sink() -> &'static OsMutex<()> {
    static SINK: OnceLock<OsMutex<()>> = OnceLock::new();
    SINK.get_or_init(|| OsMutex::new(()))
}

/// Minimal escaping for the only string we embed (test names: Rust
/// paths, so this is belt-and-braces).
fn escape(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_control())
        .map(|c| match c {
            '"' => '\''.to_string(),
            '\\' => '/'.to_string(),
            c => c.to_string(),
        })
        .collect()
}

fn entry_line(test: &str, engine: &str, e: &Entry) -> String {
    format!(
        "    {{\"test\":\"{}\",\"engine\":\"{}\",\"verdict\":\"{}\",\"complete\":{},\
         \"schedules\":{},\"pruned\":{},\"dependence_classes\":{},\"max_depth\":{}}}",
        escape(test),
        engine,
        e.verdict,
        e.complete,
        e.schedules,
        e.pruned,
        e.dependence_classes,
        e.max_depth
    )
}

/// Extracts `"key":` followed by a string or scalar from a one-line
/// entry written by [`entry_line`]. Only parses our own output.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

fn parse_existing(src: &str) -> BTreeMap<(String, String), Entry> {
    let mut map = BTreeMap::new();
    for line in src.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"test\":") {
            continue;
        }
        let (Some(test), Some(engine), Some(verdict)) = (
            field(line, "test"),
            field(line, "engine"),
            field(line, "verdict"),
        ) else {
            continue;
        };
        let num = |k: &str| field(line, k).and_then(|v| v.parse::<usize>().ok());
        let (Some(schedules), Some(pruned), Some(classes), Some(depth)) = (
            num("schedules"),
            num("pruned"),
            num("dependence_classes"),
            num("max_depth"),
        ) else {
            continue;
        };
        map.insert(
            (test.to_string(), engine.to_string()),
            Entry {
                verdict: verdict.to_string(),
                complete: field(line, "complete") == Some("true"),
                schedules,
                pruned,
                dependence_classes: classes,
                max_depth: depth,
            },
        );
    }
    map
}

fn render(map: &BTreeMap<(String, String), Entry>) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"runs\": [\n");
    let lines: Vec<String> = map
        .iter()
        .map(|((t, e), entry)| entry_line(t, e, entry))
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Records one finished model run into the `CILKM_CHECK_STATS` file (a
/// no-op when the env var is unset). Keyed by the calling thread's name,
/// which under `cargo test` is the test's path.
pub(crate) fn record(engine: &'static str, acc: &Acc, result: &Result<Report, ModelError>) {
    let Ok(path) = std::env::var("CILKM_CHECK_STATS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let test = std::thread::current().name().unwrap_or("main").to_string();
    let entry = Entry {
        verdict: if result.is_ok() { "pass" } else { "fail" }.to_string(),
        complete: matches!(result, Ok(r) if r.complete),
        schedules: acc.schedules,
        pruned: acc.pruned,
        dependence_classes: acc.classes.len(),
        max_depth: acc.max_depth,
    };
    let _g = sink().lock().unwrap_or_else(|e| e.into_inner());
    let mut map = std::fs::read_to_string(&path)
        .map(|s| parse_existing(&s))
        .unwrap_or_default();
    map.insert((test, engine.to_string()), entry);
    // Best-effort: stats must never fail a model run.
    let _ = std::fs::write(&path, render(&map));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: &str, n: usize) -> Entry {
        Entry {
            verdict: v.to_string(),
            complete: true,
            schedules: n,
            pruned: 1,
            dependence_classes: 2,
            max_depth: 3,
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert(("b::t1".to_string(), "dpor".to_string()), entry("pass", 10));
        map.insert(("a::t2".to_string(), "dfs".to_string()), entry("fail", 7));
        let text = render(&map);
        let back = parse_existing(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back, map);
        // Deterministic: re-render of the parse is byte-identical.
        assert_eq!(render(&back), text);
    }

    #[test]
    fn merge_replaces_same_key() {
        let mut map = BTreeMap::new();
        map.insert(("t".to_string(), "dpor".to_string()), entry("pass", 1));
        let text = render(&map);
        let mut back = parse_existing(&text);
        back.insert(("t".to_string(), "dpor".to_string()), entry("pass", 9));
        assert_eq!(back.len(), 1);
        assert_eq!(back.values().next().unwrap().schedules, 9);
    }
}
