//! The execution engine: deterministic scheduling, schedule enumeration,
//! a weak-memory store model, and happens-before race detection.
//!
//! # How a model run works
//!
//! [`try_model_with`] runs the closure repeatedly, once per *schedule*.
//! Every model thread is a real OS thread, but exactly one is ever
//! runnable: threads hand a baton to each other through
//! [`Exec::yield_point`], which consults the schedule trace. Each
//! execution replays a recorded prefix of decisions and extends it with
//! first-choice defaults; after the execution the enumerator backtracks
//! the deepest decision that still has unexplored alternatives (DFS over
//! the schedule tree), bounded by a CHESS-style preemption budget.
//!
//! # Weak memory
//!
//! Atomics are simulated, not executed: every store is kept in a
//! per-location history tagged with the storing thread's vector clock,
//! and a load *chooses* among the stores that are coherence-legal for
//! the loading thread. A `Relaxed` load can therefore return a stale
//! value — exactly the class of bug (PR 1's lost wakeup) this checker
//! exists to catch. `Acquire`/`Release`/`SeqCst` edges and fences join
//! vector clocks the usual way, which in turn shrinks the set of stores
//! later loads may observe.
//!
//! # Failure propagation
//!
//! Any failure (assertion in user code, detected data race, deadlock,
//! livelock bound) is recorded in the shared state; every other thread
//! aborts at its next yield point by panicking with the private
//! [`ModelAbort`] payload, which a panic-hook filter keeps silent.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsMutexGuard, Once};

use crate::clock::VClock;

/// Which exploration engine drives a model run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Exhaustive depth-first enumeration of the schedule tree — the
    /// original engine. Sound and complete within the configured bounds,
    /// but exponential in the number of dependent *and independent*
    /// operations alike.
    Dfs,
    /// Sleep-set dynamic partial-order reduction: exhaustive over
    /// Mazurkiewicz traces, but backtracks only at dependent-transition
    /// points (same atomic location with at least one write, same sync
    /// object) and carries sleep sets so interleavings equivalent to an
    /// explored one are pruned instead of re-executed.
    Dpor,
    /// PCT-style randomized scheduler: every thread gets a random
    /// priority, `depth` priority-change points are sampled along the
    /// run, and the highest-priority runnable thread always runs. The
    /// PRNG is a seeded xorshift (no OS entropy), so a failing schedule
    /// is replayable from the `seed:depth` pair it prints.
    Pct {
        /// Base seed; schedule `i` derives its own seed from `(seed, i)`.
        seed: u64,
        /// Number of priority-change points per schedule (the classic
        /// PCT "d" parameter; finds bugs of depth `d`).
        depth: usize,
    },
    /// Replays exactly one PCT schedule from its printed per-schedule
    /// seed (the pair a failing [`Engine::Pct`] run reports, also
    /// accepted at runtime via the `CILKM_CHECK_SEED` env var).
    PctReplay {
        /// The per-schedule seed printed by the failing run.
        seed: u64,
        /// The `depth` the failing run used.
        depth: usize,
    },
}

impl Engine {
    /// Short stable name, used as the stats-report key.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Engine::Dfs => "dfs",
            Engine::Dpor => "dpor",
            Engine::Pct { .. } => "pct",
            Engine::PctReplay { .. } => "pct-replay",
        }
    }
}

/// Tuning knobs for one model run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Upper bound on the number of schedules explored before the run is
    /// declared (incompletely) passed.
    pub max_schedules: usize,
    /// Upper bound on visible operations in a single execution; tripping
    /// it fails the run (livelock / unbounded spin under the model).
    pub max_steps: usize,
    /// CHESS-style bound on *involuntary* context switches per
    /// execution. `None` explores every interleaving (feasible for tiny
    /// tests under [`Engine::Dfs`], and for much larger ones under
    /// [`Engine::Dpor`]). Voluntary switches (yield/park/block) are
    /// always free.
    pub preemptions: Option<usize>,
    /// Hard cap on threads per execution (model bookkeeping is O(n)).
    pub max_threads: usize,
    /// Consecutive stale reads of one location a thread may perform
    /// before the eventual-visibility rule forces it onto the newest
    /// visible store (see `op_atomic_load`). Raising it increases
    /// eventual-visibility pressure; 0 makes every load read the
    /// coherence-latest value.
    pub stale_read_bound: u32,
    /// The exploration engine to drive schedules with.
    pub engine: Engine,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 100_000,
            max_steps: 20_000,
            preemptions: Some(3),
            max_threads: 8,
            stale_read_bound: 2,
            engine: Engine::Dfs,
        }
    }
}

impl Config {
    /// The scaled-up exhaustive mode: sleep-set DPOR with the preemption
    /// bound removed (the reduction, not the bound, contains the tree).
    pub fn dpor() -> Config {
        Config {
            engine: Engine::Dpor,
            preemptions: None,
            ..Config::default()
        }
    }

    /// Seeded PCT sampling: `schedules` randomized schedules with
    /// `depth` priority-change points each, unbounded preemptions.
    pub fn pct(seed: u64, depth: usize, schedules: usize) -> Config {
        Config {
            engine: Engine::Pct { seed, depth },
            preemptions: None,
            max_schedules: schedules,
            ..Config::default()
        }
    }

    /// Replay of a single PCT schedule from its printed `seed:depth`
    /// pair.
    pub fn pct_replay(seed: u64, depth: usize) -> Config {
        Config {
            engine: Engine::PctReplay { seed, depth },
            preemptions: None,
            ..Config::default()
        }
    }
}

/// Why a model run failed, plus enough detail to replay it by hand.
#[derive(Clone, Debug)]
pub struct ModelError {
    /// Human-readable description (panic message, race report, deadlock).
    pub message: String,
    /// The decision trace of the failing schedule (choice index at each
    /// decision point), for deterministic replay while debugging.
    pub schedule: Vec<usize>,
    /// How many schedules had been explored when the failure surfaced.
    pub schedules_explored: usize,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure after {} schedule(s): {}\n  failing schedule: {:?}",
            self.schedules_explored, self.message, self.schedule
        )
    }
}

impl std::error::Error for ModelError {}

/// Summary of a passing model run.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when the schedule tree was exhausted (within the preemption
    /// bound); false when `max_schedules` cut exploration short, and
    /// always false for the sampling PCT engines.
    pub complete: bool,
    /// Sibling subtrees the DPOR engine skipped as redundant (0 for the
    /// other engines): unexplored scheduling alternatives proven
    /// equivalent to an explored interleaving, counted once per skipped
    /// branch point, not per schedule underneath it.
    pub pruned: usize,
    /// Distinct dependence classes (atomic locations written, plain
    /// locations, mutexes, condvars, park tokens) the run touched.
    pub dependence_classes: usize,
    /// Maximum visible-operation depth over all executed schedules.
    pub max_depth: usize,
}

/// The kind of visible operation a step performs, at the granularity the
/// dependence relation needs. Recorded per step so the DPOR engine can
/// decide which pairs of transitions could have changed the outcome by
/// swapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Access {
    /// Atomic load; `sc` marks SeqCst (participates in the global SC
    /// order, hence dependent with every other SC access).
    AtomicLoad {
        /// Location address.
        addr: usize,
        /// SeqCst?
        sc: bool,
    },
    /// Atomic store, RMW, or CAS (anything that may append to the store
    /// history; classified as a write conservatively).
    AtomicStore {
        /// Location address.
        addr: usize,
        /// SeqCst?
        sc: bool,
    },
    /// A fence. Non-SC fences only order the issuing thread's own
    /// accesses (which are steps themselves), so they are independent of
    /// everything; SC fences join the global SC clock.
    Fence {
        /// SeqCst?
        sc: bool,
    },
    /// Plain (non-atomic) read reported to the race detector.
    PlainRead {
        /// Location address.
        addr: usize,
    },
    /// Plain (non-atomic) write reported to the race detector.
    PlainWrite {
        /// Location address.
        addr: usize,
    },
    /// Any model-mutex operation (lock/try_lock/unlock) on one mutex.
    Mutex {
        /// Mutex address.
        addr: usize,
    },
    /// Condvar wait (atomically unlocks and relocks `mutex`).
    CondvarWait {
        /// Condvar address.
        cv: usize,
        /// The mutex released/reacquired around the wait.
        mutex: usize,
    },
    /// Condvar notify (one or all).
    CondvarNotify {
        /// Condvar address.
        cv: usize,
    },
    /// `thread::park` (the parking thread is the step's tid).
    Park,
    /// `unpark(target)`.
    Unpark {
        /// The parked-or-parking thread being woken.
        target: usize,
    },
    /// Thread spawn (dependent with other spawns: child ids are
    /// allocated in program order).
    Spawn,
    /// Join: synchronizes via blocking, independent as a transition.
    Join,
}

impl Access {
    /// True when swapping two adjacent steps with these accesses (by
    /// different threads) could change the execution's outcome. The
    /// relation is symmetric and over-approximate: marking an
    /// independent pair dependent only costs pruning, never soundness.
    pub(crate) fn dependent(a_tid: usize, a: Access, b_tid: usize, b: Access) -> bool {
        use Access::*;
        if a_tid == b_tid {
            // Program order already fixes same-thread steps.
            return false;
        }
        // Every SC access participates in the single global SC order.
        let sc_of = |x: Access| match x {
            AtomicLoad { sc, .. } | AtomicStore { sc, .. } | Fence { sc } => sc,
            _ => false,
        };
        if sc_of(a) && sc_of(b) {
            return true;
        }
        match (a, b) {
            (AtomicStore { addr: x, .. }, AtomicStore { addr: y, .. })
            | (AtomicStore { addr: x, .. }, AtomicLoad { addr: y, .. })
            | (AtomicLoad { addr: x, .. }, AtomicStore { addr: y, .. }) => x == y,
            (PlainWrite { addr: x }, PlainWrite { addr: y })
            | (PlainWrite { addr: x }, PlainRead { addr: y })
            | (PlainRead { addr: x }, PlainWrite { addr: y }) => x == y,
            (Mutex { addr: x }, Mutex { addr: y }) => x == y,
            (CondvarWait { cv: x, .. }, CondvarWait { cv: y, .. })
            | (CondvarWait { cv: x, .. }, CondvarNotify { cv: y })
            | (CondvarNotify { cv: x }, CondvarWait { cv: y, .. })
            | (CondvarNotify { cv: x }, CondvarNotify { cv: y }) => x == y,
            (CondvarWait { mutex: x, .. }, Mutex { addr: y })
            | (Mutex { addr: x }, CondvarWait { mutex: y, .. }) => x == y,
            (Park, Unpark { target }) => target == a_tid,
            (Unpark { target }, Park) => target == b_tid,
            (Unpark { target: x }, Unpark { target: y }) => x == y,
            (Spawn, Spawn) => true,
            _ => false,
        }
    }

    /// The dependence class this access belongs to, for the stats
    /// report; `None` for accesses independent of everything.
    pub(crate) fn class(self, tid: usize) -> Option<(u8, usize)> {
        use Access::*;
        match self {
            AtomicLoad { addr, .. } | AtomicStore { addr, .. } => Some((0, addr)),
            PlainRead { addr } | PlainWrite { addr } => Some((1, addr)),
            Mutex { addr } => Some((2, addr)),
            CondvarWait { cv, .. } | CondvarNotify { cv } => Some((3, cv)),
            Park => Some((4, tid)),
            Unpark { target } => Some((4, target)),
            Fence { sc: true } => Some((5, 0)),
            Spawn => Some((6, 0)),
            Fence { sc: false } | Join => None,
        }
    }
}

/// What kind of decision a recorded decision point was.
#[derive(Clone, Debug)]
pub(crate) enum DecisionKind {
    /// A yield-point scheduling decision: the DPOR-backtrackable kind.
    /// `cands` is the candidate thread per choice index.
    SchedFree {
        /// Candidate tids, in choice order (current thread first).
        cands: Vec<usize>,
    },
    /// A forced scheduling decision (the current thread blocked or
    /// finished; *someone* else must run). Explored exhaustively by
    /// every engine — wake/acquisition order is decided here.
    SchedForced,
    /// A weak-memory value decision (which store a load observes).
    /// Explored exhaustively by the exhaustive engines.
    Value,
}

/// One recorded decision of an execution.
#[derive(Clone, Debug)]
pub(crate) struct DecisionRec {
    pub(crate) kind: DecisionKind,
    pub(crate) chosen: usize,
    pub(crate) arity: usize,
}

/// One visible operation (transition) of an execution, as the DPOR
/// analysis sees it.
#[derive(Clone, Debug)]
pub(crate) struct StepRec {
    /// Executing thread.
    pub(crate) tid: usize,
    /// What the operation touches.
    pub(crate) access: Access,
    /// The thread's clock *before* the op's own synchronization joins
    /// (after the program-order bump), so `stamp_i <= clock_j[tid_i]`
    /// witnesses happens-before through intermediate steps only.
    pub(crate) clock: VClock,
    /// `clock[tid]` — this step's own timestamp.
    pub(crate) stamp: u32,
    /// Index of the [`DecisionKind::SchedFree`] decision that scheduled
    /// this op, or `usize::MAX` when it was forced/unrecorded.
    pub(crate) sched: usize,
    /// Number of decisions recorded before this step executed.
    pub(crate) ndecisions: usize,
}

/// Everything one execution leaves behind for its engine.
pub(crate) struct RunOutcome {
    pub(crate) decisions: Vec<DecisionRec>,
    pub(crate) steps: Vec<StepRec>,
    pub(crate) schedule: Vec<usize>,
    pub(crate) failure: Option<String>,
}

/// Panic payload used to tear down model threads once a failure is
/// recorded. Filtered out of the default panic hook so aborts are quiet.
pub(crate) struct ModelAbort;

/// What a thread is blocked on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    /// Waiting to acquire the model mutex at this address.
    Mutex(usize),
    /// Waiting on the model condvar at this address.
    Condvar(usize),
    /// Parked (`thread::park`) without a pending token.
    Park,
    /// Joining the given thread.
    Join(usize),
    /// Main thread draining: waiting for every spawned thread to finish.
    Drain,
}

/// Scheduler state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Currently holds the baton (at most one thread at a time).
    Active,
    /// Ready to run when scheduled.
    Runnable,
    /// Blocked until another thread wakes it.
    Blocked(Block),
    /// Body returned (or never will run again).
    Finished,
}

/// One store in a location's history.
#[derive(Clone, Debug)]
struct Store {
    /// Globally unique, monotonically increasing store id (coherence
    /// order within a location is id order).
    seq: u64,
    /// Storing thread, or `usize::MAX` for the initial value.
    tid: usize,
    /// The storing thread's own clock component at the store, used for
    /// the happens-before visibility floor.
    stamp: u32,
    /// Stored value, widened to u64.
    value: u64,
    /// Clock released by this store: the full clock for
    /// `Release`/`SeqCst` stores, the clock at the last release fence
    /// for `Relaxed` stores.
    published: VClock,
}

/// Modeled history of one atomic location.
#[derive(Default, Debug)]
struct Location {
    stores: Vec<Store>,
}

/// Epoch state of one plain (non-atomic) location for race detection.
#[derive(Default, Debug)]
struct PlainMem {
    /// Last write: (thread, that thread's clock component at the write).
    writer: Option<(usize, u32)>,
    /// Reads since the last write, as a clock.
    readers: VClock,
}

/// State of one model mutex.
#[derive(Default, Debug)]
struct MutexState {
    locked_by: Option<usize>,
    /// Clock released by the last unlock (joined on acquire).
    clock: VClock,
}

struct ThreadState {
    run: Run,
    name: String,
    /// The thread's vector clock.
    clock: VClock,
    /// Clock at the last release fence (published by Relaxed stores).
    release: VClock,
    /// Accumulated `published` clocks of relaxed-loaded stores; joined
    /// into `clock` at an acquire fence.
    fence_acq: VClock,
    /// Pending `unpark` token.
    park_token: bool,
    /// Clock handed over by the unparker (joined when park returns).
    park_clock: VClock,
    /// Set by `yield_now`: deprioritized until every non-yielded thread
    /// has moved (bounds spin-loop schedule explosion).
    yielded: bool,
    /// Per-location coherence floor: seq of the newest store this thread
    /// has read or written, per address.
    last_read: HashMap<usize, u64>,
    /// Consecutive stale (non-coherence-latest) reads per location, for
    /// the eventual-visibility bound in `op_atomic_load`.
    stale_reads: HashMap<usize, u32>,
}

/// What picks the next branch at each decision point of one execution.
pub(crate) enum Chooser {
    /// Replays a recorded decision prefix and extends it with
    /// first-choice defaults (the DFS and DPOR engines).
    Replay(Vec<usize>),
    /// Priority-based randomized scheduling (the PCT engines).
    Pct(crate::pct::PctState),
}

impl Chooser {
    /// Picks a choice index in `0..n` for decision number `idx`;
    /// `cands` holds the candidate tids for scheduling decisions.
    /// Returns the choice plus an error message on nondeterministic
    /// replay.
    fn pick(&mut self, idx: usize, n: usize, cands: Option<&[usize]>) -> (usize, Option<String>) {
        match self {
            Chooser::Replay(replay) => {
                if idx < replay.len() {
                    let c = replay[idx];
                    if c >= n {
                        // The program behaved differently on replay; that
                        // means user code consulted a source of
                        // nondeterminism outside the model (time,
                        // randomness, map iteration order).
                        (
                            0,
                            Some(format!(
                                "nondeterministic replay: decision {idx} has arity {n} but \
                                 the recorded choice was {c}; model code must not depend on \
                                 time, randomness, or hash-map iteration order"
                            )),
                        )
                    } else {
                        (c, None)
                    }
                } else {
                    (0, None)
                }
            }
            Chooser::Pct(p) => match cands {
                Some(cands) => (p.pick_sched(cands), None),
                None => (p.pick_value(n), None),
            },
        }
    }
}

pub(crate) struct ExecInner {
    threads: Vec<ThreadState>,
    /// Clock of each finished thread (joined by joiners).
    finished: Vec<Option<VClock>>,
    /// Index of the Active thread.
    active: usize,
    /// The engine-provided decision source.
    chooser: Chooser,
    /// Decisions actually taken this execution.
    decisions: Vec<DecisionRec>,
    /// Visible operations executed, in order (the DPOR trace).
    steps_log: Vec<StepRec>,
    /// Index of the last free scheduling decision whose chosen thread
    /// has not yet executed its op (consumed by the next step record).
    pending_sched: Option<usize>,
    /// Visible-op counter (livelock bound).
    steps: usize,
    /// Involuntary context switches so far.
    preemptions: usize,
    /// Atomic store histories by address.
    locations: HashMap<usize, Location>,
    /// Plain-memory race-detector state by address.
    plain: HashMap<usize, PlainMem>,
    mutexes: HashMap<usize, MutexState>,
    /// Global SeqCst clock: every SeqCst op joins with it both ways.
    sc: VClock,
    /// Store id generator.
    seq: u64,
    failure: Option<String>,
    config: Config,
}

/// One model execution shared by all its OS threads.
pub(crate) struct Exec {
    inner: OsMutex<ExecInner>,
    cv: OsCondvar,
    os_handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

type Guard<'a> = OsMutexGuard<'a, ExecInner>;

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn panic_abort() -> ! {
    panic::panic_any(ModelAbort)
}

pub(crate) fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked (non-string payload)".to_string()
    }
}

impl ExecInner {
    /// Makes (or replays) a scheduling decision among candidate threads.
    /// `free` marks yield-point decisions — the kind the DPOR engine may
    /// backtrack; forced decisions (block/finish) are explored
    /// exhaustively instead. Single-candidate decisions are not
    /// recorded.
    fn choose_sched(&mut self, cands: &[usize], free: bool) -> usize {
        debug_assert!(!cands.is_empty());
        if cands.len() == 1 {
            // No branch, nothing recorded. A *forced* handoff still
            // clears `pending_sched`: the chosen thread resumes inside
            // an op whose step was already recorded, so its next fresh
            // step must not bind to a stale free decision.
            if !free {
                self.pending_sched = None;
            }
            return 0;
        }
        let idx = self.decisions.len();
        let (chosen, err) = self.chooser.pick(idx, cands.len(), Some(cands));
        if let Some(msg) = err {
            if self.failure.is_none() {
                self.failure = Some(msg);
            }
        }
        self.decisions.push(DecisionRec {
            kind: if free {
                DecisionKind::SchedFree {
                    cands: cands.to_vec(),
                }
            } else {
                DecisionKind::SchedForced
            },
            chosen,
            arity: cands.len(),
        });
        self.pending_sched = if free { Some(idx) } else { None };
        chosen
    }

    /// Makes (or replays) a weak-memory value decision among `n`
    /// observable stores. Single-option decisions are not recorded.
    fn choose_value(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        let idx = self.decisions.len();
        let (chosen, err) = self.chooser.pick(idx, n, None);
        if let Some(msg) = err {
            if self.failure.is_none() {
                self.failure = Some(msg);
            }
        }
        self.decisions.push(DecisionRec {
            kind: DecisionKind::Value,
            chosen,
            arity: n,
        });
        chosen
    }

    /// Threads eligible to run next, from `me`'s perspective. Applies
    /// yield-exclusion and the preemption bound.
    fn candidates(&self, me: usize, me_runnable: bool) -> Vec<usize> {
        let mut c: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                matches!(t.run, Run::Active | Run::Runnable) && (me_runnable || *i != me)
            })
            .map(|(i, _)| i)
            .collect();
        // Yield-exclusion: a thread that called `yield_now` is only
        // scheduled when every candidate has yielded. This keeps
        // spin-wait loops from exploding the schedule tree.
        let non_yielded: Vec<usize> = c
            .iter()
            .copied()
            .filter(|&i| !self.threads[i].yielded)
            .collect();
        if !non_yielded.is_empty() {
            c = non_yielded;
        }
        // Preemption bound: once the budget is spent, keep running `me`
        // if it is still eligible (switching away would be involuntary).
        if let Some(b) = self.config.preemptions {
            if me_runnable && self.preemptions >= b && !self.threads[me].yielded && c.contains(&me)
            {
                c = vec![me];
            }
        }
        // Put the current thread first so choice 0 (the DFS default) is
        // "keep running": the zero-preemption schedule is explored first
        // and context switches are opt-in decisions.
        if let Some(pos) = c.iter().position(|&i| i == me) {
            c.swap(0, pos);
        }
        c
    }

    fn describe_blocked(&self) -> String {
        let mut parts = Vec::new();
        for t in &self.threads {
            if let Run::Blocked(b) = t.run {
                parts.push(format!("{} blocked on {:?}", t.name, b));
            }
        }
        parts.join("; ")
    }

    /// Ensures a history exists for `addr`, seeding it with `init` as a
    /// pre-history store visible to everyone.
    fn location(&mut self, addr: usize, init: u64) -> &mut Location {
        if !self.locations.contains_key(&addr) {
            self.seq += 1;
            self.locations.insert(
                addr,
                Location {
                    stores: vec![Store {
                        seq: self.seq,
                        tid: usize::MAX,
                        stamp: 0,
                        value: init,
                        published: VClock::default(),
                    }],
                },
            );
        }
        self.locations.get_mut(&addr).unwrap()
    }

    /// Joins the SeqCst clock both ways for thread `tid`.
    fn sc_join(&mut self, tid: usize) {
        let sc = self.sc.clone();
        self.threads[tid].clock.join(&sc);
        self.sc.join(&self.threads[tid].clock);
    }
}

impl Exec {
    pub(crate) fn new(config: Config, chooser: Chooser) -> Exec {
        let main = ThreadState {
            run: Run::Active,
            name: "main".to_string(),
            clock: VClock::default(),
            release: VClock::default(),
            fence_acq: VClock::default(),
            park_token: false,
            park_clock: VClock::default(),
            yielded: false,
            last_read: HashMap::new(),
            stale_reads: HashMap::new(),
        };
        Exec {
            inner: OsMutex::new(ExecInner {
                threads: vec![main],
                finished: vec![None],
                active: 0,
                chooser,
                decisions: Vec::new(),
                steps_log: Vec::new(),
                pending_sched: None,
                steps: 0,
                preemptions: 0,
                locations: HashMap::new(),
                plain: HashMap::new(),
                mutexes: HashMap::new(),
                sc: VClock::default(),
                seq: 0,
                failure: None,
                config,
            }),
            cv: OsCondvar::new(),
            os_handles: OsMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure (first one wins), wakes everyone, aborts the
    /// calling thread.
    fn fail(&self, mut g: Guard<'_>, msg: String) -> ! {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        self.cv.notify_all();
        drop(g);
        panic_abort()
    }

    /// The scheduling point before every visible operation: possibly
    /// hands the baton to another thread and waits for it back.
    fn yield_point(&self, tid: usize) {
        let mut g = self.lock();
        if g.failure.is_some() {
            drop(g);
            panic_abort();
        }
        debug_assert_eq!(g.active, tid, "yield_point from non-active thread");
        let cands = g.candidates(tid, true);
        debug_assert!(!cands.is_empty());
        let pick = g.choose_sched(&cands, true);
        let chosen = cands[pick];
        if chosen != tid {
            if !g.threads[tid].yielded {
                g.preemptions += 1;
            }
            g.threads[tid].run = Run::Runnable;
            g.threads[chosen].run = Run::Active;
            g.active = chosen;
            self.cv.notify_all();
            loop {
                g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                if g.failure.is_some() {
                    drop(g);
                    panic_abort();
                }
                if g.active == tid && g.threads[tid].run == Run::Active {
                    break;
                }
            }
        }
        g.threads[tid].yielded = false;
    }

    /// Marks `tid` blocked, schedules someone else, and waits until a
    /// wake + reschedule makes `tid` active again.
    fn block_on<'a>(&'a self, mut g: Guard<'a>, tid: usize, why: Block) -> Guard<'a> {
        g.threads[tid].run = Run::Blocked(why);
        let cands = g.candidates(tid, false);
        if cands.is_empty() {
            // Everyone is blocked or finished: with at least `tid`
            // blocked this is a deadlock (lost wakeups land here, since
            // park-timeouts are modeled as parking forever).
            let msg = format!("deadlock: {}", g.describe_blocked());
            self.fail(g, msg);
        }
        let pick = g.choose_sched(&cands, false);
        let chosen = cands[pick];
        g.threads[chosen].run = Run::Active;
        g.active = chosen;
        self.cv.notify_all();
        loop {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            if g.failure.is_some() {
                drop(g);
                panic_abort();
            }
            if g.active == tid && g.threads[tid].run == Run::Active {
                break;
            }
        }
        g
    }

    /// Entry point of every visible op: yield, then bump clocks/step
    /// counters and record the transition under the lock.
    fn prologue(&self, tid: usize, access: Access) -> Guard<'_> {
        self.yield_point(tid);
        let mut g = self.lock();
        if g.failure.is_some() {
            drop(g);
            panic_abort();
        }
        g.steps += 1;
        if g.steps > g.config.max_steps {
            let max = g.config.max_steps;
            self.fail(
                g,
                format!(
                    "livelock: execution exceeded {max} visible operations; \
                     a spin loop is likely waiting on a modeled condition \
                     (use yield_now in spins, or raise Config::max_steps)"
                ),
            );
        }
        g.threads[tid].clock.bump(tid);
        // PCT priority-change points count executed transitions.
        if let Chooser::Pct(p) = &mut g.chooser {
            p.on_step(tid);
        }
        let clock = g.threads[tid].clock.clone();
        let stamp = clock.get(tid);
        let sched = g.pending_sched.take().unwrap_or(usize::MAX);
        let ndecisions = g.decisions.len();
        g.steps_log.push(StepRec {
            tid,
            access,
            clock,
            stamp,
            sched,
            ndecisions,
        });
        g
    }

    // ---- atomics ------------------------------------------------------

    pub(crate) fn op_atomic_load(&self, tid: usize, addr: usize, ord: Ordering, init: u64) -> u64 {
        let mut g = self.prologue(
            tid,
            Access::AtomicLoad {
                addr,
                sc: ord == Ordering::SeqCst,
            },
        );
        if ord == Ordering::SeqCst {
            g.sc_join(tid);
        }
        g.location(addr, init);
        // Visibility floor: the newest store that happens-before this
        // load, and anything older than a store this thread already
        // observed (per-location coherence).
        let clock = g.threads[tid].clock.clone();
        let loc = &g.locations[&addr];
        let floor_hb = loc
            .stores
            .iter()
            .filter(|s| s.tid == usize::MAX || s.stamp <= clock.get(s.tid))
            .map(|s| s.seq)
            .max()
            .expect("location has an initial store");
        let floor = floor_hb.max(g.threads[tid].last_read.get(&addr).copied().unwrap_or(0));
        let mut cands: Vec<Store> = loc
            .stores
            .iter()
            .filter(|s| s.seq >= floor)
            .cloned()
            .collect();
        // Newest first, so choice 0 (the replay default) reads the
        // coherence-latest value and staleness is opt-in per schedule.
        cands.sort_by_key(|s| std::cmp::Reverse(s.seq));
        // Eventual visibility: C11 alone lets a load re-read the same
        // stale store unboundedly, which turns every polling loop into a
        // fake livelock under exhaustive exploration. Hardware propagates
        // stores in finite time, so after `Config::stale_read_bound`
        // consecutive stale reads of a location the thread is forced
        // onto the newest visible store. Single stale observations — the
        // shape of real fence-omission bugs like the PR 1 lost wakeup —
        // stay explored.
        let newest = cands[0].seq;
        if cands.len() > 1
            && g.threads[tid].stale_reads.get(&addr).copied().unwrap_or(0)
                >= g.config.stale_read_bound
        {
            cands.truncate(1);
        }
        let pick = g.choose_value(cands.len());
        let st = cands.swap_remove(pick);
        if st.seq < newest {
            *g.threads[tid].stale_reads.entry(addr).or_insert(0) += 1;
        } else {
            g.threads[tid].stale_reads.remove(&addr);
        }
        g.threads[tid].last_read.insert(addr, st.seq);
        if is_acquire(ord) {
            g.threads[tid].clock.join(&st.published);
        } else {
            g.threads[tid].fence_acq.join(&st.published);
        }
        st.value
    }

    pub(crate) fn op_atomic_store(
        &self,
        tid: usize,
        addr: usize,
        ord: Ordering,
        init: u64,
        val: u64,
    ) {
        let mut g = self.prologue(
            tid,
            Access::AtomicStore {
                addr,
                sc: ord == Ordering::SeqCst,
            },
        );
        if ord == Ordering::SeqCst {
            g.sc_join(tid);
        }
        g.location(addr, init);
        g.seq += 1;
        let seq = g.seq;
        let t = &g.threads[tid];
        let published = if is_release(ord) {
            t.clock.clone()
        } else {
            t.release.clone()
        };
        let store = Store {
            seq,
            tid,
            stamp: t.clock.get(tid),
            value: val,
            published,
        };
        g.locations.get_mut(&addr).unwrap().stores.push(store);
        g.threads[tid].last_read.insert(addr, seq);
    }

    /// Read-modify-write: always reads the coherence-latest store
    /// (atomicity guarantees RMWs never act on stale values).
    pub(crate) fn op_atomic_rmw(
        &self,
        tid: usize,
        addr: usize,
        ord: Ordering,
        init: u64,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> u64 {
        let mut g = self.prologue(
            tid,
            Access::AtomicStore {
                addr,
                sc: ord == Ordering::SeqCst,
            },
        );
        if ord == Ordering::SeqCst {
            g.sc_join(tid);
        }
        g.location(addr, init);
        let last = g.locations[&addr].stores.last().unwrap().clone();
        if is_acquire(ord) {
            g.threads[tid].clock.join(&last.published);
        } else {
            g.threads[tid].fence_acq.join(&last.published);
        }
        let newv = f(last.value);
        g.seq += 1;
        let seq = g.seq;
        let t = &g.threads[tid];
        let published = if is_release(ord) {
            t.clock.clone()
        } else {
            t.release.clone()
        };
        let store = Store {
            seq,
            tid,
            stamp: t.clock.get(tid),
            value: newv,
            published,
        };
        g.locations.get_mut(&addr).unwrap().stores.push(store);
        g.threads[tid].last_read.insert(addr, seq);
        last.value
    }

    /// Strong compare-exchange (`compare_exchange_weak` maps here too:
    /// spurious failure is a scheduling artifact the model need not add).
    #[allow(clippy::too_many_arguments)] // mirrors `compare_exchange`'s shape
    pub(crate) fn op_atomic_cas(
        &self,
        tid: usize,
        addr: usize,
        success: Ordering,
        failure: Ordering,
        init: u64,
        expected: u64,
        new: u64,
    ) -> Result<u64, u64> {
        let mut g = self.prologue(
            tid,
            Access::AtomicStore {
                addr,
                sc: success == Ordering::SeqCst || failure == Ordering::SeqCst,
            },
        );
        if success == Ordering::SeqCst || failure == Ordering::SeqCst {
            g.sc_join(tid);
        }
        g.location(addr, init);
        let last = g.locations[&addr].stores.last().unwrap().clone();
        if last.value == expected {
            if is_acquire(success) {
                g.threads[tid].clock.join(&last.published);
            } else {
                g.threads[tid].fence_acq.join(&last.published);
            }
            g.seq += 1;
            let seq = g.seq;
            let t = &g.threads[tid];
            let published = if is_release(success) {
                t.clock.clone()
            } else {
                t.release.clone()
            };
            let store = Store {
                seq,
                tid,
                stamp: t.clock.get(tid),
                value: new,
                published,
            };
            g.locations.get_mut(&addr).unwrap().stores.push(store);
            g.threads[tid].last_read.insert(addr, seq);
            Ok(last.value)
        } else {
            if is_acquire(failure) {
                g.threads[tid].clock.join(&last.published);
            } else {
                g.threads[tid].fence_acq.join(&last.published);
            }
            g.threads[tid].last_read.insert(addr, last.seq);
            Err(last.value)
        }
    }

    pub(crate) fn op_fence(&self, tid: usize, ord: Ordering) {
        let mut g = self.prologue(
            tid,
            Access::Fence {
                sc: ord == Ordering::SeqCst,
            },
        );
        if is_acquire(ord) {
            let fa = g.threads[tid].fence_acq.clone();
            g.threads[tid].clock.join(&fa);
        }
        if ord == Ordering::SeqCst {
            g.sc_join(tid);
        }
        if is_release(ord) {
            g.threads[tid].release = g.threads[tid].clock.clone();
        }
    }

    // ---- plain memory (race detector) ---------------------------------

    pub(crate) fn op_plain_read(&self, tid: usize, addr: usize, what: &str) {
        let mut g = self.prologue(tid, Access::PlainRead { addr });
        let clock = g.threads[tid].clock.clone();
        let writer = g.plain.get(&addr).and_then(|m| m.writer);
        if let Some((wt, ws)) = writer {
            if wt != tid && ws > clock.get(wt) {
                let name = g.threads[tid].name.clone();
                let other = g.threads[wt].name.clone();
                self.fail(
                    g,
                    format!(
                        "data race on {what} (addr {addr:#x}): read by {name} is \
                         concurrent with a write by {other}"
                    ),
                );
            }
        }
        let stamp = clock.get(tid);
        g.plain
            .entry(addr)
            .or_default()
            .readers
            .set_at_least(tid, stamp);
    }

    pub(crate) fn op_plain_write(&self, tid: usize, addr: usize, what: &str) {
        let mut g = self.prologue(tid, Access::PlainWrite { addr });
        let clock = g.threads[tid].clock.clone();
        let writer = g.plain.get(&addr).and_then(|m| m.writer);
        if let Some((wt, ws)) = writer {
            if wt != tid && ws > clock.get(wt) {
                let name = g.threads[tid].name.clone();
                let other = g.threads[wt].name.clone();
                self.fail(
                    g,
                    format!(
                        "data race on {what} (addr {addr:#x}): write by {name} is \
                         concurrent with a write by {other}"
                    ),
                );
            }
        }
        let readers_ordered = g
            .plain
            .get(&addr)
            .map(|m| m.readers.le(&clock))
            .unwrap_or(true);
        if !readers_ordered {
            let name = g.threads[tid].name.clone();
            self.fail(
                g,
                format!(
                    "data race on {what} (addr {addr:#x}): write by {name} is \
                     concurrent with an earlier read"
                ),
            );
        }
        let m = g.plain.entry(addr).or_default();
        m.writer = Some((tid, clock.get(tid)));
        // Reads before this write happen-before it; future conflicts are
        // caught against the write itself (FastTrack-style reset).
        m.readers = VClock::default();
    }

    // ---- mutex / condvar ----------------------------------------------

    pub(crate) fn op_mutex_lock(&self, tid: usize, addr: usize) {
        let mut g = self.prologue(tid, Access::Mutex { addr });
        loop {
            let m = g.mutexes.entry(addr).or_default();
            match m.locked_by {
                None => {
                    m.locked_by = Some(tid);
                    let mc = m.clock.clone();
                    g.threads[tid].clock.join(&mc);
                    return;
                }
                Some(owner) if owner == tid => {
                    let name = g.threads[tid].name.clone();
                    self.fail(g, format!("recursive lock of model Mutex by {name}"));
                }
                Some(_) => {
                    g = self.block_on(g, tid, Block::Mutex(addr));
                }
            }
        }
    }

    pub(crate) fn op_mutex_try_lock(&self, tid: usize, addr: usize) -> bool {
        let mut g = self.prologue(tid, Access::Mutex { addr });
        let m = g.mutexes.entry(addr).or_default();
        if m.locked_by.is_none() {
            m.locked_by = Some(tid);
            let mc = m.clock.clone();
            g.threads[tid].clock.join(&mc);
            true
        } else {
            false
        }
    }

    pub(crate) fn op_mutex_unlock(&self, tid: usize, addr: usize) {
        let mut g = self.prologue(tid, Access::Mutex { addr });
        self.unlock_inner(&mut g, tid, addr);
    }

    fn unlock_inner(&self, g: &mut Guard<'_>, tid: usize, addr: usize) {
        let clock = g.threads[tid].clock.clone();
        let m = g.mutexes.entry(addr).or_default();
        debug_assert_eq!(m.locked_by, Some(tid), "unlock of mutex not held");
        m.locked_by = None;
        m.clock.join(&clock);
        for t in g.threads.iter_mut() {
            if t.run == Run::Blocked(Block::Mutex(addr)) {
                t.run = Run::Runnable;
            }
        }
    }

    /// Condvar wait: atomically releases the mutex, blocks until
    /// notified, then reacquires.
    pub(crate) fn op_condvar_wait(&self, tid: usize, cv_addr: usize, mutex_addr: usize) {
        let mut g = self.prologue(
            tid,
            Access::CondvarWait {
                cv: cv_addr,
                mutex: mutex_addr,
            },
        );
        self.unlock_inner(&mut g, tid, mutex_addr);
        g = self.block_on(g, tid, Block::Condvar(cv_addr));
        // Reacquire (possibly blocking again on Mutex).
        loop {
            let m = g.mutexes.entry(mutex_addr).or_default();
            if m.locked_by.is_none() {
                m.locked_by = Some(tid);
                let mc = m.clock.clone();
                g.threads[tid].clock.join(&mc);
                return;
            }
            g = self.block_on(g, tid, Block::Mutex(mutex_addr));
        }
    }

    pub(crate) fn op_condvar_notify(&self, tid: usize, cv_addr: usize, all: bool) {
        let mut g = self.prologue(tid, Access::CondvarNotify { cv: cv_addr });
        let clock = g.threads[tid].clock.clone();
        // Waiters resynchronize through the mutex they reacquire, but the
        // notify edge itself also transfers the notifier's clock.
        for t in g.threads.iter_mut() {
            if t.run == Run::Blocked(Block::Condvar(cv_addr)) {
                t.run = Run::Runnable;
                t.clock.join(&clock);
                if !all {
                    break;
                }
            }
        }
    }

    // ---- park / unpark -------------------------------------------------

    /// `thread::park` (and `park_timeout`: the model parks forever, so a
    /// lost wakeup becomes a detectable deadlock instead of a silent
    /// 10ms stall).
    pub(crate) fn op_park(&self, tid: usize) {
        let mut g = self.prologue(tid, Access::Park);
        if !g.threads[tid].park_token {
            g = self.block_on(g, tid, Block::Park);
        }
        let t = &mut g.threads[tid];
        t.park_token = false;
        let pc = t.park_clock.clone();
        t.clock.join(&pc);
    }

    pub(crate) fn op_unpark(&self, tid: usize, target: usize) {
        let mut g = self.prologue(tid, Access::Unpark { target });
        let clock = g.threads[tid].clock.clone();
        let t = &mut g.threads[target];
        t.park_clock.join(&clock);
        if t.run == Run::Blocked(Block::Park) {
            t.run = Run::Runnable;
        } else {
            t.park_token = true;
        }
    }

    /// `yield_now`: a voluntary reschedule that also deprioritizes the
    /// caller until other threads have run (see `candidates`).
    pub(crate) fn op_yield(&self, tid: usize) {
        {
            let mut g = self.lock();
            if g.failure.is_some() {
                drop(g);
                panic_abort();
            }
            g.steps += 1;
            if g.steps > g.config.max_steps {
                let max = g.config.max_steps;
                self.fail(
                    g,
                    format!("livelock: execution exceeded {max} visible operations"),
                );
            }
            g.threads[tid].yielded = true;
        }
        self.yield_point(tid);
    }

    // ---- spawn / join / finish ----------------------------------------

    /// Allocates a child thread id (the caller then spawns the OS
    /// thread). The spawn edge transfers the parent's clock.
    pub(crate) fn op_spawn(&self, tid: usize) -> usize {
        let mut g = self.prologue(tid, Access::Spawn);
        if g.threads.len() >= g.config.max_threads {
            let max = g.config.max_threads;
            self.fail(g, format!("model thread limit exceeded ({max})"));
        }
        let child = g.threads.len();
        let clock = g.threads[tid].clock.clone();
        g.threads.push(ThreadState {
            run: Run::Runnable,
            name: format!("thread-{child}"),
            clock,
            // No release fence yet: the child's relaxed stores publish
            // nothing until it performs one (C11 semantics).
            release: VClock::default(),
            fence_acq: VClock::default(),
            park_token: false,
            park_clock: VClock::default(),
            yielded: false,
            last_read: HashMap::new(),
            stale_reads: HashMap::new(),
        });
        g.finished.push(None);
        // PCT assigns each thread a random high priority at spawn.
        if let Chooser::Pct(p) = &mut g.chooser {
            p.on_spawn(child);
        }
        child
    }

    /// First wait of a freshly spawned OS thread, before it may run.
    pub(crate) fn wait_for_turn(&self, tid: usize) {
        let mut g = self.lock();
        loop {
            if g.failure.is_some() {
                drop(g);
                panic_abort();
            }
            if g.active == tid && g.threads[tid].run == Run::Active {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn op_join(&self, tid: usize, target: usize) {
        let mut g = self.prologue(tid, Access::Join);
        while g.threads[target].run != Run::Finished {
            g = self.block_on(g, tid, Block::Join(target));
        }
        let fc = g.finished[target]
            .clone()
            .expect("finished thread has clock");
        g.threads[tid].clock.join(&fc);
    }

    /// Called by a model thread when its body returns or panics. Wakes
    /// joiners/drainers and hands the baton onward.
    pub(crate) fn finish_thread(&self, tid: usize, panicked: Option<String>) {
        let mut g = self.lock();
        g.threads[tid].run = Run::Finished;
        let clock = g.threads[tid].clock.clone();
        g.finished[tid] = Some(clock);
        if let Some(msg) = panicked {
            if g.failure.is_none() {
                let name = g.threads[tid].name.clone();
                g.failure = Some(format!("{name} panicked: {msg}"));
            }
            self.cv.notify_all();
            return;
        }
        if g.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        for t in g.threads.iter_mut() {
            if t.run == Run::Blocked(Block::Join(tid)) || t.run == Run::Blocked(Block::Drain) {
                t.run = Run::Runnable;
            }
        }
        let cands = g.candidates(tid, false);
        if cands.is_empty() {
            if g.threads.iter().any(|t| matches!(t.run, Run::Blocked(_))) {
                let msg = format!("deadlock: {}", g.describe_blocked());
                if g.failure.is_none() {
                    g.failure = Some(msg);
                }
            }
            // else: every thread finished; nothing left to schedule.
        } else {
            let pick = g.choose_sched(&cands, false);
            let chosen = cands[pick];
            g.threads[chosen].run = Run::Active;
            g.active = chosen;
        }
        self.cv.notify_all();
    }

    /// Main-thread epilogue: waits until every spawned thread finished,
    /// so leaked (never-joined) threads still run to completion and
    /// deadlocked ones are reported.
    pub(crate) fn drain_main(&self) {
        let mut g = self.lock();
        loop {
            if g.failure.is_some() {
                drop(g);
                panic_abort();
            }
            if g.threads.iter().skip(1).all(|t| t.run == Run::Finished) {
                return;
            }
            g = self.block_on(g, 0, Block::Drain);
        }
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    fn join_os_threads(&self) {
        let handles: Vec<_> = self
            .os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Records a panic escaping the user closure on the main thread.
    fn record_main_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let mut g = self.lock();
        if payload.downcast_ref::<ModelAbort>().is_none() && g.failure.is_none() {
            g.failure = Some(format!("main panicked: {}", payload_msg(payload)));
        }
        self.cv.notify_all();
    }
}

// ---- current-model TLS -------------------------------------------------

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The (execution, thread-id) pair of the calling thread, if it is a
/// model thread.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Exec>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// True when called from inside a model execution. Gates the
/// instrumentation shims' fallback paths.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

// ---- panic-hook filter --------------------------------------------------

static HOOK: Once = Once::new();

fn install_panic_filter() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

// ---- schedule enumeration ----------------------------------------------

/// Computes the next replay prefix: backtracks the deepest decision with
/// an unexplored alternative. Returns `None` when the tree is exhausted.
fn next_replay(trace: &[DecisionRec]) -> Option<Vec<usize>> {
    for (i, d) in trace.iter().enumerate().rev() {
        if d.chosen + 1 < d.arity {
            let mut replay: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
            replay.push(d.chosen + 1);
            return Some(replay);
        }
    }
    None
}

/// Runs one execution of `f` under `chooser` and collects what the
/// engine needs: the decision trace, the step log, and any failure.
pub(crate) fn run_one<F>(config: &Config, chooser: Chooser, f: &F) -> RunOutcome
where
    F: Fn() + Sync,
{
    let exec = Arc::new(Exec::new(config.clone(), chooser));
    set_current(Some((exec.clone(), 0)));
    let body = panic::catch_unwind(AssertUnwindSafe(f));
    match body {
        Ok(()) => {
            // Let remaining threads run; catches deadlocks among them.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| exec.drain_main()));
        }
        Err(p) => exec.record_main_panic(p.as_ref()),
    }
    set_current(None);
    exec.join_os_threads();
    let mut g = exec.lock();
    RunOutcome {
        schedule: g.decisions.iter().map(|d| d.chosen).collect(),
        decisions: std::mem::take(&mut g.decisions),
        steps: std::mem::take(&mut g.steps_log),
        failure: g.failure.take(),
    }
}

/// The original engine: exhaustive DFS over the decision tree.
fn dfs_explore<F>(config: &Config, f: &F, acc: &mut crate::stats::Acc) -> Result<Report, ModelError>
where
    F: Fn() + Sync,
{
    let mut replay: Vec<usize> = Vec::new();
    let mut complete = true;
    loop {
        if acc.schedules >= config.max_schedules {
            complete = false;
            break;
        }
        acc.schedules += 1;
        let out = run_one(config, Chooser::Replay(replay.clone()), f);
        acc.absorb(&out);
        if let Some(msg) = out.failure {
            return Err(ModelError {
                message: msg,
                schedule: out.schedule,
                schedules_explored: acc.schedules,
            });
        }
        match next_replay(&out.decisions) {
            Some(r) => replay = r,
            None => break,
        }
    }
    Ok(acc.report(complete))
}

// ---- public entry points ------------------------------------------------

/// Runs `f` under the model with `config`, returning a [`Report`] or the
/// first failing schedule.
pub fn try_model_with<F>(config: Config, f: F) -> Result<Report, ModelError>
where
    F: Fn() + Sync,
{
    assert!(
        current().is_none(),
        "model() must not be nested inside a model execution"
    );
    install_panic_filter();
    let engine = config.engine.name();
    let mut acc = crate::stats::Acc::default();
    let result = match config.engine {
        Engine::Dfs => dfs_explore(&config, &f, &mut acc),
        Engine::Dpor => crate::dpor::explore(&config, &f, &mut acc),
        Engine::Pct { .. } | Engine::PctReplay { .. } => crate::pct::explore(&config, &f, &mut acc),
    };
    crate::stats::record(engine, &acc, &result);
    result
}

/// [`try_model_with`] with the default [`Config`].
pub fn try_model<F>(f: F) -> Result<Report, ModelError>
where
    F: Fn() + Sync,
{
    try_model_with(Config::default(), f)
}

/// Runs `f` under the model and panics with a replayable report on any
/// failure. The usual entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Sync,
{
    if let Err(e) = try_model(f) {
        panic!("{e}");
    }
}

/// [`model`] with an explicit [`Config`].
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Sync,
{
    if let Err(e) = try_model_with(config, f) {
        panic!("{e}");
    }
}
