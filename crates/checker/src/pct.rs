//! PCT-style randomized schedule sampling.
//!
//! Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010)
//! replaces exhaustive enumeration with randomized *priority* schedules:
//! every thread gets a distinct random priority, `d` priority-change
//! points are sampled along the run, and at every scheduling point the
//! highest-priority runnable thread runs. A bug of preemption depth `d`
//! is found with probability ≥ 1/(n·k^(d-1)) per schedule, independent
//! of how deep the exhaustive engines could reach.
//!
//! All randomness comes from a seeded xorshift64* PRNG — no OS entropy —
//! so schedule `i` of a run is a pure function of `(base_seed, i, d)`.
//! A failing run prints its per-schedule seed as a `seed:depth` pair;
//! `Config::pct_replay` (or the `CILKM_CHECK_SEED` env var) re-runs
//! exactly that schedule.

use crate::exec::{run_one, Chooser, Config, Engine, ModelError, Report};
use crate::stats::Acc;

/// Priority-change points are sampled uniformly from `1..=PCT_EST_LEN`
/// steps. A fixed horizon keeps a schedule a pure function of its seed
/// (an adaptive estimate would make replay depend on run history);
/// points past the actual execution length simply never fire. Model
/// tests in this tree run a few dozen to a few hundred visible ops, so
/// 256 covers them with slack.
const PCT_EST_LEN: u64 = 256;

/// Priorities at or above this are "high" (initial, random); change
/// points assign strictly decreasing priorities below it.
const HIGH_BASE: u64 = 1 << 32;

/// xorshift64* — tiny, seedable, decent equidistribution; exactly the
/// "no OS entropy" PRNG the replay contract needs.
#[derive(Clone, Debug)]
pub(crate) struct XorShift64 {
    s: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            // xorshift has a single absorbing zero state.
            s: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant at these
    /// ranges).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// splitmix64-style mix: derives schedule `i`'s seed from the base seed.
fn mix(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-schedule scheduler state: priorities, change points, PRNG.
#[derive(Clone, Debug)]
pub(crate) struct PctState {
    rng: XorShift64,
    /// Priority per thread id; higher runs first, ties break to the
    /// lower tid.
    prio: Vec<u64>,
    /// Step counts at which the then-active thread's priority drops.
    change_points: Vec<u64>,
    /// Next "low" priority to hand out (strictly decreasing, all below
    /// `HIGH_BASE`, so a changed thread ranks below every unchanged one
    /// and below previously-changed ones).
    next_low: u64,
    steps_seen: u64,
}

impl PctState {
    pub(crate) fn new(seed: u64, depth: usize) -> PctState {
        let mut rng = XorShift64::new(seed);
        let change_points: Vec<u64> = (0..depth).map(|_| 1 + rng.below(PCT_EST_LEN)).collect();
        let main_prio = HIGH_BASE + rng.below(HIGH_BASE);
        PctState {
            rng,
            prio: vec![main_prio],
            change_points,
            next_low: depth as u64 + 1,
            steps_seen: 0,
        }
    }

    fn ensure(&mut self, tid: usize) {
        while self.prio.len() <= tid {
            let p = HIGH_BASE + self.rng.below(HIGH_BASE);
            self.prio.push(p);
        }
    }

    /// Called when thread `child` is created.
    pub(crate) fn on_spawn(&mut self, child: usize) {
        self.ensure(child);
    }

    /// Called once per executed visible operation; fires any change
    /// point scheduled for this step by demoting the executing thread.
    pub(crate) fn on_step(&mut self, tid: usize) {
        self.steps_seen += 1;
        if let Some(pos) = self
            .change_points
            .iter()
            .position(|&p| p == self.steps_seen)
        {
            self.change_points.swap_remove(pos);
            self.ensure(tid);
            self.next_low -= 1;
            self.prio[tid] = self.next_low;
        }
    }

    /// Scheduling decision: the highest-priority candidate runs.
    pub(crate) fn pick_sched(&mut self, cands: &[usize]) -> usize {
        if let Some(&max) = cands.iter().max() {
            self.ensure(max);
        }
        let mut best = 0;
        for (i, &t) in cands.iter().enumerate() {
            let better = self.prio[t] > self.prio[cands[best]]
                || (self.prio[t] == self.prio[cands[best]] && t < cands[best]);
            if i > 0 && better {
                best = i;
            }
        }
        best
    }

    /// Weak-memory value decision: uniform over the legal stores.
    pub(crate) fn pick_value(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }
}

/// Parses a `seed:depth` replay pair (the format failing runs print).
fn parse_replay_pair(s: &str) -> Option<(u64, usize)> {
    let (seed, depth) = s.split_once(':')?;
    Some((seed.trim().parse().ok()?, depth.trim().parse().ok()?))
}

/// The PCT engine entry point: samples `config.max_schedules` seeded
/// schedules (or replays exactly one for [`Engine::PctReplay`] / the
/// `CILKM_CHECK_SEED` env var).
pub(crate) fn explore<F>(config: &Config, f: &F, acc: &mut Acc) -> Result<Report, ModelError>
where
    F: Fn() + Sync,
{
    let (base_seed, depth, single) = match config.engine {
        Engine::Pct { seed, depth } => match std::env::var("CILKM_CHECK_SEED") {
            Ok(v) => {
                let (s, d) = parse_replay_pair(&v)
                    .unwrap_or_else(|| panic!("CILKM_CHECK_SEED must be `seed:depth`, got {v:?}"));
                (s, d, true)
            }
            Err(_) => (seed, depth, false),
        },
        Engine::PctReplay { seed, depth } => (seed, depth, true),
        _ => unreachable!("pct::explore dispatched for a non-PCT engine"),
    };
    let total = if single { 1 } else { config.max_schedules };
    for i in 0..total {
        let sched_seed = if single {
            base_seed
        } else {
            mix(base_seed, i as u64)
        };
        acc.schedules += 1;
        let out = run_one(config, Chooser::Pct(PctState::new(sched_seed, depth)), f);
        acc.absorb(&out);
        if let Some(msg) = out.failure {
            return Err(ModelError {
                message: format!("{msg}\n  pct replay: CILKM_CHECK_SEED={sched_seed}:{depth}"),
                schedule: out.schedule,
                schedules_explored: acc.schedules,
            });
        }
    }
    // Sampling never proves exhaustion.
    Ok(acc.report(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0);
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next(), 0, "zero seed must be remapped");
    }

    #[test]
    fn mix_spreads_indices() {
        let a = mix(7, 0);
        let b = mix(7, 1);
        let c = mix(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn change_point_demotes_below_everyone() {
        let mut p = PctState::new(1, 1);
        p.on_spawn(1);
        let point = p.change_points[0];
        for _ in 0..point {
            p.on_step(0);
        }
        assert!(p.change_points.is_empty(), "change point must fire");
        assert!(p.prio[0] < HIGH_BASE, "demoted below every high priority");
        // Thread 1 now outranks thread 0.
        assert_eq!(p.pick_sched(&[0, 1]), 1);
    }

    #[test]
    fn replay_pair_parses() {
        assert_eq!(parse_replay_pair("123:4"), Some((123, 4)));
        assert_eq!(parse_replay_pair("nope"), None);
        assert_eq!(parse_replay_pair("1:x"), None);
    }
}
