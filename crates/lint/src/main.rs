//! The `cilkm-lint` command-line front end.
//!
//! ```text
//! cargo run -p cilkm-lint -- --workspace [--root DIR] [--json PATH] [--regen-ledger] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (or only waived findings), `1` unwaived
//! findings, `2` usage or I/O error. CI runs
//! `--workspace --json bench_out/lint_report.json` and archives the
//! report; `--regen-ledger` rewrites `UNSAFE_LEDGER.md` after the set
//! of unsafe contracts legitimately changed.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut regen_ledger = false;
    let mut workspace = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--regen-ledger" => regen_ledger = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace (the only supported mode)");
    }

    // When regenerating, the ledger diff is checked against what we are
    // about to write, i.e. skipped.
    let outcome = match cilkm_lint::run_workspace(&root, !regen_ledger) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cilkm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if regen_ledger {
        let path = root.join("UNSAFE_LEDGER.md");
        if let Err(e) = std::fs::write(&path, &outcome.ledger) {
            eprintln!("cilkm-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !quiet {
            eprintln!("cilkm-lint: regenerated {}", path.display());
        }
    }

    if let Some(path) = &json_out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, outcome.report.to_json()) {
            eprintln!("cilkm-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unwaived: Vec<_> = outcome.report.unwaived().collect();
    if !quiet {
        for f in &outcome.report.findings {
            match &f.waived {
                None => eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message),
                Some(reason) => eprintln!(
                    "{}:{}: [{}] waived ({reason}): {}",
                    f.file,
                    f.line,
                    f.rule.name(),
                    f.message
                ),
            }
        }
        eprintln!(
            "cilkm-lint: {} files scanned, {} finding(s), {} unwaived",
            outcome.files_scanned,
            outcome.report.findings.len(),
            unwaived.len()
        );
    }

    if unwaived.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("cilkm-lint: {err}");
    }
    eprintln!(
        "usage: cilkm-lint --workspace [--root DIR] [--json PATH] [--regen-ledger] [--quiet]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
