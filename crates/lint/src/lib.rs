//! `cilkm-lint` — the in-tree project-invariant analyzer.
//!
//! The model checker (`crates/checker`) can verify any protocol it is
//! pointed at; the tracer (`crates/obs`) can measure any path it is
//! wired into. What neither can do is notice the code that *bypasses*
//! them: a new `std::sync::atomic` import that sidesteps the `msync`
//! facade, an allocation creeping into the ~3-L1-access reducer lookup
//! the paper's performance argument rests on (§5), a typo'd
//! `cfg(feature = "trce")` that compiles a debug invariant to nothing,
//! or an `unsafe impl Send` whose justification nobody wrote down.
//! Those are *project invariants* — true of this codebase by policy,
//! not expressible in the type system — and this crate lints them on
//! every CI run ("lint the invariants you can't type-check", after
//! loom's facade discipline and rayon's raw-deque hygiene).
//!
//! Zero dependencies, like `cilkm-checker` and `cilkm-obs`: a
//! hand-rolled token-level lexer ([`lexer`]) that understands strings,
//! comments, attributes, and `cfg` expressions (no `syn`), a sliver of
//! manifest parsing ([`manifest`]), six rule families ([`rules`]), and
//! a deterministic JSON report ([`report`]). The binary front end is
//! `cargo run -p cilkm-lint -- --workspace`; see DESIGN.md §12 for the
//! rule catalogue and waiver syntax.

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;

use std::path::Path;

use manifest::{Crate, Workspace};
use report::Report;
use rules::unsafe_ledger::LedgerEntry;
use rules::FileContext;

/// The outcome of a full lint run.
pub struct Outcome {
    /// All findings, stable-sorted, waivers applied.
    pub report: Report,
    /// The freshly rendered `UNSAFE_LEDGER.md` content.
    pub ledger: String,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints the workspace rooted at `root`.
///
/// `checked_in_ledger` is the current content of `UNSAFE_LEDGER.md`
/// (`None` if absent); pass `None` for `ledger_check` behaviour when
/// regenerating (the caller then writes [`Outcome::ledger`] out and the
/// diff is vacuous).
pub fn run_workspace(root: &Path, check_ledger: bool) -> Result<Outcome, String> {
    let ws = Workspace::discover(root)?;
    let mut report = Report::default();
    rules::cfgcheck::check_declared_consistency(&ws.crates, &mut report);

    let mut ledger_entries: Vec<LedgerEntry> = Vec::new();
    let mut files_scanned = 0usize;
    for (krate, rel) in ws.files() {
        let path_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {path_str}: {e}"))?;
        scan_file(&path_str, &src, krate, &mut report, &mut ledger_entries);
        files_scanned += 1;
    }

    let ledger = rules::unsafe_ledger::render(&ledger_entries);
    if check_ledger {
        let checked_in = std::fs::read_to_string(root.join("UNSAFE_LEDGER.md")).ok();
        rules::unsafe_ledger::diff_against_checked_in(&ledger, checked_in.as_deref(), &mut report);
    }

    report.sort();
    Ok(Outcome {
        report,
        ledger,
        files_scanned,
    })
}

/// Runs every per-file rule over one source text. Exposed so fixture
/// tests can drive single files without a workspace.
pub fn scan_file(
    path: &str,
    src: &str,
    krate: &Crate,
    report: &mut Report,
    ledger: &mut Vec<LedgerEntry>,
) {
    let lexed = lexer::lex(src);
    let ctx = FileContext::new(path, &lexed, report);
    rules::facade::check(&ctx, report);
    rules::hotpath::check(&ctx, report);
    rules::cfgcheck::check(&ctx, krate, report);
    rules::unsafe_ledger::check(&ctx, report, ledger);
    rules::bounded::check(&ctx, report);
    rules::sanhook::check(&ctx, krate, report);
    ctx.flag_unused_waivers(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn krate(features: &[&str]) -> Crate {
        Crate {
            dir: PathBuf::from("crates/x"),
            features: features.iter().map(|s| s.to_string()).collect(),
            files: Vec::new(),
        }
    }

    fn scan(src: &str, features: &[&str]) -> Report {
        let mut report = Report::default();
        let mut ledger = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            src,
            &krate(features),
            &mut report,
            &mut ledger,
        );
        report.sort();
        report
    }

    #[test]
    fn clean_source_is_clean() {
        let r = scan(
            "use crate::msync::atomic::{AtomicUsize, Ordering};\n\
             fn f() -> usize { 1 }\n",
            &[],
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn waived_finding_is_reported_but_not_counted() {
        let r = scan(
            "// lint: allow(raw-sync, test shim; not part of any modeled protocol)\n\
             use std::sync::atomic::AtomicUsize;\n",
            &[],
        );
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].waived.is_some());
        assert_eq!(r.count(report::Rule::RawSync), 0);
    }

    #[test]
    fn reasonless_waiver_is_a_finding() {
        let r = scan("// lint: allow(raw-sync)\nfn f() {}\n", &[]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("no reason"));
        assert!(r.findings[0].waived.is_none());
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let r = scan(
            "// lint: allow(raw-sync, there used to be an atomic here)\nfn f() {}\n",
            &[],
        );
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("unused lint waiver"));
    }
}
