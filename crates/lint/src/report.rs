//! Findings, the machine-readable report, and its JSON codec.
//!
//! The JSON report is what CI archives next to the bench CSVs, so it
//! must be **diffable**: findings are stable-sorted by (file, line,
//! rule, message) and serialization is deterministic (same report ⇒
//! byte-identical JSON). The codec is hand-rolled — `cilkm-lint` is a
//! zero-dependency crate like `cilkm-checker` and `cilkm-obs` — and the
//! parser exists so tests can prove the emitted JSON round-trips.

use std::fmt::Write as _;

/// The six rule families (see DESIGN.md §12).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Facade integrity: raw `std::sync::atomic` / `Mutex` / `Condvar` /
    /// `thread::park` outside the `msync` facades.
    RawSync,
    /// Fast-path purity: allocation, formatting, or panicking indexing
    /// inside a `// lint: hot-path` function.
    HotPath,
    /// `cfg(feature = ...)` hygiene: undeclared or inconsistent feature
    /// names.
    CfgFeature,
    /// Unsafe contracts: missing `// SAFETY:` rationale or a stale
    /// `UNSAFE_LEDGER.md`.
    UnsafeLedger,
    /// Model-test coverage hygiene: `#[ignore]`d or
    /// `preemptions: Some(_)`-bounded model tests without a waiver.
    BoundedModel,
    /// Sanitizer-hook coverage: an op in an `msync.rs` facade of a
    /// `sanitize`-capable crate that never invokes a `cilkm_san` hook.
    SanHook,
}

impl Rule {
    /// The stable kebab-case name used in waivers, JSON, and docs.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawSync => "raw-sync",
            Rule::HotPath => "hot-path",
            Rule::CfgFeature => "cfg-feature",
            Rule::UnsafeLedger => "unsafe-ledger",
            Rule::BoundedModel => "bounded-model",
            Rule::SanHook => "san-hook-coverage",
        }
    }

    /// Parses a rule name as written in a waiver.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "raw-sync" => Some(Rule::RawSync),
            "hot-path" => Some(Rule::HotPath),
            "cfg-feature" => Some(Rule::CfgFeature),
            "unsafe-ledger" => Some(Rule::UnsafeLedger),
            "bounded-model" => Some(Rule::BoundedModel),
            "san-hook-coverage" => Some(Rule::SanHook),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::RawSync,
        Rule::HotPath,
        Rule::CfgFeature,
        Rule::UnsafeLedger,
        Rule::BoundedModel,
        Rule::SanHook,
    ];
}

/// One finding: a rule violation at a source location. Waived findings
/// are kept in the report (so the waiver inventory is auditable) but do
/// not fail the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a `// lint: allow(...)` waiver covers this
    /// finding.
    pub waived: Option<String>,
}

/// A full lint run: every finding plus per-rule totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, stable-sorted (see [`Report::sort`]).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Stable order for diffable output: file, then line, then rule,
    /// then message.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
    }

    /// Findings not covered by a waiver — the ones that fail CI.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    /// Count of unwaived findings for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.unwaived().filter(|f| f.rule == rule).count()
    }

    /// Serializes the report as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"summary\": {");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", rule.name(), self.count(*rule));
        }
        let _ = write!(
            s,
            "\n  }},\n  \"waived\": {},\n  \"findings\": [",
            self.findings.len() - self.unwaived().count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}}}",
                json_string(f.rule.name()),
                json_string(&f.file),
                f.line,
                json_string(&f.message),
                match &f.waived {
                    None => "null".to_string(),
                    Some(r) => json_string(r),
                }
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a report previously produced by [`Report::to_json`].
    /// Tolerates any whitespace; rejects anything structurally off.
    pub fn from_json(src: &str) -> Result<Report, String> {
        let mut p = JsonParser::new(src);
        let value = p.value()?;
        p.expect_eof()?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let findings_val = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .map(|(_, v)| v)
            .ok_or("missing \"findings\"")?;
        let arr = findings_val
            .as_array()
            .ok_or("\"findings\" is not an array")?;
        let mut findings = Vec::new();
        for item in arr {
            let f = item.as_object().ok_or("finding is not an object")?;
            let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let rule_name = get("rule")
                .and_then(|v| v.as_str())
                .ok_or("finding missing \"rule\"")?;
            findings.push(Finding {
                rule: Rule::from_name(rule_name)
                    .ok_or_else(|| format!("unknown rule {rule_name:?}"))?,
                file: get("file")
                    .and_then(|v| v.as_str())
                    .ok_or("finding missing \"file\"")?
                    .to_string(),
                line: get("line")
                    .and_then(|v| v.as_u32())
                    .ok_or("finding missing \"line\"")?,
                message: get("message")
                    .and_then(|v| v.as_str())
                    .ok_or("finding missing \"message\"")?
                    .to_string(),
                waived: match get("waived") {
                    None => return Err("finding missing \"waived\"".into()),
                    Some(JsonValue::Null) => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or("\"waived\" is neither null nor a string")?
                            .to_string(),
                    ),
                },
            });
        }
        Ok(Report { findings })
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value — only the subset the report uses.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key order preserved (the report's is deterministic anyway).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_object(&self) -> Option<&Vec<(String, JsonValue)>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
    fn as_u32(&self) -> Option<u32> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

/// A small recursive-descent JSON parser (report subset: no scientific
/// notation needed, but accepted; no surrogate-pair escapes).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn expect_eof(&mut self) -> Result<(), String> {
        if self.peek().is_none() {
            Ok(())
        } else {
            Err(format!("trailing content at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || *b == b'.' || *b == b'e' || *b == b'E' || *b == b'+' || *b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: Rule::CfgFeature,
                    file: "crates/x/src/lib.rs".into(),
                    line: 9,
                    message: "feature \"trce\" is not declared in crates/x/Cargo.toml".into(),
                    waived: None,
                },
                Finding {
                    rule: Rule::RawSync,
                    file: "crates/a/src/lib.rs".into(),
                    line: 3,
                    message: "raw `std::sync::atomic` outside the msync facade".into(),
                    waived: Some("monitoring counters\twith a tab".into()),
                },
            ],
        };
        r.sort();
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, r);
        // Idempotent: re-serializing the parsed report is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn sort_is_stable_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "crates/a/src/lib.rs");
        assert_eq!(r.findings[1].file, "crates/x/src/lib.rs");
    }

    #[test]
    fn summary_counts_only_unwaived() {
        let r = sample();
        assert_eq!(r.count(Rule::RawSync), 0, "waived finding must not count");
        assert_eq!(r.count(Rule::CfgFeature), 1);
        assert!(r.to_json().contains("\"waived\": 1"));
    }
}
