//! Workspace discovery and the sliver of `Cargo.toml` the lint needs.
//!
//! `cilkm-lint` is zero-dependency, so instead of a TOML crate this
//! module hand-parses exactly two things from the in-tree manifests:
//!
//! * the workspace `members = [...]` list (root `Cargo.toml`), and
//! * each crate's declared feature names — the `[features]` table keys
//!   plus `optional = true` dependency names (which Cargo turns into
//!   implicit features unless only referenced via `dep:`).
//!
//! That is all the `cfg-feature` rule needs, and the parser is strict
//! enough that a manifest it misreads would also be one a human
//! misreads. Line-oriented; quoted keys, inline tables, and arrays
//! spanning lines are handled; exotic TOML (multi-line strings in the
//! sections we read) is not used in this repository.

use std::path::{Path, PathBuf};

/// One workspace member (or the root package) with what the rules need.
#[derive(Clone, Debug)]
pub struct Crate {
    /// Directory containing the crate's `Cargo.toml`, workspace-relative
    /// (empty for the root package).
    pub dir: PathBuf,
    /// Feature names this crate's `Cargo.toml` declares, sorted.
    pub features: Vec<String>,
    /// Rust sources belonging to this crate, workspace-relative, sorted.
    pub files: Vec<PathBuf>,
}

/// The whole workspace as the lint sees it.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Workspace root (absolute or as given on the command line).
    pub root: PathBuf,
    /// Crates, in member-list order; the root package is last.
    pub crates: Vec<Crate>,
}

impl Workspace {
    /// Discovers the workspace under `root` by reading its `Cargo.toml`.
    ///
    /// Fixture directories (`**/fixtures/**`) are skipped: they hold
    /// deliberate rule violations for the lint's own tests, and are not
    /// compiled into any crate.
    pub fn discover(root: &Path) -> Result<Workspace, String> {
        let manifest = std::fs::read_to_string(root.join("Cargo.toml"))
            .map_err(|e| format!("reading {}: {e}", root.join("Cargo.toml").display()))?;
        let members = workspace_members(&manifest);
        let mut crates = Vec::new();
        for member in members {
            let dir = root.join(&member);
            let mtoml = std::fs::read_to_string(dir.join("Cargo.toml"))
                .map_err(|e| format!("reading {}: {e}", dir.join("Cargo.toml").display()))?;
            crates.push(Crate {
                dir: PathBuf::from(&member),
                features: declared_features(&mtoml),
                files: rust_sources(root, Path::new(&member)),
            });
        }
        // The root package: its sources are src/, tests/, examples/,
        // benches/ directly under the root (not under any member).
        let mut root_files = Vec::new();
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(&root.join(sub), root, &mut root_files);
        }
        root_files.sort();
        crates.push(Crate {
            dir: PathBuf::new(),
            features: declared_features(&manifest),
            files: root_files,
        });
        Ok(Workspace {
            root: root.to_path_buf(),
            crates,
        })
    }

    /// Every source file with its owning crate, in deterministic order.
    pub fn files(&self) -> impl Iterator<Item = (&Crate, &PathBuf)> {
        self.crates
            .iter()
            .flat_map(|c| c.files.iter().map(move |f| (c, f)))
    }
}

/// Extracts `members = [...]` from the `[workspace]` section.
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in manifest.lines() {
        let t = strip_toml_comment(line).trim().to_string();
        if t.starts_with('[') {
            in_workspace = t == "[workspace]";
            in_members = false;
            continue;
        }
        if in_workspace && t.starts_with("members") {
            in_members = true;
        }
        if in_members {
            for piece in t.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if t.contains(']') {
                in_members = false;
            }
        }
    }
    members
}

/// Feature names a crate declares: `[features]` keys plus optional
/// dependencies (implicit features).
fn declared_features(manifest: &str) -> Vec<String> {
    let mut features = Vec::new();
    let mut section = String::new();
    for line in manifest.lines() {
        let t = strip_toml_comment(line).trim().to_string();
        if t.starts_with('[') {
            section = t;
            continue;
        }
        if t.is_empty() {
            continue;
        }
        if section == "[features]" {
            if let Some(eq) = t.find('=') {
                let key = t[..eq].trim().trim_matches('"');
                // A continuation line of a multi-line array has no key
                // shape; require an identifier-looking key.
                if !key.is_empty()
                    && key
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    features.push(key.to_string());
                }
            }
        } else if (section.starts_with("[dependencies")
            || section.starts_with("[dev-dependencies")
            || section.starts_with("[build-dependencies"))
            && t.contains("optional")
            && t.contains("true")
        {
            if let Some(eq) = t.find('=') {
                features.push(t[..eq].trim().trim_matches('"').to_string());
            }
        }
    }
    features.sort();
    features.dedup();
    features
}

/// Drops a `#`-to-end-of-line TOML comment (quote-aware).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// All `.rs` files belonging to the member at `dir`, workspace-relative.
fn rust_sources(root: &Path, dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs(&root.join(dir), root, &mut files);
    files.sort();
    files
}

/// Recursively collects `.rs` files under `path` (skipping `target/` and
/// `fixtures/`), pushing workspace-relative paths.
fn collect_rs(path: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&p, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = p.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_extracted() {
        let m = workspace_members(
            "[workspace]\nmembers = [\n  \"crates/a\", # trailing\n  \"crates/b\",\n]\n",
        );
        assert_eq!(m, ["crates/a", "crates/b"]);
    }

    #[test]
    fn features_include_table_keys_and_optional_deps() {
        let manifest = r#"
[package]
name = "x"

[features]
trace = []
model = ["dep:checker"] # comment
"weird-name" = []

[dependencies]
checker = { path = "../checker", optional = true }
plain = { path = "../plain" }
"#;
        let f = declared_features(manifest);
        assert_eq!(f, ["checker", "model", "trace", "weird-name"]);
    }

    #[test]
    fn comments_do_not_leak_into_values() {
        assert_eq!(strip_toml_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_toml_comment("s = \"#hash\" # real"), "s = \"#hash\" ");
    }
}
