//! Rule `cfg-feature` — `cfg(feature = ...)` hygiene.
//!
//! A typo'd feature name in a `cfg` is the quietest possible bug: the
//! guarded code (often a debug invariant or a model-checker hook)
//! simply never compiles, in any configuration, and nothing warns. This
//! rule closes that hole two ways:
//!
//! 1. **Declaration check** — every feature named in `#[cfg(...)]`,
//!    `#[cfg_attr(...)]`, or `cfg!(...)` in a crate must be declared in
//!    that crate's `Cargo.toml` (`[features]` keys or `optional`
//!    dependencies). `cfg(feature = "trce")` in a crate that declares
//!    `trace` is an error.
//! 2. **Workspace consistency** — the workspace's cross-cutting
//!    features (`model`, `trace`, `instrument`) must be spelled
//!    identically in every member that declares them: a *declared*
//!    feature one edit away from a canonical name (`modle`, `trcae`)
//!    is an error too, so the typo can't hide in a manifest either.
//!
//! Feature predicates nest (`all(test, feature = "trace")`); the rule
//! scans every `feature = "..."` pair inside the predicate regardless
//! of depth.

use crate::lexer::{Token, TokenKind};
use crate::manifest::Crate;
use crate::report::{Finding, Report, Rule};
use crate::rules::{matching_close, seq_matches, FileContext};

/// The cross-cutting workspace features that must be spelled
/// consistently everywhere (see the root `Cargo.toml` and DESIGN.md
/// §§10–12).
pub const CANONICAL_FEATURES: &[&str] = &["model", "trace", "instrument"];

/// Scans one file against its owning crate's declared features.
pub fn check(ctx: &FileContext<'_>, krate: &Crate, report: &mut Report) {
    let toks = &ctx.lexed.tokens;
    let manifest = if krate.dir.as_os_str().is_empty() {
        "Cargo.toml".to_string()
    } else {
        format!("{}/Cargo.toml", krate.dir.display())
    };
    let mut i = 0;
    while i < toks.len() {
        // Attribute: `#[...]` or `#![...]`.
        if toks[i].text == "#" {
            let open = if toks.get(i + 1).is_some_and(|t| t.text == "[") {
                i + 1
            } else if toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "[")
            {
                i + 2
            } else {
                i += 1;
                continue;
            };
            if let Some(close) = matching_close(toks, open) {
                let attr = &toks[open..=close];
                let is_cfg = attr.iter().any(|t| {
                    t.kind == TokenKind::Ident && (t.text == "cfg" || t.text == "cfg_attr")
                });
                if is_cfg {
                    check_predicate(ctx, krate, &manifest, attr, report);
                }
                i = close + 1;
                continue;
            }
        }
        // `cfg!(...)` expression macro.
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "cfg"
            && toks.get(i + 1).is_some_and(|t| t.text == "!")
            && toks.get(i + 2).is_some_and(|t| t.text == "(")
        {
            if let Some(close) = matching_close(toks, i + 2) {
                check_predicate(ctx, krate, &manifest, &toks[i + 2..=close], report);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Reports every `feature = "name"` in `pred` whose name the crate does
/// not declare.
fn check_predicate(
    ctx: &FileContext<'_>,
    krate: &Crate,
    manifest: &str,
    pred: &[Token],
    report: &mut Report,
) {
    for k in 0..pred.len() {
        if seq_matches(pred, k, &["feature", "="]) {
            let Some(lit) = pred.get(k + 2).filter(|t| t.kind == TokenKind::Literal) else {
                continue;
            };
            let name = lit.text.trim_matches('"');
            if !krate.features.iter().any(|f| f == name) {
                let near = krate
                    .features
                    .iter()
                    .find(|f| edit_distance_at_most_one(f, name))
                    .map(|f| format!(" (did you mean `{f}`?)"))
                    .unwrap_or_default();
                ctx.emit(
                    report,
                    Rule::CfgFeature,
                    lit.line,
                    format!(
                        "cfg names feature `{name}`, which {manifest} does not declare{near} — \
                         the guarded code can never compile"
                    ),
                );
            }
        }
    }
}

/// Workspace-level pass over the manifests themselves: declared feature
/// names one typo away from a canonical cross-cutting feature.
pub fn check_declared_consistency(crates: &[Crate], report: &mut Report) {
    for krate in crates {
        let manifest = if krate.dir.as_os_str().is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", krate.dir.display())
        };
        for f in &krate.features {
            for canon in CANONICAL_FEATURES {
                if f != canon && edit_distance_at_most_one(f, canon) {
                    report.findings.push(Finding {
                        rule: Rule::CfgFeature,
                        file: manifest.clone(),
                        line: 1,
                        message: format!(
                            "declared feature `{f}` is one edit from the workspace-wide \
                             `{canon}` — rename it or pick a clearly distinct name"
                        ),
                        waived: None,
                    });
                }
            }
        }
    }
}

/// True when `a` and `b` are within Levenshtein distance 1 (one insert,
/// delete, or substitute) — including equal strings.
fn edit_distance_at_most_one(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match long.len() - short.len() {
        0 => short.iter().zip(long).filter(|(x, y)| x != y).count() <= 1,
        1 => {
            // One deletion from `long` must yield `short`.
            let mut i = 0;
            while i < short.len() && short[i] == long[i] {
                i += 1;
            }
            short[i..] == long[i + 1..]
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::edit_distance_at_most_one as near;

    #[test]
    fn edit_distance_one() {
        assert!(near("trace", "trace"));
        assert!(near("trce", "trace"));
        assert!(near("tracee", "trace"));
        assert!(near("trqce", "trace"));
        assert!(!near("trc", "trace"));
        assert!(!near("model", "trace"));
    }
}
