//! Rule `raw-sync` — facade integrity.
//!
//! The model checker (DESIGN.md §10) can only verify synchronization it
//! can see, and it sees exactly what flows through the `msync` facades.
//! A `std::sync::atomic` or `parking_lot::Mutex` reached directly is
//! invisible to every model test, silently un-checking the protocol it
//! participates in. This rule makes that bypass a CI failure.
//!
//! Outside `msync.rs` files, `crates/checker` and `crates/san` (which
//! *implement* the facade's model and sanitizer faces), and
//! `crates/shims` (which implement the primitives), direct use of the
//! following is an error:
//!
//! * `std::sync::atomic` (any path into it),
//! * `std::sync::{Mutex, Condvar, RwLock, Barrier}` and their guards,
//! * `parking_lot` (anything),
//! * `std::thread::park` / `park_timeout` (parking is part of the
//!   sleeper protocol; spawn/yield are fine).
//!
//! Integration tests (`tests/` directories) and `examples/` are exempt:
//! they exercise the *public* API from outside the crate, where the
//! `pub(crate)` facades are unreachable by design — exactly like the
//! external programs the examples stand in for. Unit tests inside
//! `src/` are **not** exempt; they can and should use the facade.

use crate::lexer::TokenKind;
use crate::report::{Report, Rule};
use crate::rules::{matching_close, seq_matches, FileContext};

/// `std::sync::` members that must come from a facade instead.
const BANNED_SYNC: &[&str] = &[
    "atomic",
    "Mutex",
    "MutexGuard",
    "Condvar",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Barrier",
];

/// True when the facade rule does not apply to this file at all.
pub fn exempt(path: &str) -> bool {
    let is_in = |dir: &str| path.starts_with(dir) || path.contains(&format!("/{dir}"));
    path.ends_with("msync.rs")
        || path.starts_with("crates/checker/")
        || path.starts_with("crates/san/")
        || path.starts_with("crates/shims/")
        || is_in("tests/")
        || is_in("examples/")
}

/// Scans one file.
pub fn check(ctx: &FileContext<'_>, report: &mut Report) {
    if exempt(ctx.path) {
        return;
    }
    let toks = &ctx.lexed.tokens;

    // Does this file `use std::thread;` as a module (making a later bare
    // `thread::park` resolve to std)? `use std::thread::...` item
    // imports are caught positionally instead.
    let uses_std_thread_module = (0..toks.len()).any(|i| {
        seq_matches(toks, i, &["use", "std", "::", "thread"])
            && toks
                .get(i + 4)
                .is_some_and(|t| t.text == ";" || t.text == "as")
    });

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "parking_lot" => {
                    ctx.emit(
                        report,
                        Rule::RawSync,
                        t.line,
                        "direct use of `parking_lot` outside the msync facade; import the \
                         lock types through `crate::msync` so they stay model-checkable"
                            .to_string(),
                    );
                }
                "std" if seq_matches(toks, i, &["std", "::", "sync", "::"]) => {
                    // Path form: std::sync::X or group: std::sync::{..}.
                    if let Some(next) = toks.get(i + 4) {
                        if next.text == "{" {
                            if let Some(close) = matching_close(toks, i + 4) {
                                for t in &toks[i + 5..close] {
                                    if t.kind == TokenKind::Ident
                                        && BANNED_SYNC.contains(&t.text.as_str())
                                    {
                                        ctx.emit(
                                            report,
                                            Rule::RawSync,
                                            t.line,
                                            format!(
                                                "raw `std::sync::{}` outside the msync facade; \
                                                 route it through `crate::msync`",
                                                t.text
                                            ),
                                        );
                                    }
                                }
                                i = close;
                            }
                        } else if next.kind == TokenKind::Ident
                            && BANNED_SYNC.contains(&next.text.as_str())
                        {
                            ctx.emit(
                                report,
                                Rule::RawSync,
                                next.line,
                                format!(
                                    "raw `std::sync::{}` outside the msync facade; \
                                     route it through `crate::msync`",
                                    next.text
                                ),
                            );
                            // Skip the rest of this path so
                            // `std::sync::atomic::Ordering` reports once.
                            i += 4;
                        }
                    }
                }
                "std" if seq_matches(toks, i, &["std", "::", "thread", "::"]) => {
                    if let Some(next) = toks.get(i + 4) {
                        if next.text == "park" || next.text == "park_timeout" {
                            ctx.emit(
                                report,
                                Rule::RawSync,
                                next.line,
                                format!(
                                    "raw `std::thread::{}` outside the msync facade; worker \
                                     parking is part of the modeled sleeper protocol",
                                    next.text
                                ),
                            );
                        }
                    }
                }
                "thread"
                    if uses_std_thread_module
                        && (seq_matches(toks, i, &["thread", "::", "park"])
                            || seq_matches(toks, i, &["thread", "::", "park_timeout"]))
                        // Not itself part of a longer `std::thread` path
                        // (already reported above).
                        && !(i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std") =>
                {
                    ctx.emit(
                        report,
                        Rule::RawSync,
                        t.line,
                        format!(
                            "`thread::{}` resolves to `std::thread` here; worker parking \
                             must go through the msync facade",
                            toks[i + 2].text
                        ),
                    );
                }
                _ => {}
            }
        }
        i += 1;
    }
}
