//! Rule `unsafe-ledger` — unsafe contracts and the checked-in registry.
//!
//! The repository's clippy configuration already denies undocumented
//! `unsafe` blocks; this rule closes the remaining gaps and gives the
//! audit surface a single reviewable artifact:
//!
//! * every `unsafe impl Send`/`unsafe impl Sync` must be immediately
//!   preceded by a `// SAFETY:` comment,
//! * every `// SAFETY:` comment in the workspace must carry a
//!   **non-empty rationale** (clippy only checks existence),
//! * the whole inventory — impls and rationales — must match the
//!   checked-in `UNSAFE_LEDGER.md`, which this rule regenerates and
//!   diffs. A new unsafe site therefore shows up in review twice: once
//!   in the code and once as a ledger diff, and deleting a site without
//!   updating the ledger fails CI just the same.
//!
//! Entries carry no line numbers, so edits elsewhere in a file don't
//! churn the ledger; `cargo run -p cilkm-lint -- --workspace
//! --regen-ledger` rewrites it after genuine changes.

use crate::lexer::TokenKind;
use crate::report::{Report, Rule};
use crate::rules::FileContext;

/// One ledger entry: an `unsafe impl Send/Sync` or a `// SAFETY:`
/// rationale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Workspace-relative file.
    pub file: String,
    /// `impl-send`, `impl-sync`, or `safety-comment`.
    pub kind: &'static str,
    /// The implementing type (impls) or empty (comments).
    pub subject: String,
    /// Whitespace-normalized rationale excerpt.
    pub excerpt: String,
}

/// Scans one file: enforces rationale presence and collects entries.
pub fn check(ctx: &FileContext<'_>, report: &mut Report, ledger: &mut Vec<LedgerEntry>) {
    let toks = &ctx.lexed.tokens;

    // Every SAFETY comment: non-empty rationale, and a ledger entry.
    // Continuation lines (comments on the immediately following lines
    // that are not themselves SAFETY headers) extend the rationale.
    let mut skip_until_line = 0u32;
    for (ci, c) in ctx.lexed.comments.iter().enumerate() {
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with("SAFETY:") {
            continue;
        }
        if c.line < skip_until_line {
            continue; // part of a previous comment's continuation
        }
        let mut rationale = trimmed["SAFETY:".len()..].trim().to_string();
        let mut last_line = c.line;
        for next in &ctx.lexed.comments[ci + 1..] {
            let nt = next.text.trim_start();
            if next.line == last_line + 1 && next.is_line && !nt.starts_with("SAFETY:") {
                rationale.push(' ');
                rationale.push_str(nt.trim_end());
                last_line = next.line;
            } else {
                break;
            }
        }
        skip_until_line = last_line + 1;
        if rationale.trim().is_empty() {
            ctx.emit(
                report,
                Rule::UnsafeLedger,
                c.line,
                "`// SAFETY:` comment with an empty rationale — state the invariant \
                 that makes the unsafe code sound"
                    .to_string(),
            );
        } else {
            ledger.push(LedgerEntry {
                file: ctx.path.to_string(),
                kind: "safety-comment",
                subject: String::new(),
                excerpt: excerpt(&rationale),
            });
        }
    }

    // Every `unsafe impl ... Send/Sync ... for Type`.
    for i in 0..toks.len() {
        if toks[i].text != "unsafe" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("impl") {
            continue;
        }
        // Between `impl` and `for`: the trait path (maybe with generic
        // params before it). Between `for` and `{`/`where`: the type.
        let mut trait_name = None;
        let mut type_name = String::new();
        let mut k = i + 2;
        while k < toks.len() && toks[k].text != "for" && toks[k].text != "{" {
            if toks[k].kind == TokenKind::Ident
                && (toks[k].text == "Send" || toks[k].text == "Sync")
            {
                trait_name = Some(toks[k].text.clone());
            }
            k += 1;
        }
        let Some(trait_name) = trait_name else {
            continue; // some other unsafe trait; clippy covers the comment
        };
        if k < toks.len() && toks[k].text == "for" {
            k += 1;
            while k < toks.len() && toks[k].text != "{" && toks[k].text != "where" {
                if toks[k].kind == TokenKind::Ident {
                    if !type_name.is_empty() {
                        break; // first path segment is enough to identify
                    }
                    type_name = toks[k].text.clone();
                }
                k += 1;
            }
        }

        // A SAFETY comment must sit directly above (allowing other
        // comment lines and attributes between it and the impl).
        let impl_line = toks[i].line;
        let has_safety = ctx.lexed.comments.iter().any(|c| {
            c.line < impl_line
                && impl_line - c.line <= 6
                && c.text.trim_start().starts_with("SAFETY:")
        });
        if !has_safety {
            ctx.emit(
                report,
                Rule::UnsafeLedger,
                impl_line,
                format!(
                    "`unsafe impl {trait_name} for {type_name}` without a `// SAFETY:` \
                     comment directly above it"
                ),
            );
        }
        ledger.push(LedgerEntry {
            file: ctx.path.to_string(),
            kind: if trait_name == "Send" {
                "impl-send"
            } else {
                "impl-sync"
            },
            subject: type_name,
            excerpt: String::new(),
        });
    }
}

/// Renders the collected entries as the `UNSAFE_LEDGER.md` content.
/// Deterministic: entries are grouped by file (files sorted), kept in
/// source order within a file, and line-number free.
pub fn render(entries: &[LedgerEntry]) -> String {
    let mut files: Vec<&str> = entries.iter().map(|e| e.file.as_str()).collect();
    files.sort_unstable();
    files.dedup();

    let mut out = String::new();
    out.push_str(
        "# UNSAFE_LEDGER — unsafe-contract registry\n\
         \n\
         Generated by `cargo run -p cilkm-lint -- --workspace --regen-ledger`;\n\
         do **not** edit by hand. CI diffs this file against the tree (rule\n\
         `unsafe-ledger`, DESIGN.md §12): every `unsafe impl Send`/`Sync` and\n\
         every `// SAFETY:` rationale in the workspace appears here, so adding,\n\
         removing, or rewording an unsafe contract is always visible in review\n\
         as a ledger diff. Entries are in source order and carry no line\n\
         numbers, so unrelated edits do not churn the ledger.\n",
    );
    let impls = entries
        .iter()
        .filter(|e| e.kind != "safety-comment")
        .count();
    let comments = entries.len() - impls;
    out.push_str(&format!(
        "\nInventory: {impls} `unsafe impl Send/Sync` sites, {comments} `SAFETY:` rationales.\n"
    ));
    for file in files {
        out.push_str(&format!("\n## `{file}`\n\n"));
        for e in entries.iter().filter(|e| e.file == file) {
            match e.kind {
                "safety-comment" => {
                    out.push_str(&format!("- SAFETY: {}\n", e.excerpt));
                }
                kind => {
                    out.push_str(&format!("- {kind} `{}`\n", e.subject));
                }
            }
        }
    }
    out
}

/// Compares the rendered ledger against the checked-in one.
pub fn diff_against_checked_in(rendered: &str, checked_in: Option<&str>, report: &mut Report) {
    match checked_in {
        None => report.findings.push(crate::report::Finding {
            rule: Rule::UnsafeLedger,
            file: "UNSAFE_LEDGER.md".to_string(),
            line: 1,
            message: "UNSAFE_LEDGER.md is missing; generate it with \
                      `cargo run -p cilkm-lint -- --workspace --regen-ledger`"
                .to_string(),
            waived: None,
        }),
        Some(existing) if existing != rendered => {
            // Find the first differing line for a pointed message.
            let line = existing
                .lines()
                .zip(rendered.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| existing.lines().count().min(rendered.lines().count()) + 1);
            report.findings.push(crate::report::Finding {
                rule: Rule::UnsafeLedger,
                file: "UNSAFE_LEDGER.md".to_string(),
                line: line as u32,
                message: format!(
                    "UNSAFE_LEDGER.md is stale (first divergence at line {line}); the set of \
                     unsafe contracts changed — review the diff and regenerate with \
                     `cargo run -p cilkm-lint -- --workspace --regen-ledger`"
                ),
                waived: None,
            });
        }
        Some(_) => {}
    }
}

/// First ~12 words of the rationale, whitespace-normalized.
fn excerpt(rationale: &str) -> String {
    let words: Vec<&str> = rationale.split_whitespace().collect();
    let mut s = words.iter().take(12).copied().collect::<Vec<_>>().join(" ");
    if words.len() > 12 {
        s.push('…');
    }
    s
}
