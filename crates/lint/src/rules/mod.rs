//! The rule engine: waiver parsing, per-file scan context, and the six
//! rule families.
//!
//! ## Waiver syntax
//!
//! A finding can be acknowledged in source with a justified waiver —
//! the analogue of rayon's hand-audited raw-deque hygiene notes. Two
//! scopes exist:
//!
//! ```text
//! // lint: allow(raw-sync, monitoring counters only; Relaxed, never ordering)
//! // lint: allow-file(raw-sync, this whole file is monitoring plumbing)
//! ```
//!
//! A **line waiver** covers its own line and the next line that holds
//! code (so it can trail the offending expression or sit on its own
//! line above it). A **file waiver** covers the whole file for one
//! rule. The reason is mandatory: a reason-less waiver is itself a
//! finding, and so is a waiver that no longer covers anything — waivers
//! must not outlive the violation they excuse.
//!
//! ## Hot-path markers
//!
//! `// lint: hot-path` immediately above a function (attributes may
//! intervene) opts that function into the fast-path purity rule.

pub mod bounded;
pub mod cfgcheck;
pub mod facade;
pub mod hotpath;
pub mod sanhook;
pub mod unsafe_ledger;

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use crate::report::{Finding, Report, Rule};

/// One parsed waiver comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rule being waived.
    pub rule: Rule,
    /// Mandatory justification.
    pub reason: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// True for `allow-file`.
    pub file_scope: bool,
    /// Set when some finding was covered (for unused-waiver hygiene).
    pub used: std::cell::Cell<bool>,
}

/// Everything the rules know about one source file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Token/comment streams.
    pub lexed: &'a Lexed,
    /// Parsed waivers, in source order.
    pub waivers: Vec<Waiver>,
    /// Lines carrying a `// lint: hot-path` marker.
    pub hot_markers: Vec<u32>,
}

impl<'a> FileContext<'a> {
    /// Builds the context: parses waivers and markers out of the
    /// comment stream, reporting malformed ones straight into `report`.
    pub fn new(path: &'a str, lexed: &'a Lexed, report: &mut Report) -> FileContext<'a> {
        let mut waivers = Vec::new();
        let mut hot_markers = Vec::new();
        for c in &lexed.comments {
            let Some(directive) = lint_directive(c) else {
                continue;
            };
            match directive {
                Directive::HotPath => hot_markers.push(c.line),
                Directive::Allow {
                    rule,
                    reason,
                    file_scope,
                } => match rule {
                    None => report.findings.push(Finding {
                        rule: Rule::UnsafeLedger,
                        file: path.to_string(),
                        line: c.line,
                        message: format!("lint waiver names an unknown rule: `{}`", c.text.trim()),
                        waived: None,
                    }),
                    Some(rule) if reason.is_empty() => report.findings.push(Finding {
                        rule,
                        file: path.to_string(),
                        line: c.line,
                        message: "lint waiver has no reason; write \
                                  `// lint: allow(<rule>, <why this is sound>)`"
                            .to_string(),
                        waived: None,
                    }),
                    Some(rule) => waivers.push(Waiver {
                        rule,
                        reason,
                        line: c.line,
                        file_scope,
                        used: std::cell::Cell::new(false),
                    }),
                },
                Directive::Malformed => report.findings.push(Finding {
                    rule: Rule::UnsafeLedger,
                    file: path.to_string(),
                    line: c.line,
                    message: format!("malformed lint directive: `{}`", c.text.trim()),
                    waived: None,
                }),
            }
        }
        FileContext {
            path,
            lexed,
            waivers,
            hot_markers,
        }
    }

    /// The waiver covering a finding of `rule` at `line`, if any. A line
    /// waiver covers its own line and the next code line after it; a
    /// file waiver covers everything.
    pub fn waiver_for(&self, rule: Rule, line: u32) -> Option<&Waiver> {
        let hit = self.waivers.iter().find(|w| {
            w.rule == rule
                && (w.file_scope || w.line == line || self.next_code_line(w.line) == Some(line))
        });
        if let Some(w) = hit {
            w.used.set(true);
        }
        hit
    }

    /// First line strictly after `line` that carries a significant token.
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.lexed.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }

    /// Pushes `finding`, consulting waivers first.
    pub fn emit(&self, report: &mut Report, rule: Rule, line: u32, message: String) {
        let waived = self.waiver_for(rule, line).map(|w| w.reason.clone());
        report.findings.push(Finding {
            rule,
            file: self.path.to_string(),
            line,
            message,
            waived,
        });
    }

    /// After all rules ran: any waiver that never covered a finding is
    /// itself reported, so stale waivers can't silently accumulate.
    pub fn flag_unused_waivers(&self, report: &mut Report) {
        for w in &self.waivers {
            if !w.used.get() {
                report.findings.push(Finding {
                    rule: w.rule,
                    file: self.path.to_string(),
                    line: w.line,
                    message: format!(
                        "unused lint waiver for `{}` — the violation it excused is gone; \
                         remove the waiver",
                        w.rule.name()
                    ),
                    waived: None,
                });
            }
        }
    }
}

/// A recognized `lint:` comment.
enum Directive {
    HotPath,
    Allow {
        rule: Option<Rule>,
        reason: String,
        file_scope: bool,
    },
    Malformed,
}

/// Parses a comment into a lint directive, if it is one.
fn lint_directive(c: &Comment) -> Option<Directive> {
    let t = c.text.trim();
    let rest = t.strip_prefix("lint:")?.trim();
    if rest == "hot-path" {
        return Some(Directive::HotPath);
    }
    for (prefix, file_scope) in [("allow-file(", true), ("allow(", false)] {
        if let Some(body) = rest.strip_prefix(prefix) {
            let Some(body) = body.strip_suffix(')') else {
                return Some(Directive::Malformed);
            };
            let (rule_name, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim().to_string()),
                None => (body.trim(), String::new()),
            };
            return Some(Directive::Allow {
                rule: Rule::from_name(rule_name),
                reason,
                file_scope,
            });
        }
    }
    Some(Directive::Malformed)
}

/// True when `tokens[i..]` begins with the given identifier/punct texts.
pub(crate) fn seq_matches(tokens: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, p)| tokens.get(i + k).is_some_and(|t| t.text == *p))
}

/// Index of the matching close delimiter for the open one at `open`
/// (`tokens[open]` must be `(`, `[`, or `{`).
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}
