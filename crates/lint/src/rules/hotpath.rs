//! Rule `hot-path` — fast-path purity.
//!
//! The paper's central performance claim is a reducer lookup that costs
//! about three L1 accesses (§5); PR 1 additionally drove the repeated
//! mmap lookup to ~2.3 ns. At that scale a single stray allocation,
//! `format!`, or bounds-checked index is not a slowdown, it is a
//! different algorithm. Functions annotated
//!
//! ```text
//! // lint: hot-path
//! #[inline(always)]
//! pub(crate) fn lookup(...) { ... }
//! ```
//!
//! may not (anywhere in their body, including closures):
//!
//! * call an allocating constructor (`Box::new`, `Vec::with_capacity`,
//!   `String::from`, `Arc::new`, …) or an allocating conversion method
//!   (`.to_string()`, `.to_owned()`, `.to_vec()`, `.collect()`),
//! * expand a formatting macro (`format!`, `write!`, `println!`, …) or
//!   `vec!`,
//! * index with `[]` (panicking bounds check plus an untakeable branch
//!   on the fast path — use pointer arithmetic with a `// SAFETY:`
//!   comment or `get_unchecked`).
//!
//! `assert!`/`debug_assert!` are deliberately allowed: the fast paths
//! carry cheap invariant checks, and the paper's cost accounting
//! includes them. Cold outlined companions (`#[cold]` miss paths) are
//! simply not annotated.

use crate::lexer::{Token, TokenKind};
use crate::report::{Report, Rule};
use crate::rules::FileContext;

/// Macros whose expansion formats (and allocates) — plus `vec!`.
const FMT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "vec",
    "dbg",
];

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Box", "Vec", "String", "Arc", "Rc", "VecDeque", "HashMap", "BTreeMap", "HashSet", "BTreeSet",
    "CString",
];

/// Allocating constructor names on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "default", "into_raw"];

/// Allocating conversion methods.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// Scans one file: for each `// lint: hot-path` marker, finds the next
/// function and checks its body.
pub fn check(ctx: &FileContext<'_>, report: &mut Report) {
    let toks = &ctx.lexed.tokens;
    for &marker_line in &ctx.hot_markers {
        // The next `fn` token after the marker (attributes, visibility,
        // `unsafe`, and doc comments may all sit in between).
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.line > marker_line && t.kind == TokenKind::Ident && t.text == "fn")
        else {
            ctx.emit(
                report,
                Rule::HotPath,
                marker_line,
                "`lint: hot-path` marker is not followed by a function".to_string(),
            );
            continue;
        };
        let Some((body_open, body_close)) = fn_body(toks, fn_idx) else {
            ctx.emit(
                report,
                Rule::HotPath,
                marker_line,
                "`lint: hot-path` marker precedes a bodyless function declaration".to_string(),
            );
            continue;
        };
        let name = toks
            .get(fn_idx + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        check_body(ctx, report, &name, &toks[body_open..=body_close]);
    }
}

/// Locates the `{ ... }` body of the function whose `fn` keyword is at
/// `fn_idx`. Returns `None` for bodyless declarations (trait items).
fn fn_body(toks: &[Token], fn_idx: usize) -> Option<(usize, usize)> {
    let mut paren_depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(fn_idx) {
        match t.text.as_str() {
            "(" | "[" => paren_depth += 1,
            ")" | "]" => paren_depth -= 1,
            ";" if paren_depth == 0 => return None,
            "{" if paren_depth == 0 => {
                let close = super::matching_close(toks, k)?;
                return Some((k, close));
            }
            _ => {}
        }
    }
    None
}

/// Checks the token slice of one hot function body.
fn check_body(ctx: &FileContext<'_>, report: &mut Report, fn_name: &str, body: &[Token]) {
    for (k, t) in body.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                let next = body.get(k + 1).map(|t| t.text.as_str());
                // Formatting macro (ident followed by `!`, not `!=`).
                if FMT_MACROS.contains(&t.text.as_str())
                    && next == Some("!")
                    && body.get(k + 2).map(|t| t.text.as_str()) != Some("=")
                {
                    ctx.emit(
                        report,
                        Rule::HotPath,
                        t.line,
                        format!(
                            "`{}!` in hot-path fn `{fn_name}` — formatting/allocating \
                             macros are banned on the fast path",
                            t.text
                        ),
                    );
                }
                // Allocating constructor path: Type::ctor.
                if ALLOC_TYPES.contains(&t.text.as_str())
                    && next == Some("::")
                    && body
                        .get(k + 2)
                        .is_some_and(|c| ALLOC_CTORS.contains(&c.text.as_str()))
                {
                    ctx.emit(
                        report,
                        Rule::HotPath,
                        t.line,
                        format!(
                            "allocating constructor `{}::{}` in hot-path fn `{fn_name}`",
                            t.text,
                            body[k + 2].text
                        ),
                    );
                }
                // Allocating conversion method: `.to_string()` etc.
                if ALLOC_METHODS.contains(&t.text.as_str())
                    && k > 0
                    && body[k - 1].text == "."
                    && next == Some("(")
                {
                    ctx.emit(
                        report,
                        Rule::HotPath,
                        t.line,
                        format!(
                            "allocating method `.{}()` in hot-path fn `{fn_name}`",
                            t.text
                        ),
                    );
                }
            }
            TokenKind::Punct if t.text == "[" && k > 0 => {
                // `expr[...]` indexing: `[` right after an expression
                // tail. Array literals, attributes, slice types, and
                // generics all have non-expression tokens before `[`.
                let prev = &body[k - 1];
                let is_index = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]";
                if is_index {
                    ctx.emit(
                        report,
                        Rule::HotPath,
                        t.line,
                        format!(
                            "panicking `[]` indexing in hot-path fn `{fn_name}` — the bounds \
                             check costs a branch; use checked pointer arithmetic or \
                             `get_unchecked` with a SAFETY comment"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, …).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "const"
            | "static"
            | "let"
            | "dyn"
            | "impl"
            | "where"
            | "unsafe"
    )
}
