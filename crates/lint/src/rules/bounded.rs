//! Rule `bounded-model` — model-test coverage hygiene.
//!
//! PR 7 removed the CHESS preemption bound from the protocol model
//! tests (DESIGN.md §14): under the DPOR engine the reduction, not the
//! bound, keeps exploration tractable, so a bound is now a *coverage
//! regression* — it silently re-hides exactly the deep interleavings
//! the engine exists to reach. The two ways a test's coverage gets
//! quietly tightened are writing `preemptions: Some(_)` back into its
//! `Config` and `#[ignore]`-ing the test altogether. Both now require a
//! justified waiver:
//!
//! ```text
//! // lint: allow(bounded-model, CAS-loop space outgrows exhaustion; PCT sweep covers it)
//! preemptions: Some(3),
//! ```
//!
//! Scope: files that look like model tests — the path mentions `model`
//! or the source touches `cilkm_checker` — excluding the checker's own
//! `src/` (which *implements* `Config::preemptions` and legitimately
//! names its bounded default).

use crate::lexer::TokenKind;
use crate::report::{Report, Rule};
use crate::rules::{seq_matches, FileContext};

/// True when this file is a model-test file this rule applies to.
fn in_scope(ctx: &FileContext<'_>) -> bool {
    if ctx.path.starts_with("crates/checker/src/") {
        return false;
    }
    let name = ctx.path.rsplit('/').next().unwrap_or(ctx.path);
    name.contains("model")
        || ctx
            .lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "cilkm_checker")
}

/// Scans one file.
pub fn check(ctx: &FileContext<'_>, report: &mut Report) {
    if !in_scope(ctx) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "preemptions" && seq_matches(toks, i, &["preemptions", ":", "Some"]) {
            ctx.emit(
                report,
                Rule::BoundedModel,
                t.line,
                "model test bounds its schedule exploration with `preemptions: Some(_)`; \
                 run unbounded under `Config::dpor()` or justify the bound with \
                 `// lint: allow(bounded-model, <why the bound is still sound coverage>)`"
                    .to_string(),
            );
        }
        if t.text == "ignore"
            && i >= 2
            && toks[i - 1].text == "["
            && toks[i - 2].text == "#"
            && toks.get(i + 1).is_some_and(|n| n.text == "]")
        {
            ctx.emit(
                report,
                Rule::BoundedModel,
                t.line,
                "`#[ignore]`d model test: its schedule coverage is zero on every CI run; \
                 re-enable it or justify with \
                 `// lint: allow(bounded-model, <why this test must stay off>)`"
                    .to_string(),
            );
        }
    }
}
