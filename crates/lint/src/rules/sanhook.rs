//! Rule `san-hook-coverage` — sanitizer-hook completeness.
//!
//! The dynamic sanitizer (`crates/san`, DESIGN.md §17) only sees what
//! the `msync` facades route through it, exactly as the model checker
//! only sees what flows through `cilkm_checker`. A facade op added
//! without its `cfg(feature = "sanitize")` branch is invisible to the
//! race, determinacy, and lock-order detectors — silently, because the
//! plain and model builds still compile and pass. This rule closes that
//! gap: in every `msync.rs` file of a crate that declares the
//! `sanitize` feature, each function item must mention the sanitizer
//! somewhere in its attributes or body — an ident `cilkm_san` (a direct
//! hook call or an instrumented re-export) or a `cfg` literal
//! containing `sanitize` (the three-way branch shape the facades use).
//!
//! Ops with genuinely nothing to trace (e.g. a pure CPU relax hint)
//! carry a waiver:
//!
//! ```text
//! // lint: allow(san-hook-coverage, pure CPU relax hint; no memory effect to trace)
//! ```
//!
//! `use` re-exports are not checked per item — a missing instrumented
//! re-export shows up as a missing-type compile error under
//! `--features sanitize`, which CI builds; it is the *silent* fn-shaped
//! bypass this rule exists for.

use crate::lexer::{Token, TokenKind};
use crate::manifest::Crate;
use crate::report::{Report, Rule};
use crate::rules::{matching_close, FileContext};

/// True when the rule applies to this file at all: an `msync.rs` facade
/// in a crate whose manifest declares the `sanitize` feature.
/// `crates/san` (the implementation) and `crates/checker` / the shims
/// (which declare `sanitize` only as a pass-through marker) are exempt.
fn applies(path: &str, krate: &Crate) -> bool {
    path.ends_with("msync.rs")
        && krate.features.iter().any(|f| f == "sanitize")
        && !path.starts_with("crates/san/")
        && !path.starts_with("crates/checker/")
        && !path.starts_with("crates/shims/")
}

/// Scans one file: every `fn` item must reference the sanitizer in its
/// attribute prelude or body.
pub fn check(ctx: &FileContext<'_>, krate: &Crate, report: &mut Report) {
    if !applies(ctx.path, krate) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "fn" {
            let start = item_start(toks, i);
            let end = item_end(toks, i);
            let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
            if !mentions_sanitizer(&toks[start..=end]) {
                ctx.emit(
                    report,
                    Rule::SanHook,
                    toks[start].line,
                    format!(
                        "facade op `{name}` never invokes its sanitizer hook; add a \
                         `cfg(feature = \"sanitize\")` branch calling into `cilkm_san` \
                         (or waive with a reason if there is nothing to trace)"
                    ),
                );
            }
            i = end;
        }
        i += 1;
    }
}

/// True when the item's token slice shows a sanitizer connection: a
/// direct `cilkm_san` path, a bare `sanitize` ident, or a string
/// literal containing `sanitize` (the `cfg(feature = "sanitize")`
/// gate literal).
fn mentions_sanitizer(item: &[Token]) -> bool {
    item.iter().any(|t| match t.kind {
        TokenKind::Ident => t.text == "cilkm_san" || t.text == "sanitize",
        TokenKind::Literal => t.text.contains("sanitize"),
        _ => false,
    })
}

/// First token of the fn item whose `fn` keyword is at `fn_idx`:
/// walks back over qualifiers (`pub(crate)`, `const`, `unsafe`,
/// `async`, `extern`) and any contiguous `#[...]` attribute groups, so
/// a `#[cfg(...)]` gate above the fn counts as part of it.
fn item_start(toks: &[Token], fn_idx: usize) -> usize {
    let mut i = fn_idx;
    loop {
        if i == 0 {
            return 0;
        }
        let prev = &toks[i - 1];
        match prev.text.as_str() {
            "pub" | "const" | "unsafe" | "async" | "extern" => i -= 1,
            // `pub(crate)` / `pub(super)` visibility group.
            ")" if i >= 4 && toks[i - 4].text == "pub" && toks[i - 3].text == "(" => i -= 4,
            "]" => {
                // Attribute group: find its `[`, require a leading `#`.
                let mut depth = 0usize;
                let mut k = i - 1;
                let open = loop {
                    match toks[k].text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break Some(k);
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break None;
                    }
                    k -= 1;
                };
                match open {
                    Some(open) if open > 0 && toks[open - 1].text == "#" => i = open - 1,
                    _ => return i,
                }
            }
            _ => return i,
        }
    }
}

/// Last token of the fn item: the close brace of its body, or the `;`
/// of a bodyless declaration.
fn item_end(toks: &[Token], fn_idx: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(fn_idx) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth == 0 => return k,
            "{" if depth == 0 => return matching_close(toks, k).unwrap_or(toks.len() - 1),
            _ => {}
        }
    }
    toks.len() - 1
}
