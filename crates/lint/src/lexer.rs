//! A hand-rolled, token-level lexer for Rust source.
//!
//! This is deliberately **not** a parser: the lint rules (see
//! [`crate::rules`]) only need a faithful token stream in which string
//! literals, character literals, comments, and raw strings can never be
//! confused with code. That property is what lets the rules grep for
//! `std::sync::atomic` without tripping over the same path mentioned in
//! a doc comment or embedded in an error-message string — and it is why
//! `cilkm-lint` can lint its own source, whose rule tables spell those
//! very paths out as string literals.
//!
//! The lexer keeps three side-products the rules consume:
//!
//! * the significant-token stream ([`Token`]) with line numbers,
//! * every comment, classified, with its text and line ([`Comment`]) —
//!   waivers (`// lint: allow(...)`), hot-path markers
//!   (`// lint: hot-path`) and `// SAFETY:` rationales live here,
//! * raw line count, for end-of-file diagnostics.

/// One significant (non-comment, non-whitespace) token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token text. Identifiers and keywords carry their name;
    /// punctuation is split into single characters except for `::`,
    /// which is kept whole because every rule works on paths.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Lexical class.
    pub kind: TokenKind,
}

/// Lexical class of a [`Token`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String / char / byte-string literal (text is the *raw source
    /// slice including quotes*; rules never look inside).
    Literal,
    /// Numeric literal.
    Number,
    /// Punctuation (single char, or the two-char path separator `::`).
    Punct,
    /// A lifetime such as `'scope` (kept distinct so `'a` is never
    /// mistaken for an unterminated char literal downstream).
    Lifetime,
}

/// A comment, kept out of the token stream but preserved for the rules
/// that read waivers, hot-path markers, and `// SAFETY:` rationales.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the delimiters (`//`, `///`, `/* */`), not
    /// trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True for `//`-style (line) comments, false for block comments.
    pub is_line: bool,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// Total number of lines in the file.
    pub lines: u32,
}

impl Lexed {
    /// Comments on exactly `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// degrades to best-effort tokens (an unterminated string swallows the
/// rest of the file, which is also what rustc would reject).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                // Strip a doc-comment's third slash or bang.
                let start = match bytes.get(start) {
                    Some(b'/') | Some(b'!') => start + 1,
                    _ => start,
                };
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: src[start..j].to_string(),
                    line,
                    is_line: true,
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                    is_line: false,
                });
                i = j;
            }
            b'"' => {
                let (j, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    text: src[i..j].to_string(),
                    line,
                    kind: TokenKind::Literal,
                });
                line += newlines;
                i = j;
            }
            b'r' | b'b'
                if is_raw_string_start(bytes, i)
                    || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) =>
            {
                let (j, newlines) = if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                    let (j, n) = scan_string(bytes, i + 1);
                    (j, n)
                } else {
                    scan_raw_string(bytes, i)
                };
                out.tokens.push(Token {
                    text: src[i..j].to_string(),
                    line,
                    kind: TokenKind::Literal,
                });
                line += newlines;
                i = j;
            }
            b'\'' => {
                // Either a char literal or a lifetime. A lifetime is `'`
                // followed by an identifier NOT closed by another quote.
                if let Some(j) = scan_char_literal(bytes, i) {
                    out.tokens.push(Token {
                        text: src[i..j].to_string(),
                        line,
                        kind: TokenKind::Literal,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        text: src[i..j].to_string(),
                        line,
                        kind: TokenKind::Lifetime,
                    });
                    i = j;
                }
            }
            _ if b.is_ascii_digit() => {
                let mut j = i + 1;
                // Numbers may embed `_`, `.`, type suffixes, hex/oct/bin
                // alphabets and exponents; none of the rules read
                // numbers, so a greedy ident-ish scan is fine (it must
                // only not swallow `..` range punctuation).
                while j < bytes.len()
                    && (is_ident_byte(bytes[j])
                        || (bytes[j] == b'.'
                            && bytes.get(j + 1) != Some(&b'.')
                            && bytes
                                .get(j + 1)
                                .is_some_and(|c| c.is_ascii_digit() || *c == b' ' || *c == b'\n')))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    text: src[i..j].to_string(),
                    line,
                    kind: TokenKind::Number,
                });
                i = j;
            }
            _ if is_ident_start(b) => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    text: src[i..j].to_string(),
                    line,
                    kind: TokenKind::Ident,
                });
                i = j;
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    text: "::".to_string(),
                    line,
                    kind: TokenKind::Punct,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Token {
                    text: (b as char).to_string(),
                    line,
                    kind: TokenKind::Punct,
                });
                i += 1;
            }
        }
    }
    out.lines = line;
    out
}

/// Scans a `"..."` string starting at the opening quote; returns the
/// index one past the closing quote and the number of newlines crossed.
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut j = start + 1;
    let mut newlines = 0;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// True when `r"`, `r#"`, `br"`, `br#"`... begins at `i`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a raw string `r##"..."##` starting at `r`/`b`; returns the end
/// index and newlines crossed.
fn scan_raw_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut j = start;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

/// Scans a char literal at `'`; returns its end, or `None` if this is a
/// lifetime rather than a char literal.
fn scan_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote.
        let mut j = i + 2;
        if j < bytes.len() {
            j += 1; // escaped char
        }
        // \u{...} escapes.
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    if bytes.get(i + 2) == Some(&b'\'') && next != b'\'' {
        return Some(i + 3);
    }
    None
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // std::sync::atomic in a comment
            /* parking_lot::Mutex in a block */
            let s = "std::sync::atomic::AtomicUsize";
            let r = r#"parking_lot"#;
            use std::sync::Arc;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"atomic".to_string()));
        assert!(!ids.contains(&"parking_lot".to_string()));
        assert!(ids.contains(&"Arc".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("std::sync::atomic"));
    }

    #[test]
    fn path_separator_is_one_token() {
        let lexed = lex("a::b");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"x\ny\";\nuse b;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ c */ use z;";
        let ids = idents(src);
        assert_eq!(ids, ["use", "z"]);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let lexed = lex("/// doc text\n//! inner doc\n// plain");
        assert_eq!(lexed.comments[0].text, " doc text");
        assert_eq!(lexed.comments[1].text, " inner doc");
        assert_eq!(lexed.comments[2].text, " plain");
    }
}
