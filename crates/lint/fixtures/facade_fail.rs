//! Fixture: every flavor of facade violation the `raw-sync` rule
//! catches — atomic path, sync group import, parking_lot, and both
//! spellings of thread parking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

use parking_lot::RwLock;

pub fn park_both_ways() {
    std::thread::park_timeout(std::time::Duration::from_millis(1));
    thread::park();
}

pub fn count(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub struct Raw {
    pub m: Mutex<u64>,
    pub cv: Condvar,
    pub rw: RwLock<u64>,
}
