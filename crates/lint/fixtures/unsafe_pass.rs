//! Fixture: well-documented unsafe contracts — every `unsafe impl`
//! carries a `// SAFETY:` rationale directly above it.

pub struct Handle(*mut u8);

// SAFETY: the pointer is uniquely owned by the handle and never
// aliased, so ownership transfers wholesale between threads.
unsafe impl Send for Handle {}

// SAFETY: all methods take `&self` and only compare the pointer's
// address; no thread can reach the pointee through a shared handle.
unsafe impl Sync for Handle {}
