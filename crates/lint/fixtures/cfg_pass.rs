//! Fixture: cfg hygiene — every named feature is declared by the
//! owning crate (the test supplies `trace` and `model`), including
//! nested predicates, `cfg_attr`, and the `cfg!` expression macro.

#[cfg(feature = "trace")]
pub fn traced() {}

#[cfg(all(test, feature = "model"))]
mod model_tests {}

#[cfg_attr(feature = "trace", inline(never))]
pub fn maybe_outlined() {}

pub fn compiled() -> bool {
    cfg!(feature = "trace")
}
