//! Fixture: facade-clean source. Sync primitives come in through the
//! crate's msync facade; the one raw import carries a justified waiver;
//! banned paths inside strings and comments must not fire.

use crate::msync::atomic::{AtomicUsize, Ordering};
use crate::msync::Mutex;

// lint: allow(raw-sync, fixture: Relaxed-only monitoring counter, never part of a modeled protocol)
use std::sync::atomic::AtomicU64;

/// Mentions of `std::sync::Mutex` in comments are not code.
pub const DOC: &str = "std::sync::Mutex and parking_lot are banned in code";

pub fn tick(c: &AtomicUsize, m: &Mutex<u64>, raw: &AtomicU64) -> usize {
    *m.lock() += raw.load(Ordering::Relaxed);
    c.fetch_add(1, Ordering::Relaxed)
}
