//! bounded-model fail fixture: silent coverage regressions in a model
//! test file — a re-tightened preemption bound and an unexplained
//! `#[ignore]`.

use cilkm_checker as checker;

#[test]
fn quietly_rebounded_test() {
    let config = checker::Config {
        preemptions: Some(2),
        ..checker::Config::default()
    };
    checker::model_with(config, || {});
}

#[ignore]
#[test]
fn quietly_disabled_test() {
    checker::model(|| {});
}
