//! Fixture: a facade in a sanitize-capable crate whose ops forgot their
//! sanitizer branches — invisible to the detectors, caught by the rule.

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(not(feature = "model"))]
pub(crate) use std::sync::atomic;

/// Has a model branch but no sanitize branch: the sanitizer never sees
/// these writes.
pub(crate) fn note_write(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::note_write(addr);
    #[cfg(not(feature = "model"))]
    let _ = addr;
}

/// No hook and no waiver.
#[inline]
pub(crate) fn spin_hint() {
    std::hint::spin_loop();
}
