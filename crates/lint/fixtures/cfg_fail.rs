//! Fixture: cfg violations — a one-edit typo of a declared feature
//! (gets a "did you mean" hint) and a feature the crate never declares.

#[cfg(feature = "trce")]
pub fn traced() {}

#[cfg_attr(feature = "instrument", inline(never))]
pub fn counted() {}
