//! bounded-model pass fixture: unbounded model tests, plus properly
//! waived bounds where exhaustion genuinely cannot finish.

use cilkm_checker as checker;

#[test]
fn protocol_is_exhaustively_checked() {
    checker::model_with(checker::Config::dpor(), || {
        // preemptions: None via Config::dpor() — unbounded is the default
        // posture; nothing to waive.
    });
}

#[test]
fn cas_loop_protocol_is_bounded_with_cause() {
    let config = checker::Config {
        // lint: allow(bounded-model, CAS-loop interleavings outgrow exhaustion; the seeded PCT sweep covers the unbounded depths)
        preemptions: Some(3),
        ..checker::Config::default()
    };
    checker::model_with(config, || {});
}

// lint: allow(bounded-model, flaky under qemu; tracked for re-enable in CI issue 42)
#[ignore]
#[test]
fn quarantined_model_test() {
    checker::model(|| {});
}
