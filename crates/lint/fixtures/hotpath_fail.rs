//! Fixture: one annotated function committing all four hot-path sins —
//! a formatting macro, an allocating constructor, an allocating
//! conversion method, and panicking `[]` indexing.

// lint: hot-path
#[inline(always)]
pub fn lookup(xs: &[u64], idx: usize) -> u64 {
    let label = format!("idx={idx}");
    let boxed = Box::new(idx);
    let owned = label.to_owned();
    drop((boxed, owned));
    xs[idx]
}
