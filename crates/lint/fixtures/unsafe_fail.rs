//! Fixture: unsafe-contract violations — an `unsafe impl Send` with no
//! `// SAFETY:` comment at all, and a rationale left empty.

pub struct Handle(*mut u8);

unsafe impl Send for Handle {}

// SAFETY:
unsafe impl Sync for Handle {}
