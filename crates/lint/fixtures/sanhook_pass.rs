//! Fixture: a sanitize-capable msync facade where every op is covered —
//! each fn either carries the three-way `cfg(feature = "sanitize")`
//! branch calling into `cilkm_san`, or waives the rule with a reason.

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) use cilkm_san::sync::atomic;
#[cfg(not(any(feature = "model", feature = "sanitize")))]
pub(crate) use std::sync::atomic;

/// Covered by a direct hook call under the sanitize gate.
pub(crate) fn note_write(addr: usize) {
    #[cfg(feature = "model")]
    cilkm_checker::note_write(addr);
    #[cfg(all(not(feature = "model"), feature = "sanitize"))]
    cilkm_san::shadow_write(addr, "Slot");
    #[cfg(not(any(feature = "model", feature = "sanitize")))]
    let _ = addr;
}

/// Covered by the cfg gate alone (delegates to an instrumented spawn).
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) fn spawn(f: impl FnOnce() + Send + 'static) {
    cilkm_san::thread::spawn_with(None, None, f);
}

/// Nothing to trace: waived with a reason.
// lint: allow(san-hook-coverage, pure CPU relax hint; no memory effect to trace)
#[inline]
pub(crate) fn spin_hint() {
    std::hint::spin_loop();
}
