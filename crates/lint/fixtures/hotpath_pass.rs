//! Fixture: a clean hot-path function — cheap asserts are allowed,
//! pointer arithmetic replaces panicking indexing, and the cold miss
//! companion below is free to allocate because it is not annotated.

// lint: hot-path
#[inline(always)]
pub fn lookup(table: *const u64, idx: usize, len: usize) -> u64 {
    debug_assert!(idx < len);
    // SAFETY: `idx < len` is asserted above and `table` points at `len`
    // initialized slots, so the offset read stays in bounds.
    unsafe { *table.add(idx) }
}

#[cold]
#[inline(never)]
pub fn lookup_miss(idx: usize) -> String {
    format!("miss at {idx}")
}
