//! Fixture tests: each rule family has a passing and a failing fixture
//! under `fixtures/` (a directory the workspace walker deliberately
//! skips, so the deliberate violations never fail a real run), plus
//! report-level guarantees — stable sort and a byte-identical JSON
//! round trip.

use std::path::PathBuf;

use cilkm_lint::manifest::Crate;
use cilkm_lint::report::{Report, Rule};
use cilkm_lint::rules::unsafe_ledger::{self, LedgerEntry};
use cilkm_lint::scan_file;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Scans one fixture as if it were `crates/fixture/src/<name>` in a
/// crate declaring `features`.
fn scan(name: &str, features: &[&str]) -> (Report, Vec<LedgerEntry>) {
    let krate = Crate {
        dir: PathBuf::from("crates/fixture"),
        features: features.iter().map(|s| s.to_string()).collect(),
        files: Vec::new(),
    };
    let mut report = Report::default();
    let mut ledger = Vec::new();
    scan_file(
        &format!("crates/fixture/src/{name}"),
        &fixture(name),
        &krate,
        &mut report,
        &mut ledger,
    );
    report.sort();
    (report, ledger)
}

fn unwaived(report: &Report, rule: Rule) -> Vec<String> {
    report
        .unwaived()
        .filter(|f| f.rule == rule)
        .map(|f| f.message.clone())
        .collect()
}

#[test]
fn facade_pass_fixture_is_clean() {
    let (r, _) = scan("facade_pass.rs", &[]);
    assert_eq!(unwaived(&r, Rule::RawSync), Vec::<String>::new());
    // The waived import is still visible in the report for auditing.
    assert_eq!(r.findings.iter().filter(|f| f.waived.is_some()).count(), 1);
}

#[test]
fn facade_fail_fixture_fires_on_every_violation_flavor() {
    let (r, _) = scan("facade_fail.rs", &[]);
    let msgs = unwaived(&r, Rule::RawSync);
    assert_eq!(msgs.len(), 6, "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`std::sync::atomic`")));
    assert!(msgs.iter().any(|m| m.contains("`std::sync::Mutex`")));
    assert!(msgs.iter().any(|m| m.contains("`std::sync::Condvar`")));
    assert!(msgs.iter().any(|m| m.contains("`parking_lot`")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`std::thread::park_timeout`")));
    assert!(msgs.iter().any(|m| m.contains("`thread::park` resolves")));
}

#[test]
fn facade_rule_skips_exempt_paths() {
    let krate = Crate {
        dir: PathBuf::from("crates/fixture"),
        features: Vec::new(),
        files: Vec::new(),
    };
    for path in [
        "crates/fixture/src/msync.rs",
        "crates/fixture/tests/integration.rs",
        "crates/fixture/examples/demo.rs",
        "crates/checker/src/sync.rs",
        "crates/san/src/sync.rs",
    ] {
        let mut report = Report::default();
        let mut ledger = Vec::new();
        scan_file(
            path,
            &fixture("facade_fail.rs"),
            &krate,
            &mut report,
            &mut ledger,
        );
        assert_eq!(report.count(Rule::RawSync), 0, "{path} should be exempt");
    }
}

#[test]
fn hotpath_pass_fixture_is_clean() {
    let (r, _) = scan("hotpath_pass.rs", &[]);
    assert_eq!(unwaived(&r, Rule::HotPath), Vec::<String>::new());
}

#[test]
fn hotpath_fail_fixture_fires_on_all_four_sins() {
    let (r, _) = scan("hotpath_fail.rs", &[]);
    let msgs = unwaived(&r, Rule::HotPath);
    assert_eq!(msgs.len(), 4, "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`format!`")));
    assert!(msgs.iter().any(|m| m.contains("`Box::new`")));
    assert!(msgs.iter().any(|m| m.contains("`.to_owned()`")));
    assert!(msgs.iter().any(|m| m.contains("panicking `[]` indexing")));
    // Every finding names the function the marker annotated.
    assert!(msgs.iter().all(|m| m.contains("`lookup`")));
}

#[test]
fn cfg_pass_fixture_is_clean_with_declared_features() {
    let (r, _) = scan("cfg_pass.rs", &["model", "trace"]);
    assert_eq!(unwaived(&r, Rule::CfgFeature), Vec::<String>::new());
}

#[test]
fn cfg_fail_fixture_fires_with_typo_hint() {
    let (r, _) = scan("cfg_fail.rs", &["trace"]);
    let msgs = unwaived(&r, Rule::CfgFeature);
    assert_eq!(msgs.len(), 2, "{msgs:#?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("`trce`") && m.contains("did you mean `trace`?")));
    assert!(msgs.iter().any(|m| m.contains("`instrument`")));
}

#[test]
fn unsafe_pass_fixture_is_clean_and_fills_the_ledger() {
    let (r, ledger) = scan("unsafe_pass.rs", &[]);
    assert_eq!(unwaived(&r, Rule::UnsafeLedger), Vec::<String>::new());
    let kinds: Vec<&str> = ledger.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        ["safety-comment", "safety-comment", "impl-send", "impl-sync"]
    );
    assert!(ledger.iter().any(|e| e.subject == "Handle"));
}

#[test]
fn unsafe_fail_fixture_fires_on_missing_and_empty_rationale() {
    let (r, _) = scan("unsafe_fail.rs", &[]);
    let msgs = unwaived(&r, Rule::UnsafeLedger);
    assert_eq!(msgs.len(), 2, "{msgs:#?}");
    assert!(msgs
        .iter()
        .any(|m| m.contains("`unsafe impl Send for Handle` without a `// SAFETY:`")));
    assert!(msgs.iter().any(|m| m.contains("empty rationale")));
}

#[test]
fn bounded_pass_fixture_is_clean() {
    let (r, _) = scan("bounded_pass.rs", &[]);
    assert_eq!(unwaived(&r, Rule::BoundedModel), Vec::<String>::new());
    // Both waivers are visible in the report for auditing.
    assert_eq!(
        r.findings
            .iter()
            .filter(|f| f.rule == Rule::BoundedModel && f.waived.is_some())
            .count(),
        2
    );
}

#[test]
fn bounded_fail_fixture_fires_on_bound_and_ignore() {
    let (r, _) = scan("bounded_fail.rs", &[]);
    let msgs = unwaived(&r, Rule::BoundedModel);
    assert_eq!(msgs.len(), 2, "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`preemptions: Some(_)`")));
    assert!(msgs.iter().any(|m| m.contains("`#[ignore]`d model test")));
}

#[test]
fn bounded_rule_skips_non_model_files() {
    let krate = Crate {
        dir: PathBuf::from("crates/fixture"),
        features: Vec::new(),
        files: Vec::new(),
    };
    // Same offending tokens, but in a file that neither mentions
    // `cilkm_checker` nor has "model" in its name: out of scope.
    let src = "struct Config { preemptions: Option<usize> }\n\
               fn f() -> Config { Config { preemptions: Some(3) } }\n\
               #[ignore]\n#[test]\nfn unrelated() {}\n";
    for path in [
        "crates/fixture/src/scheduler.rs",
        "crates/checker/src/exec.rs",
    ] {
        let mut report = Report::default();
        let mut ledger = Vec::new();
        scan_file(path, src, &krate, &mut report, &mut ledger);
        assert_eq!(
            report.count(Rule::BoundedModel),
            0,
            "{path} should be out of scope"
        );
    }
    // The checker's own implementation stays exempt even though it names
    // both `cilkm_checker` and the bounded default.
    let mut report = Report::default();
    let mut ledger = Vec::new();
    scan_file(
        "crates/checker/src/exec.rs",
        &format!("use cilkm_checker;\n{src}"),
        &krate,
        &mut report,
        &mut ledger,
    );
    assert_eq!(report.count(Rule::BoundedModel), 0);
}

/// Scans a sanhook fixture as if it were the msync facade of a crate
/// declaring `features` (the rule only looks at `msync.rs` files).
fn scan_as_msync(name: &str, features: &[&str]) -> Report {
    let krate = Crate {
        dir: PathBuf::from("crates/fixture"),
        features: features.iter().map(|s| s.to_string()).collect(),
        files: Vec::new(),
    };
    let mut report = Report::default();
    let mut ledger = Vec::new();
    scan_file(
        "crates/fixture/src/msync.rs",
        &fixture(name),
        &krate,
        &mut report,
        &mut ledger,
    );
    report.sort();
    report
}

#[test]
fn sanhook_pass_fixture_is_clean() {
    let r = scan_as_msync("sanhook_pass.rs", &["model", "sanitize"]);
    assert_eq!(unwaived(&r, Rule::SanHook), Vec::<String>::new());
    // The waived relax hint stays visible in the report for auditing.
    assert_eq!(
        r.findings
            .iter()
            .filter(|f| f.rule == Rule::SanHook && f.waived.is_some())
            .count(),
        1
    );
}

#[test]
fn sanhook_fail_fixture_fires_on_every_uncovered_op() {
    let r = scan_as_msync("sanhook_fail.rs", &["model", "sanitize"]);
    let msgs = unwaived(&r, Rule::SanHook);
    assert_eq!(msgs.len(), 2, "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`note_write`")));
    assert!(msgs.iter().any(|m| m.contains("`spin_hint`")));
}

#[test]
fn sanhook_rule_is_scoped_to_sanitize_capable_facades() {
    // Same uncovered ops, but the crate never declares `sanitize`:
    // there is no hook to forget, so the rule stays silent.
    let r = scan_as_msync("sanhook_fail.rs", &["model"]);
    assert_eq!(r.count(Rule::SanHook), 0);

    // And outside msync.rs the rule does not apply even in a
    // sanitize-capable crate.
    let krate = Crate {
        dir: PathBuf::from("crates/fixture"),
        features: vec!["model".into(), "sanitize".into()],
        files: Vec::new(),
    };
    for path in [
        "crates/fixture/src/scheduler.rs",
        "crates/san/src/msync.rs",
        "crates/checker/src/msync.rs",
    ] {
        let mut report = Report::default();
        let mut ledger = Vec::new();
        scan_file(
            path,
            &fixture("sanhook_fail.rs"),
            &krate,
            &mut report,
            &mut ledger,
        );
        assert_eq!(report.count(Rule::SanHook), 0, "{path} should be exempt");
    }
}

#[test]
fn ledger_render_is_deterministic_and_diffable() {
    let (_, ledger) = scan("unsafe_pass.rs", &[]);
    let rendered = unsafe_ledger::render(&ledger);
    assert_eq!(rendered, unsafe_ledger::render(&ledger));
    assert!(rendered.contains("2 `unsafe impl Send/Sync` sites"));
    assert!(rendered.contains("2 `SAFETY:` rationales"));

    // In-sync ledger: no finding. Stale ledger: pointed finding.
    let mut report = Report::default();
    unsafe_ledger::diff_against_checked_in(&rendered, Some(&rendered), &mut report);
    assert!(report.findings.is_empty());
    let stale = rendered.replace("impl-send", "impl-was-send");
    unsafe_ledger::diff_against_checked_in(&rendered, Some(&stale), &mut report);
    assert_eq!(report.count(Rule::UnsafeLedger), 1);
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn fixture_report_round_trips_through_json() {
    // Accumulate findings from several fixtures (including a waived one)
    // into one report, as a workspace run would.
    let mut all = Report::default();
    for (name, features) in [
        ("facade_pass.rs", &["trace"][..]),
        ("facade_fail.rs", &[][..]),
        ("cfg_fail.rs", &["trace"][..]),
        ("hotpath_fail.rs", &[][..]),
    ] {
        let (r, _) = scan(name, features);
        all.findings.extend(r.findings);
    }
    all.sort();
    assert!(all.findings.iter().any(|f| f.waived.is_some()));

    let json = all.to_json();
    let back = Report::from_json(&json).unwrap();
    assert_eq!(back, all);
    assert_eq!(
        back.to_json(),
        json,
        "re-serialization must be byte-identical"
    );
}

#[test]
fn report_sort_is_stable_and_total() {
    let mut a = Report::default();
    let mut b = Report::default();
    for name in ["facade_fail.rs", "hotpath_fail.rs", "unsafe_fail.rs"] {
        let (r, _) = scan(name, &[]);
        a.findings.extend(r.findings.clone());
        // Insert in reverse order into `b`.
        for f in r.findings.into_iter().rev() {
            b.findings.insert(0, f);
        }
    }
    a.sort();
    b.sort();
    assert_eq!(a, b, "sort must not depend on insertion order");
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule, f.message.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
