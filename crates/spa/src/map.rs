//! The page-granular **SPA map** of SPAA 2012 §6.
//!
//! A SPA map is allocated on a per-page basis (4096 bytes on x86-64) and
//! holds, in this exact order:
//!
//! * a **view array** of 248 elements, each a pair of 8-byte pointers to a
//!   local view and its monoid (16 bytes per element, 3968 bytes total);
//! * a **log array** of 120 bytes containing 1-byte indices of the valid
//!   elements of the view array;
//! * the 4-byte **number of valid elements** in the view array; and
//! * the 4-byte **number of logs** in the log array.
//!
//! Invariant (§6): an empty element is represented by a pair of null
//! pointers. The view-to-log ratio is deliberately about 2:1; once the
//! number of insertions exceeds the log capacity the map *stops keeping
//! track of logs* and sequencing falls back to scanning the whole view
//! array, whose cost is amortized against the many insertions that caused
//! the overflow.
//!
//! The same layout is used in two places:
//!
//! * **private SPA maps** living inside TLMM pages (one worker's current
//!   views, reachable by virtual-address translation), and
//! * **public SPA maps** in shared heap memory (view transferal targets,
//!   §7), represented here by the owning [`SpaMapBox`].
//!
//! Because private maps live in raw page memory, the accessor type
//! [`SpaMapRef`] operates over a raw pointer; all its methods are safe to
//! *call* but construction ([`SpaMapRef::from_raw`]) is unsafe and pins
//! the aliasing contract on the caller, exactly as the Cilk-M runtime pins
//! it on its scheduling discipline.

use std::alloc::{alloc_zeroed, dealloc, Layout};

/// Number of view-array elements per SPA map (248 × 16 B = 3968 B).
pub const VIEWS_PER_MAP: usize = 248;
/// Number of 1-byte log entries per SPA map.
pub const LOG_CAPACITY: usize = 120;
/// Size of the whole map: exactly one page.
pub const MAP_SIZE: usize = 4096;

/// Sentinel stored in `nlog` after the log overflows.
const LOG_OVERFLOWED: u32 = u32::MAX;

/// One view-array element: pointers to a local view and to its monoid.
///
/// Both pointers are type-erased; the reducer layer above knows how to
/// interpret them (the monoid pointer leads to a vtable that can reduce
/// and destroy the view). An empty element is `(null, null)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct ViewPair {
    /// Pointer to the local view object (null when empty).
    pub view: *mut u8,
    /// Pointer to the monoid implementation (null when empty).
    pub monoid: *const u8,
}

impl ViewPair {
    /// The empty element: a pair of null pointers.
    pub const NULL: ViewPair = ViewPair {
        view: std::ptr::null_mut(),
        monoid: std::ptr::null(),
    };

    /// Returns `true` if this element is empty.
    #[inline]
    pub fn is_null(self) -> bool {
        self.view.is_null()
    }
}

/// The in-memory layout of one SPA map. `repr(C)` and statically asserted
/// to be exactly one page.
#[repr(C)]
pub struct SpaMapLayout {
    views: [ViewPair; VIEWS_PER_MAP],
    log: [u8; LOG_CAPACITY],
    nvalid: u32,
    nlog: u32,
}

const _: () = assert!(std::mem::size_of::<SpaMapLayout>() == MAP_SIZE);
const _: () = assert!(std::mem::align_of::<SpaMapLayout>() <= MAP_SIZE);

/// Result of inserting into a SPA map: whether the index was logged.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The index was recorded in the log array.
    Logged,
    /// The log array is full; the map is now in scan-everything mode.
    Overflowed,
}

/// An unsafe-to-construct, safe-to-use accessor over a SPA map in raw
/// memory (a TLMM page or a [`SpaMapBox`] allocation).
#[derive(Copy, Clone)]
pub struct SpaMapRef {
    ptr: *mut SpaMapLayout,
}

impl SpaMapRef {
    /// Wraps a raw pointer to page-sized, properly initialized memory.
    ///
    /// # Safety
    ///
    /// `ptr` must point to [`MAP_SIZE`] bytes, aligned for
    /// [`SpaMapLayout`], that remain valid for the life of the `SpaMapRef`
    /// and all its copies, and that start out all-zero (an all-zero page
    /// *is* a valid empty SPA map — that is why freshly `palloc`ed and
    /// recycled pages can be used directly, §7). The caller must guarantee
    /// that no two threads access the map concurrently.
    #[inline]
    pub unsafe fn from_raw(ptr: *mut u8) -> SpaMapRef {
        debug_assert!(!ptr.is_null());
        debug_assert_eq!(ptr as usize % std::mem::align_of::<SpaMapLayout>(), 0);
        SpaMapRef {
            ptr: ptr as *mut SpaMapLayout,
        }
    }

    /// Under the model checker (or the dynamic sanitizer), record a
    /// whole-map read at the map's base address: the access contract is
    /// "one thread at a time per map", so map granularity is exactly the
    /// invariant to check, and it keeps the checkers' plain-memory
    /// bookkeeping per map instead of per field. The sanitizer's shadow
    /// (not the SP-labeled reducer shadow) is the right one here: pooled
    /// maps legitimately cross logically-parallel strands when recycled.
    #[inline]
    fn note_read(&self) {
        #[cfg(feature = "model")]
        cilkm_checker::trace::note_read(self.ptr as usize, "SpaMap");
        #[cfg(all(not(feature = "model"), feature = "sanitize"))]
        cilkm_san::shadow_read(self.ptr as usize, "SpaMap");
    }

    /// Mirror of [`SpaMapRef::note_read`] for mutations.
    #[inline]
    fn note_write(&self) {
        #[cfg(feature = "model")]
        cilkm_checker::trace::note_write(self.ptr as usize, "SpaMap");
        #[cfg(all(not(feature = "model"), feature = "sanitize"))]
        cilkm_san::shadow_write(self.ptr as usize, "SpaMap");
    }

    /// Raw field accessors: every read/write goes through a fresh,
    /// immediately-dropped place expression, so no reference is ever
    /// live across a user callback (which may itself hold a `SpaMapRef`
    /// copy to this or another map).
    #[inline]
    fn nvalid_raw(&self) -> u32 {
        self.note_read();
        // SAFETY: `self.ptr` points at a live, page-aligned
        // `SpaMapLayout` (guaranteed by `from_raw`'s contract), and the
        // place expression is read and dropped immediately.
        unsafe { (*self.ptr).nvalid }
    }

    #[inline]
    fn set_nvalid_raw(&self, v: u32) {
        self.note_write();
        // SAFETY: as in `nvalid_raw`; the single-thread-per-map contract
        // makes the store non-racing.
        unsafe { (*self.ptr).nvalid = v }
    }

    #[inline]
    fn nlog_raw(&self) -> u32 {
        self.note_read();
        // SAFETY: as in `nvalid_raw`.
        unsafe { (*self.ptr).nlog }
    }

    #[inline]
    fn set_nlog_raw(&self, v: u32) {
        self.note_write();
        // SAFETY: as in `set_nvalid_raw`.
        unsafe { (*self.ptr).nlog = v }
    }

    #[inline]
    fn view_raw(&self, idx: usize) -> ViewPair {
        debug_assert!(idx < VIEWS_PER_MAP);
        self.note_read();
        // SAFETY: as in `nvalid_raw`; `idx` is bounds-checked above and
        // the borrow ends within this expression.
        unsafe { (&(*self.ptr).views)[idx] }
    }

    #[inline]
    fn set_view_raw(&self, idx: usize, pair: ViewPair) {
        self.note_write();
        // SAFETY: as in `view_raw`; the mutable borrow is created and
        // dropped inside this single statement.
        unsafe { (&mut (*self.ptr).views)[idx] = pair }
    }

    #[inline]
    fn log_raw(&self, i: usize) -> u8 {
        self.note_read();
        // SAFETY: as in `view_raw` (the log array indexing panics rather
        // than going out of bounds).
        unsafe { (&(*self.ptr).log)[i] }
    }

    #[inline]
    fn set_log_raw(&self, i: usize, v: u8) {
        self.note_write();
        // SAFETY: as in `set_view_raw`.
        unsafe { (&mut (*self.ptr).log)[i] = v }
    }

    /// Number of valid (non-null) elements.
    #[inline]
    pub fn nvalid(&self) -> usize {
        self.nvalid_raw() as usize
    }

    /// Returns `true` if the map holds no views.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nvalid_raw() == 0
    }

    /// Returns `true` if the log has overflowed (scan-everything mode).
    #[inline]
    pub fn log_overflowed(&self) -> bool {
        self.nlog_raw() == LOG_OVERFLOWED
    }

    /// Number of live log entries (0 after overflow; see
    /// [`SpaMapRef::log_overflowed`]).
    #[inline]
    pub fn nlog(&self) -> usize {
        let n = self.nlog_raw();
        if n == LOG_OVERFLOWED {
            0
        } else {
            n as usize
        }
    }

    /// Constant-time read of element `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> ViewPair {
        self.view_raw(idx)
    }

    /// Raw pointer to element `idx` — the address a reducer's `tlmm_addr`
    /// designates. The memory-mapped lookup fast path reads `(*ptr).view`
    /// directly: one load to fetch this address from the reducer object,
    /// one load through it, one predictable null check.
    #[inline]
    pub fn slot_ptr(&self, idx: usize) -> *mut ViewPair {
        debug_assert!(idx < VIEWS_PER_MAP);
        // SAFETY: `self.ptr` is a live `SpaMapLayout` and
        // `idx < VIEWS_PER_MAP`, so the offset stays inside the views
        // array; only the address is formed here, no dereference.
        unsafe { (*self.ptr).views.as_mut_ptr().add(idx) }
    }

    /// Inserts a pair at `idx` (which must currently be empty), logging
    /// the index if the log still has room.
    pub fn insert(&self, idx: usize, pair: ViewPair) -> InsertOutcome {
        debug_assert!(!pair.is_null(), "inserting a null pair");
        debug_assert!(
            self.view_raw(idx).is_null(),
            "insert over occupied SPA slot {idx}"
        );
        self.set_view_raw(idx, pair);
        self.set_nvalid_raw(self.nvalid_raw() + 1);
        self.debug_validate_counts();
        let nlog = self.nlog_raw();
        if nlog == LOG_OVERFLOWED {
            return InsertOutcome::Overflowed;
        }
        if (nlog as usize) < LOG_CAPACITY {
            self.set_log_raw(nlog as usize, idx as u8);
            self.set_nlog_raw(nlog + 1);
            InsertOutcome::Logged
        } else {
            // The paper: once the number of logs exceeds the log array
            // length, stop keeping track of logs; the cost of scanning the
            // whole view array amortizes against these insertions.
            self.set_nlog_raw(LOG_OVERFLOWED);
            InsertOutcome::Overflowed
        }
    }

    /// Removes the pair at `idx`, returning it. The slot becomes empty;
    /// the log is left as-is (stale entries are skipped by sequencing).
    pub fn remove(&self, idx: usize) -> ViewPair {
        let pair = self.view_raw(idx);
        debug_assert!(!pair.is_null(), "remove of empty SPA slot {idx}");
        self.set_view_raw(idx, ViewPair::NULL);
        self.set_nvalid_raw(self.nvalid_raw() - 1);
        self.debug_validate_counts();
        pair
    }

    /// Sequences through the valid elements without modifying the map.
    ///
    /// Walks the log (deduplicating stale/duplicate entries with a 248-bit
    /// mask) or, after overflow, scans the entire view array. Linear time
    /// in `max(nlog, overflow ? 248 : 0)`.
    pub fn for_each_valid(&self, mut f: impl FnMut(usize, ViewPair)) {
        if self.nvalid_raw() == 0 {
            return;
        }
        if self.nlog_raw() == LOG_OVERFLOWED {
            for idx in 0..VIEWS_PER_MAP {
                let pair = self.view_raw(idx);
                if !pair.is_null() {
                    f(idx, pair);
                }
            }
        } else {
            let mut seen = [0u64; 4];
            for i in 0..self.nlog_raw() as usize {
                let idx = self.log_raw(i) as usize;
                let (w, b) = (idx / 64, idx % 64);
                if seen[w] & (1 << b) != 0 {
                    continue;
                }
                seen[w] |= 1 << b;
                let pair = self.view_raw(idx);
                if !pair.is_null() {
                    f(idx, pair);
                }
            }
        }
    }

    /// Sequences through the valid elements, zeroing each as it goes, and
    /// resets the counts: the map is empty afterwards. This is the
    /// primitive behind both **view transferal** (private → public copy
    /// that simultaneously zeros the private map, §7) and the hypermerge
    /// sweep over the smaller view set.
    pub fn drain(&self, mut f: impl FnMut(usize, ViewPair)) {
        if self.nvalid_raw() != 0 {
            if self.nlog_raw() == LOG_OVERFLOWED {
                for idx in 0..VIEWS_PER_MAP {
                    let pair = self.view_raw(idx);
                    if !pair.is_null() {
                        self.set_view_raw(idx, ViewPair::NULL);
                        f(idx, pair);
                    }
                }
            } else {
                for i in 0..self.nlog_raw() as usize {
                    let idx = self.log_raw(i) as usize;
                    let pair = self.view_raw(idx);
                    if !pair.is_null() {
                        self.set_view_raw(idx, ViewPair::NULL);
                        f(idx, pair);
                    }
                }
            }
        }
        // Footnote 6: only the number of logs and the view array must
        // contain zeros for the map to be recyclable.
        self.set_nvalid_raw(0);
        self.set_nlog_raw(0);
        self.debug_validate_counts();
    }

    /// Bulk view transferal: moves every valid element of this map into
    /// `dst` — which must be empty — **carrying the log state over
    /// verbatim**, and leaves this map empty (counts reset per footnote
    /// 6). Unlike pairing [`SpaMapRef::drain`] with per-element
    /// [`SpaMapRef::insert`], the destination does not replay the logging
    /// protocol: live log entries (stale ones included — sequencing skips
    /// nulls) are copied as bytes and an overflowed source leaves the
    /// destination in scan-everything mode, so the destination sequences
    /// exactly like the source would have. Returns the number of views
    /// moved.
    ///
    /// The destination may carry *stale* log state of its own (entries —
    /// or even an overflow marker — left behind by an insert/remove
    /// history; `remove` never rewinds the log): with every view slot
    /// null those entries can never be sequenced, so the carried-over
    /// log count simply overwrites them.
    pub fn drain_into(&self, dst: SpaMapRef) -> usize {
        debug_assert!(dst.is_empty(), "drain_into over a non-empty map");
        let moved = self.nvalid_raw();
        if moved != 0 {
            let nlog = self.nlog_raw();
            if nlog == LOG_OVERFLOWED {
                for idx in 0..VIEWS_PER_MAP {
                    let pair = self.view_raw(idx);
                    if !pair.is_null() {
                        self.set_view_raw(idx, ViewPair::NULL);
                        dst.set_view_raw(idx, pair);
                    }
                }
                dst.set_nlog_raw(LOG_OVERFLOWED);
            } else {
                for i in 0..nlog as usize {
                    let idx = self.log_raw(i) as usize;
                    dst.set_log_raw(i, idx as u8);
                    let pair = self.view_raw(idx);
                    if !pair.is_null() {
                        self.set_view_raw(idx, ViewPair::NULL);
                        dst.set_view_raw(idx, pair);
                    }
                }
                dst.set_nlog_raw(nlog);
            }
            dst.set_nvalid_raw(moved);
        }
        self.set_nvalid_raw(0);
        self.set_nlog_raw(0);
        self.debug_validate_counts();
        dst.debug_validate_counts();
        moved as usize
    }

    /// Debug-build invariant check: `nvalid` must equal the number of
    /// non-null view slots, every live log entry must index a real slot,
    /// and a non-overflowed log can never exceed its capacity. Release
    /// builds compile this to nothing.
    #[inline]
    fn debug_validate_counts(&self) {
        #[cfg(debug_assertions)]
        {
            let mut occupied = 0u32;
            for idx in 0..VIEWS_PER_MAP {
                if !self.view_raw(idx).is_null() {
                    occupied += 1;
                }
            }
            debug_assert_eq!(
                self.nvalid_raw(),
                occupied,
                "SPA map nvalid disagrees with occupied slots"
            );
            let nlog = self.nlog_raw();
            if nlog != LOG_OVERFLOWED {
                debug_assert!(
                    nlog as usize <= LOG_CAPACITY,
                    "SPA map log count {nlog} exceeds capacity"
                );
                for i in 0..nlog as usize {
                    debug_assert!(
                        (self.log_raw(i) as usize) < VIEWS_PER_MAP,
                        "SPA map log entry {i} out of range"
                    );
                }
            }
        }
    }

    /// Resets the map to empty without visiting elements (test helper).
    pub fn clear_all(&self) {
        self.drain(|_, _| {});
    }

    /// Forces the map into log-overflow (scan-everything) mode. Used by
    /// the SPA ablation bench and by tests of the fallback path.
    pub fn force_log_overflow(&self) {
        self.set_nlog_raw(LOG_OVERFLOWED);
    }
}

// SAFETY: the raw pointer is a capability handed around under the
// runtime's protocol (one thread accesses a map at a time); the data it
// points at is plain memory with no thread affinity.
unsafe impl Send for SpaMapRef {}

/// An owned, heap-allocated SPA map in shared memory — a **public SPA
/// map** in the paper's terms (§7). Page-aligned and zero-initialized, so
/// it is born empty and recyclable.
pub struct SpaMapBox {
    ptr: *mut u8,
}

impl SpaMapBox {
    /// Allocates a fresh empty map.
    pub fn new() -> SpaMapBox {
        let layout = Layout::from_size_align(MAP_SIZE, MAP_SIZE).expect("static layout");
        // SAFETY: `layout` is the valid, non-zero-sized one-page layout.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "allocation failure for public SPA map");
        SpaMapBox { ptr }
    }

    /// Accessor over the owned map.
    #[inline]
    pub fn as_ref(&self) -> SpaMapRef {
        // SAFETY: `self.ptr` is the page-aligned, zero-initialized (and
        // hence validly laid out) map this box allocated and still owns.
        unsafe { SpaMapRef::from_raw(self.ptr) }
    }
}

impl Default for SpaMapBox {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SpaMapBox {
    fn drop(&mut self) {
        // Dropping a non-empty map would leak the views it references;
        // the reducer runtime always drains before recycling. Be loud in
        // debug builds, tolerant (leak, don't crash) in release.
        debug_assert!(
            self.as_ref().is_empty(),
            "dropping a non-empty public SPA map leaks views"
        );
        let layout = Layout::from_size_align(MAP_SIZE, MAP_SIZE).expect("static layout");
        // SAFETY: `self.ptr` was obtained from `alloc_zeroed` with this
        // exact layout and is freed exactly once (Drop).
        unsafe { dealloc(self.ptr, layout) };
    }
}

// SAFETY: the box exclusively owns its heap page; see `SpaMapRef`'s
// `Send` rationale for the access discipline.
unsafe impl Send for SpaMapBox {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(tag: usize) -> ViewPair {
        // Fabricate distinct non-null dangling pointers; tests never
        // dereference them.
        ViewPair {
            view: (0x1000 + tag * 16) as *mut u8,
            monoid: 0x8000 as *const u8,
        }
    }

    #[test]
    fn layout_is_exactly_one_page() {
        assert_eq!(std::mem::size_of::<SpaMapLayout>(), 4096);
        assert_eq!(std::mem::size_of::<ViewPair>(), 16);
    }

    #[test]
    fn zeroed_memory_is_an_empty_map() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        assert!(m.is_empty());
        assert_eq!(m.nlog(), 0);
        assert!(!m.log_overflowed());
        for i in 0..VIEWS_PER_MAP {
            assert!(m.get(i).is_null());
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        assert_eq!(m.insert(5, pair(1)), InsertOutcome::Logged);
        assert_eq!(m.nvalid(), 1);
        assert_eq!(m.get(5), pair(1));
        let removed = m.remove(5);
        assert_eq!(removed, pair(1));
        assert!(m.is_empty());
    }

    #[test]
    fn drain_visits_each_valid_once_and_empties() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        m.insert(1, pair(1));
        m.insert(9, pair(9));
        m.insert(200, pair(200));
        m.remove(9);
        let mut seen = Vec::new();
        m.drain(|idx, p| seen.push((idx, p)));
        seen.sort_by_key(|e| e.0);
        assert_eq!(seen, vec![(1, pair(1)), (200, pair(200))]);
        assert!(m.is_empty());
        assert_eq!(m.nlog(), 0);
        // Map is recyclable: re-insert works and logs from scratch.
        assert_eq!(m.insert(1, pair(7)), InsertOutcome::Logged);
        m.clear_all();
    }

    #[test]
    fn log_overflow_switches_to_scan_mode() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        for i in 0..LOG_CAPACITY {
            assert_eq!(m.insert(i, pair(i)), InsertOutcome::Logged);
        }
        assert_eq!(
            m.insert(LOG_CAPACITY, pair(LOG_CAPACITY)),
            InsertOutcome::Overflowed
        );
        assert!(m.log_overflowed());
        // More inserts are fine and unlogged.
        assert_eq!(m.insert(247, pair(247)), InsertOutcome::Overflowed);
        assert_eq!(m.nvalid(), LOG_CAPACITY + 2);

        // Sequencing still finds everything by scanning.
        let mut count = 0;
        m.for_each_valid(|_, _| count += 1);
        assert_eq!(count, LOG_CAPACITY + 2);

        let mut drained = 0;
        m.drain(|_, _| drained += 1);
        assert_eq!(drained, LOG_CAPACITY + 2);
        assert!(m.is_empty());
        assert!(!m.log_overflowed(), "drain resets overflow state");
    }

    #[test]
    fn drain_into_moves_views_and_log_state() {
        let src_b = SpaMapBox::new();
        let dst_b = SpaMapBox::new();
        let src = src_b.as_ref();
        let dst = dst_b.as_ref();
        src.insert(1, pair(1));
        src.insert(9, pair(9));
        src.insert(200, pair(200));
        src.remove(9); // leaves a stale log entry behind
        let moved = src.drain_into(dst);
        assert_eq!(moved, 2);
        assert!(src.is_empty());
        assert_eq!(src.nlog(), 0);
        assert_eq!(dst.nvalid(), 2);
        assert_eq!(dst.get(1), pair(1));
        assert_eq!(dst.get(200), pair(200));
        assert!(dst.get(9).is_null(), "removed slot stays empty");
        // The destination sequences exactly the surviving views.
        let mut seen = Vec::new();
        dst.for_each_valid(|idx, p| seen.push((idx, p)));
        seen.sort_by_key(|e| e.0);
        assert_eq!(seen, vec![(1, pair(1)), (200, pair(200))]);
        // Both maps are recyclable afterwards.
        assert_eq!(src.insert(3, pair(3)), InsertOutcome::Logged);
        src.clear_all();
        dst.clear_all();
    }

    #[test]
    fn drain_into_carries_overflow_mode() {
        let src_b = SpaMapBox::new();
        let dst_b = SpaMapBox::new();
        let src = src_b.as_ref();
        let dst = dst_b.as_ref();
        for i in 0..LOG_CAPACITY + 5 {
            src.insert(i, pair(i));
        }
        assert!(src.log_overflowed());
        let moved = src.drain_into(dst);
        assert_eq!(moved, LOG_CAPACITY + 5);
        assert!(src.is_empty());
        assert!(!src.log_overflowed(), "source overflow state resets");
        assert!(dst.log_overflowed(), "destination inherits scan mode");
        let mut count = 0;
        dst.for_each_valid(|_, _| count += 1);
        assert_eq!(count, LOG_CAPACITY + 5);
        dst.clear_all();
    }

    #[test]
    fn drain_into_empty_source_is_a_noop() {
        let src_b = SpaMapBox::new();
        let dst_b = SpaMapBox::new();
        assert_eq!(src_b.as_ref().drain_into(dst_b.as_ref()), 0);
        assert!(dst_b.as_ref().is_empty());
    }

    #[test]
    fn drain_into_overwrites_a_stale_destination_log() {
        // An insert/remove history leaves the destination empty but with
        // live-looking log entries (`remove` never rewinds the log) —
        // exactly the state of a private region page whose views were
        // all individually removed. The bulk move must overwrite that
        // stale state, not trip over it.
        let src_b = SpaMapBox::new();
        let dst_b = SpaMapBox::new();
        let src = src_b.as_ref();
        let dst = dst_b.as_ref();
        for i in 0..8 {
            dst.insert(i, pair(i));
        }
        for i in 0..8 {
            dst.remove(i);
        }
        assert!(dst.is_empty());
        assert_eq!(dst.nlog(), 8, "precondition: stale log entries");

        src.insert(5, pair(50));
        src.insert(40, pair(40));
        assert_eq!(src.drain_into(dst), 2);
        assert_eq!(dst.nvalid(), 2);
        assert_eq!(dst.nlog(), 2, "stale log state overwritten");
        let mut seen = Vec::new();
        dst.for_each_valid(|idx, p| seen.push((idx, p)));
        seen.sort_by_key(|e| e.0);
        assert_eq!(seen, vec![(5, pair(50)), (40, pair(40))]);
        dst.clear_all();
    }

    #[test]
    fn stale_and_duplicate_logs_are_skipped() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        m.insert(3, pair(3));
        m.remove(3);
        m.insert(3, pair(33)); // log holds 3 twice now
        let mut seen = Vec::new();
        m.for_each_valid(|idx, p| seen.push((idx, p)));
        assert_eq!(seen, vec![(3, pair(33))]);
        m.clear_all();
    }

    #[test]
    fn for_each_valid_preserves_map() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        m.insert(10, pair(10));
        m.for_each_valid(|_, _| {});
        assert_eq!(m.nvalid(), 1);
        assert_eq!(m.get(10), pair(10));
        m.clear_all();
    }

    #[test]
    fn force_log_overflow_enables_scan_path() {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        m.insert(100, pair(100));
        m.force_log_overflow();
        let mut seen = Vec::new();
        m.for_each_valid(|idx, _| seen.push(idx));
        assert_eq!(seen, vec![100]);
        m.clear_all();
    }

    #[test]
    fn works_over_tlmm_like_raw_page() {
        // Simulate a raw zeroed page (what a TLMM palloc returns).
        let layout = Layout::from_size_align(MAP_SIZE, MAP_SIZE).unwrap();
        // SAFETY: valid non-zero-sized one-page layout.
        let raw = unsafe { alloc_zeroed(layout) };
        // SAFETY: `raw` is page-aligned zeroed memory — an empty map.
        let m = unsafe { SpaMapRef::from_raw(raw) };
        assert!(m.is_empty());
        m.insert(42, pair(42));
        assert_eq!(m.get(42), pair(42));
        m.clear_all();
        // SAFETY: allocated above with this exact layout; freed once.
        unsafe { dealloc(raw, layout) };
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "insert over occupied")]
    fn double_insert_panics_in_debug() {
        // ManuallyDrop: the unwind must not reach SpaMapBox::drop, whose
        // own debug assertion (non-empty map) would turn this into a
        // double panic.
        let b = std::mem::ManuallyDrop::new(SpaMapBox::new());
        let m = b.as_ref();
        m.insert(0, pair(1));
        m.insert(0, pair(2));
    }
}
