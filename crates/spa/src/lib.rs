//! # cilkm-spa — sparse accumulators and the Cilk-M SPA map
//!
//! The sparse accumulator (SPA) of Gilbert, Moler, and Schreiber (*Sparse
//! matrices in MATLAB*, SIAM J. Matrix Anal. Appl. 1992) is the data
//! structure Cilk-M uses to organize a worker's reducer views (SPAA 2012
//! §6). A SPA is a dense array of values plus an unordered *log* of the
//! indices of the occupied elements and a count; it supports
//!
//! * constant-time random access to an element, and
//! * sequencing through the occupied elements in time linear in their
//!   number (by walking the log), including resetting the structure to
//!   empty as it goes.
//!
//! This crate provides two forms:
//!
//! * [`Spa<T>`] — a safe, generic, textbook SPA (used directly by example
//!   programs and as an executable specification for the property tests);
//! * [`map`] — the **SPA map**, the exact page-granular layout Cilk-M
//!   stores in a worker's TLMM region: a 4096-byte page holding a view
//!   array of 248 (view pointer, monoid pointer) pairs, a 120-entry log of
//!   1-byte indices, and two 4-byte counts, with the paper's 2:1
//!   view-to-log ratio and log-overflow fallback.

#![deny(missing_docs)]

pub mod map;

pub use map::{
    InsertOutcome, SpaMapBox, SpaMapLayout, SpaMapRef, ViewPair, LOG_CAPACITY, VIEWS_PER_MAP,
};

/// A generic sparse accumulator over values of type `T`.
///
/// Occupancy is tracked explicitly (the "third array" variant of the
/// classic SPA, footnote 5 of the paper), so any `T` works — there is no
/// reserved "zero" value. The log may contain duplicate indices if an
/// element is cleared and re-set; all iteration paths tolerate this, and
/// [`Spa::drain`] resets the structure exactly once per occupied element.
#[derive(Clone, Debug)]
pub struct Spa<T> {
    values: Vec<Option<T>>,
    log: Vec<u32>,
    occupied: usize,
}

impl<T> Spa<T> {
    /// Creates an empty SPA with `n` addressable elements.
    pub fn new(n: usize) -> Self {
        let mut values = Vec::new();
        values.resize_with(n, || None);
        Spa {
            values,
            log: Vec::new(),
            occupied: 0,
        }
    }

    /// Number of addressable elements.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Number of currently occupied elements.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Returns `true` if no element is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Constant-time read of element `i`.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.values.get(i).and_then(|v| v.as_ref())
    }

    /// Constant-time mutable read of element `i`.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.values.get_mut(i).and_then(|v| v.as_mut())
    }

    /// Sets element `i`, logging it if it was previously empty.
    ///
    /// Returns the previous value if the element was occupied.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()`.
    pub fn set(&mut self, i: usize, value: T) -> Option<T> {
        let slot = &mut self.values[i];
        let prev = slot.replace(value);
        if prev.is_none() {
            self.log.push(i as u32);
            self.occupied += 1;
        }
        prev
    }

    /// Accumulates into element `i`: if empty, installs `seed()`; then
    /// applies `f` to the element. This is the SPA's original use —
    /// accumulating sparse contributions where each `f` adds one.
    pub fn accumulate(&mut self, i: usize, seed: impl FnOnce() -> T, f: impl FnOnce(&mut T)) {
        if self.values[i].is_none() {
            self.set(i, seed());
        }
        f(self.values[i].as_mut().expect("just seeded"));
    }

    /// Clears element `i`, returning its value if it was occupied.
    ///
    /// The log is *not* compacted (that would break linear-time clearing);
    /// a stale log entry is simply skipped by later sequencing.
    pub fn clear(&mut self, i: usize) -> Option<T> {
        let prev = self.values.get_mut(i).and_then(|v| v.take());
        if prev.is_some() {
            self.occupied -= 1;
        }
        prev
    }

    /// Sequences through the occupied elements in log order, yielding
    /// `(index, &value)`. Time is linear in the log length. Duplicate log
    /// entries yield duplicate visits only if the element is still
    /// occupied; callers needing exactly-once semantics use [`Spa::drain`].
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        let mut seen = vec![false; self.values.len()];
        self.log.iter().filter_map(move |&i| {
            let i = i as usize;
            if seen[i] {
                return None;
            }
            seen[i] = true;
            self.values[i].as_ref().map(|v| (i, v))
        })
    }

    /// Drains the SPA: yields every occupied `(index, value)` exactly once
    /// and leaves the SPA empty, in time linear in the log length.
    pub fn drain(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.occupied);
        let log = std::mem::take(&mut self.log);
        for i in log {
            if let Some(v) = self.values[i as usize].take() {
                out.push((i as usize, v));
            }
        }
        self.occupied = 0;
        out
    }

    /// Current log length (may exceed `len()` due to stale entries).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut spa = Spa::new(10);
        assert!(spa.is_empty());
        assert_eq!(spa.set(3, "a"), None);
        assert_eq!(spa.set(3, "b"), Some("a"));
        assert_eq!(spa.len(), 1);
        assert_eq!(spa.get(3), Some(&"b"));
        assert_eq!(spa.clear(3), Some("b"));
        assert_eq!(spa.clear(3), None);
        assert!(spa.is_empty());
    }

    #[test]
    fn accumulate_seeds_once() {
        let mut spa = Spa::new(4);
        spa.accumulate(2, || 100, |v| *v += 1);
        spa.accumulate(2, || 100, |v| *v += 1);
        assert_eq!(spa.get(2), Some(&102));
        assert_eq!(spa.len(), 1);
    }

    #[test]
    fn drain_yields_each_occupied_once_despite_stale_logs() {
        let mut spa = Spa::new(8);
        spa.set(1, 10);
        spa.set(2, 20);
        spa.clear(1);
        spa.set(1, 11); // log now holds 1 twice
        assert!(spa.log_len() >= 3);
        let mut drained = spa.drain();
        drained.sort();
        assert_eq!(drained, vec![(1, 11), (2, 20)]);
        assert!(spa.is_empty());
        assert_eq!(spa.log_len(), 0);
    }

    #[test]
    fn iter_skips_cleared_and_dedupes() {
        let mut spa = Spa::new(8);
        spa.set(5, 'x');
        spa.set(6, 'y');
        spa.clear(5);
        spa.set(5, 'z'); // duplicate log entry for 5
        let mut seen: Vec<_> = spa.iter().collect();
        seen.sort();
        assert_eq!(seen, vec![(5, &'z'), (6, &'y')]);
    }

    #[test]
    #[should_panic]
    fn set_out_of_range_panics() {
        let mut spa = Spa::new(2);
        spa.set(2, 0u8);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let spa: Spa<u8> = Spa::new(2);
        assert_eq!(spa.get(99), None);
    }

    #[test]
    fn sparse_vector_accumulation_use_case() {
        // The classic SPA use: accumulate sparse contributions per index.
        let contributions = [(3usize, 1.0f64), (7, 2.0), (3, 4.0), (0, 8.0)];
        let mut spa = Spa::new(10);
        for &(i, x) in &contributions {
            spa.accumulate(i, || 0.0, |v| *v += x);
        }
        let mut got = spa.drain();
        got.sort_by_key(|a| a.0);
        assert_eq!(got, vec![(0, 8.0), (3, 5.0), (7, 2.0)]);
    }
}
