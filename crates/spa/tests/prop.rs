//! Property tests: the raw-page `SpaMapRef` must behave exactly like the
//! safe generic `Spa` used as an executable model, and both must conserve
//! their occupancy invariants under arbitrary operation sequences.

// Property suites are orders of magnitude too slow under the Miri
// interpreter; the crates' inline unit tests cover the same paths there.
#![cfg(not(miri))]

use cilkm_spa::{Spa, SpaMapBox, ViewPair, LOG_CAPACITY, VIEWS_PER_MAP};

use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { idx: u8, tag: u16 },
    Remove { idx: u8 },
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..VIEWS_PER_MAP as u8, 1u16..u16::MAX).prop_map(|(idx, tag)| Op::Insert { idx, tag }),
        2 => (0u8..VIEWS_PER_MAP as u8).prop_map(|idx| Op::Remove { idx }),
        1 => Just(Op::Drain),
    ]
}

fn tag_pair(tag: u16) -> ViewPair {
    ViewPair {
        view: (0x10_0000usize + (tag as usize) * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SpaMap agrees with a BTreeMap model under inserts/removes/drains,
    /// including across the log-overflow boundary.
    #[test]
    fn spa_map_matches_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        let mut model: BTreeMap<usize, u16> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { idx, tag } => {
                    let idx = idx as usize;
                    if model.contains_key(&idx) {
                        // Occupied: the map API requires remove-first.
                        continue;
                    }
                    m.insert(idx, tag_pair(tag));
                    model.insert(idx, tag);
                }
                Op::Remove { idx } => {
                    let idx = idx as usize;
                    if model.remove(&idx).is_some() {
                        let got = m.remove(idx);
                        prop_assert!(!got.is_null());
                    }
                }
                Op::Drain => {
                    let mut drained = BTreeMap::new();
                    m.drain(|idx, p| {
                        drained.insert(idx, p);
                    });
                    prop_assert_eq!(drained.len(), model.len());
                    for (idx, tag) in &model {
                        prop_assert_eq!(drained.get(idx).copied(), Some(tag_pair(*tag)));
                    }
                    model.clear();
                    prop_assert!(m.is_empty());
                }
            }
            prop_assert_eq!(m.nvalid(), model.len());
        }

        // Final consistency sweep via non-destructive sequencing: every
        // live element visited exactly once, nothing else.
        let mut seen = BTreeMap::new();
        let mut dup = false;
        m.for_each_valid(|idx, p| {
            dup |= seen.insert(idx, p).is_some();
        });
        prop_assert!(!dup, "for_each_valid visited a slot twice");
        prop_assert_eq!(seen.len(), model.len());
        for (idx, tag) in &model {
            prop_assert_eq!(seen.get(idx).copied(), Some(tag_pair(*tag)));
        }
        m.clear_all();
    }

    /// Generic Spa: drain == the set of live (index, value) pairs, exactly
    /// once each, regardless of stale log entries.
    #[test]
    fn generic_spa_drain_is_exact(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut spa: Spa<u16> = Spa::new(VIEWS_PER_MAP);
        let mut model: BTreeMap<usize, u16> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert { idx, tag } => {
                    spa.set(idx as usize, tag);
                    model.insert(idx as usize, tag);
                }
                Op::Remove { idx } => {
                    prop_assert_eq!(spa.clear(idx as usize), model.remove(&(idx as usize)));
                }
                Op::Drain => {
                    let mut got = spa.drain();
                    got.sort();
                    let expect: Vec<_> = std::mem::take(&mut model).into_iter().collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(spa.len(), model.len());
        }
    }

    /// Filling past the log capacity always flips the map into overflow
    /// mode and sequencing still visits every element.
    #[test]
    fn overflow_boundary(extra in 1usize..(VIEWS_PER_MAP - LOG_CAPACITY)) {
        let b = SpaMapBox::new();
        let m = b.as_ref();
        let total = LOG_CAPACITY + extra;
        for i in 0..total {
            m.insert(i, tag_pair((i + 1) as u16));
        }
        prop_assert!(m.log_overflowed());
        let mut n = 0;
        m.for_each_valid(|_, _| n += 1);
        prop_assert_eq!(n, total);
        m.clear_all();
    }
}
