//! Model-checked SPA-map contract tests (run with `--features model`).
//!
//! `SpaMapRef`'s contract is "one thread at a time per map"; under the
//! `model` feature every raw map access is trace-recorded, so the
//! checker verifies synchronized handoffs pass race-free and flags
//! unsynchronized sharing as a data race.

#![cfg(feature = "model")]

use std::sync::Arc;

use cilkm_checker as checker;
use cilkm_checker::sync::atomic::{AtomicBool, Ordering};
use cilkm_spa::{SpaMapBox, ViewPair};

fn pair(tag: usize) -> ViewPair {
    // Distinct non-null dangling pointers; never dereferenced.
    ViewPair {
        view: (0x1000 + tag * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

/// View transferal's memory discipline: a map filled on one thread and
/// handed off through a Release/Acquire flag is read race-free by the
/// receiver, and every view arrives exactly once (none dropped, none
/// duplicated) under every schedule. Exhausted at unbounded preemption
/// depth under DPOR since PR 7.
#[test]
fn transferal_handoff_is_race_free_and_exact() {
    checker::model_with(checker::Config::dpor(), || {
        let private = SpaMapBox::new();
        let public = SpaMapBox::new();
        let (pm, gm) = (private.as_ref(), public.as_ref());
        let ready = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ready);
        let producer = checker::thread::spawn(move || {
            pm.insert(3, pair(3));
            pm.insert(7, pair(7));
            // Transferal: drain the private map into the public one,
            // zeroing private entries as we go.
            pm.drain(|idx, p| {
                gm.insert(idx, p);
            });
            r2.store(true, Ordering::Release);
        });
        while !ready.load(Ordering::Acquire) {
            checker::thread::yield_now();
        }
        let mut seen = Vec::new();
        public.as_ref().drain(|idx, p| seen.push((idx, p)));
        producer.join().unwrap();
        seen.sort_by_key(|e| e.0);
        assert_eq!(seen, vec![(3, pair(3)), (7, pair(7))]);
        assert!(private.as_ref().is_empty());
    });
}

/// The negative control: touching one map from two threads without any
/// synchronization violates the single-thread contract, and the
/// trace-instrumented accessors must report it as a data race.
fn unsynchronized_sharing() {
    // Leak the page instead of running SpaMapBox's drop assertions
    // while the checker unwinds the failing schedule.
    let b = std::mem::ManuallyDrop::new(SpaMapBox::new());
    let m = b.as_ref();
    let writer = checker::thread::spawn(move || {
        m.insert(1, pair(1));
    });
    let _ = m.nvalid(); // concurrent unsynchronized read
    writer.join().unwrap();
}

#[test]
fn unsynchronized_sharing_is_detected() {
    let err = checker::try_model(unsynchronized_sharing)
        .expect_err("unsynchronized map sharing must be flagged");
    assert!(
        err.message.contains("data race"),
        "unexpected failure: {}",
        err.message
    );
}

/// The same control stays red at unbounded preemption depth under DPOR
/// (PR 7): race-reduction pruning must never hide the racing pair.
#[test]
fn unsynchronized_sharing_is_detected_by_dpor() {
    let err = checker::try_model_with(checker::Config::dpor(), unsynchronized_sharing)
        .expect_err("DPOR must flag unsynchronized map sharing");
    assert!(
        err.message.contains("data race"),
        "unexpected failure: {}",
        err.message
    );
}
