//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `Strategy` with `prop_map`/`prop_recursive`/`boxed`,
//! `any`, `Just`, integer-range and tuple strategies,
//! `collection::vec`, weighted `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` macros — as a plain deterministic generative tester:
//! each case draws fresh inputs from a seeded RNG (seed derived from the
//! test name and case index, so failures are reproducible) and runs the
//! body. There is no shrinking; a failing case reports its case number.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind an `Arc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into one more level. Each
        /// level falls back to the leaf strategy with enough probability
        /// to keep expected sizes near `desired_size`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Bias toward the leaf so tree sizes stay bounded even at
                // full depth (expected branching < 1 per level).
                let level = Union {
                    arms: vec![(2, leaf.clone()), (1, recurse(current).boxed())],
                };
                current = level.boxed();
            }
            current
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted union of same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "all weights zero");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// `any::<T>()` — uniform values of a primitive type.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct ArbitraryStrategy<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical uniform generator.
    pub trait Arbitrary {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20u8 + (rng.below(0x5f) as u8)) as char
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (subset: case count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic generator behind every strategy draw
    /// (xoshiro256** seeded with splitmix64).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator for the given seed.
        pub fn deterministic(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng { s }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let m = self.next_u64() as u128 * bound as u128;
                if m as u64 >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// FNV-1a over the test identity, mixing in the case index — the
    /// per-case seed, stable across runs.
    pub fn case_seed(module: &str, test: &str, case: u32) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in module.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A weighted (or unweighted) union of strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let __seed = $crate::test_runner::case_seed(
                        module_path!(),
                        stringify!($name),
                        __case,
                    );
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed (seed {:#x})",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(#[allow(dead_code)] u8),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn size(&self) -> usize {
            match self {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => a.size() + b.size(),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 5u16..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_recursion_terminate(
            t in any::<u8>().prop_map(Tree::Leaf).prop_recursive(6, 32, 2, |inner| {
                prop_oneof![
                    3 => inner.clone().prop_map(|l| Tree::Node(Box::new(l.clone()), Box::new(l))),
                    1 => (inner.clone(), inner)
                        .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                ]
            })
        ) {
            prop_assert!(t.size() >= 1);
        }

        #[test]
        fn just_yields_its_value(x in Just(41u32)) {
            prop_assert_eq!(x + 1, 42);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u32>(), 0..10);
        let seed = crate::test_runner::case_seed("m", "t", 3);
        let mut a = crate::test_runner::TestRng::deterministic(seed);
        let mut b = crate::test_runner::TestRng::deterministic(seed);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
