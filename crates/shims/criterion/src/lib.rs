//! Offline stand-in for the `criterion` crate.
//!
//! Implements the sampling-benchmark surface this workspace uses:
//! `Criterion::default().measurement_time(..).warm_up_time(..)
//! .sample_size(..)`, `bench_function` with `Bencher::iter` /
//! `Bencher::iter_custom`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is auto-calibrated (iteration
//! count doubled until a sample is long enough to time reliably), run for
//! `sample_size` samples, and summarized as min/median/mean/max
//! nanoseconds per iteration. Results are printed and appended as CSV to
//! `bench_out/criterion_<binary>.csv` (override the directory with
//! `CILKM_BENCH_OUT`), so runs leave a committable artifact, and
//! mirrored as stable-schema JSON to `bench_out/BENCH_<binary>.json` —
//! the machine-readable perf-trajectory format `BENCH_transferal.json`
//! established (ROADMAP: one data point per PR, diffable across time).

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's summary statistics, in ns/iter.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Samples actually taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// The benchmark driver; collects one [`Summary`] per `bench_function`.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    results: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            sample_size: 100,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the total time budget spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: calibrate, warm up, sample, summarize.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Calibrate: double the iteration count until one sample runs
        // long enough that clock granularity is noise (>= 200us), or the
        // warm-up budget is spent. This doubles as the warm-up.
        let warm_up_start = Instant::now();
        let mut iters: u64 = 1;
        let mut last = self.run_sample(&mut f, iters);
        while last < Duration::from_micros(200) && warm_up_start.elapsed() < self.warm_up_time {
            iters = iters.saturating_mul(2);
            last = self.run_sample(&mut f, iters);
        }
        // Spend any remaining warm-up budget at the calibrated count.
        while warm_up_start.elapsed() < self.warm_up_time {
            self.run_sample(&mut f, iters);
        }

        // Scale the per-sample count so `sample_size` samples fill the
        // measurement budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        if last.as_secs_f64() > 0.0 {
            let scale = per_sample / last.as_secs_f64();
            if scale > 1.0 {
                iters = ((iters as f64 * scale).min(1e12)) as u64;
            }
        }
        iters = iters.max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let elapsed = self.run_sample(&mut f, iters);
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let median = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        let summary = Summary {
            name: id.to_string(),
            samples: n,
            iters_per_sample: iters,
            min_ns: per_iter_ns[0],
            median_ns: median,
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            max_ns: per_iter_ns[n - 1],
        };
        println!(
            "{:<44} time: [{} {} {}]  ({} samples x {} iters)",
            summary.name,
            fmt_ns(summary.min_ns),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.max_ns),
            summary.samples,
            summary.iters_per_sample,
        );
        self.results.push(summary);
        self
    }

    fn run_sample<F: FnMut(&mut Bencher)>(&self, f: &mut F, iters: u64) -> Duration {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            timed: false,
        };
        f(&mut b);
        assert!(
            b.timed,
            "benchmark closure must call Bencher::iter or Bencher::iter_custom"
        );
        b.elapsed
    }

    /// Writes collected summaries as CSV plus the stable-schema
    /// `BENCH_<bin>.json` trajectory point. Called by `criterion_main!`.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let dir = out_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let stem = bin_stem();
        let path = dir.join(format!("criterion_{stem}.csv"));
        let mut body =
            String::from("name,samples,iters_per_sample,min_ns,median_ns,mean_ns,max_ns\n");
        for s in &self.results {
            body.push_str(&format!(
                "{},{},{},{:.2},{:.2},{:.2},{:.2}\n",
                s.name, s.samples, s.iters_per_sample, s.min_ns, s.median_ns, s.mean_ns, s.max_ns
            ));
        }
        if std::fs::write(&path, body).is_ok() {
            println!("wrote {}", path.display());
        }
        let json_path = dir.join(format!("BENCH_{stem}.json"));
        if std::fs::write(&json_path, render_bench_json(&stem, &self.results)).is_ok() {
            println!("wrote {}", json_path.display());
        }
    }
}

/// Renders the `BENCH_*.json` perf-trajectory document: same fields as
/// the CSV, fixed key order, two-decimal ns — a later run of the same
/// bench differs only where the numbers do.
fn render_bench_json(bench: &str, results: &[Summary]) -> String {
    let mut s = String::from("{\n  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"bench\": \"{bench}\",\n  \"results\": [\n"));
    let lines: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
                 \"min_ns\": {:.2}, \"median_ns\": {:.2}, \"mean_ns\": {:.2}, \"max_ns\": {:.2}}}",
                r.name, r.samples, r.iters_per_sample, r.min_ns, r.median_ns, r.mean_ns, r.max_ns
            )
        })
        .collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{:.2} ns", ns)
    }
}

fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CILKM_BENCH_OUT") {
        return PathBuf::from(dir);
    }
    // Walk up from the current dir looking for the workspace root so the
    // CSV lands in the same bench_out/ the cilkm-bench bins use.
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").is_dir() {
            return cur.join("bench_out");
        }
        if !cur.pop() {
            return PathBuf::from("bench_out");
        }
    }
}

fn bin_stem() -> String {
    let stem = std::env::args()
        .next()
        .map(PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    // cargo names bench binaries `<name>-<16-hex-digit hash>`; drop the hash.
    match stem.rsplit_once('-') {
        Some((base, tail)) if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Times the closure the harness hands to benchmark functions.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    timed: bool,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.timed = true;
    }

    /// Lets the routine time itself: it receives the iteration count and
    /// returns the elapsed time for exactly that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
        self.timed = true;
    }
}

/// Declares a benchmark group, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(5)
    }

    #[test]
    fn iter_produces_sane_summary() {
        let mut c = tiny();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100u64 {
                    x = x.wrapping_add(i);
                }
                x
            })
        });
        let s = &c.results[0];
        assert_eq!(s.samples, 5);
        assert!(s.min_ns > 0.0 && s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn iter_custom_receives_iter_count() {
        let mut c = tiny();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert!(iters >= 1);
                Duration::from_nanos(iters * 10)
            })
        });
        let s = &c.results[0];
        // 10ns/iter reported exactly (synthetic timing).
        assert!((s.median_ns - 10.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must call Bencher::iter")]
    fn closure_must_time_something() {
        let mut c = tiny();
        c.bench_function("nothing", |_b| {});
    }

    #[test]
    fn bench_json_has_stable_schema() {
        let results = [
            Summary {
                name: "lookup/memory-mapped".into(),
                samples: 20,
                iters_per_sample: 1000,
                min_ns: 3.128,
                median_ns: 3.287,
                mean_ns: 3.3,
                max_ns: 3.96,
            },
            Summary {
                name: "lookup/locking".into(),
                samples: 20,
                iters_per_sample: 500,
                min_ns: 10.0,
                median_ns: 11.0,
                mean_ns: 11.5,
                max_ns: 13.0,
            },
        ];
        let json = render_bench_json("lookup", &results);
        assert_eq!(json, render_bench_json("lookup", &results));
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n  \"bench\": \"lookup\",\n"));
        assert!(json.contains(
            "{\"name\": \"lookup/memory-mapped\", \"samples\": 20, \"iters_per_sample\": 1000, \
             \"min_ns\": 3.13, \"median_ns\": 3.29, \"mean_ns\": 3.30, \"max_ns\": 3.96}"
        ));
        assert!(json.ends_with("}\n  ]\n}\n"));
        // Crude balance check in lieu of a JSON parser: every opener has
        // a closer, so downstream tooling can load the file.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
