//! Offline stand-in for the `libc` crate: just the symbols this
//! workspace uses (`clock_gettime` with `CLOCK_THREAD_CPUTIME_ID`),
//! declared directly against the platform C library.

#![allow(non_camel_case_types)]

/// Signed integral type for time in seconds.
pub type time_t = i64;
/// Signed integral C `long`.
pub type c_long = i64;
/// Clock identifier for the `clock_*` family.
pub type clockid_t = i32;
/// C `int`.
pub type c_int = i32;

/// Per-thread CPU-time clock (Linux value; identical on the targets this
/// repo supports).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
/// Monotonic clock.
pub const CLOCK_MONOTONIC: clockid_t = 1;

/// `struct timespec`.
#[repr(C)]
#[derive(Copy, Clone, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds within the second.
    pub tv_nsec: c_long,
}

extern "C" {
    /// Reads `clk_id` into `tp`. Returns 0 on success.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Returns the CPU the calling thread is running on, or -1 on error
    /// (glibc: a vDSO/rseq read, a few nanoseconds). Linux-only; other
    /// targets get no declaration so callers must cfg-gate their use.
    pub fn sched_getcpu() -> c_int;
}

#[cfg(all(test, target_os = "linux", not(miri)))]
mod sched_tests {
    #[test]
    fn sched_getcpu_reports_a_cpu() {
        // SAFETY: no arguments, no preconditions; returns -1 on error.
        let cpu = unsafe { super::sched_getcpu() };
        assert!(cpu >= 0, "sched_getcpu failed: {cpu}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cputime_clock_ticks() {
        let mut a = timespec::default();
        // SAFETY: passes a valid, writable `timespec` out-pointer.
        let ra = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) };
        assert_eq!(ra, 0);
        let mut x = 0u64;
        for i in 0..500_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        // SAFETY: as above.
        let rb = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) };
        assert_eq!(rb, 0);
        let ns = |t: &timespec| t.tv_sec as u128 * 1_000_000_000 + t.tv_nsec as u128;
        assert!(ns(&b) >= ns(&a));
    }
}
