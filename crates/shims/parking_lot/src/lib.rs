//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment vendors no external crates, so this shim
//! provides the (small) subset of the `parking_lot` API the workspace
//! uses — `Mutex`, `MutexGuard`, `Condvar`, `RwLock` — implemented over
//! `std::sync` with parking_lot's ergonomics: infallible `lock()` (poison
//! is ignored; a panicking critical section aborts the invariant anyway)
//! and `Condvar::wait(&mut guard)` taking the guard by `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex with parking_lot's infallible API over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Internally holds the std guard in an
/// `Option` so a [`Condvar`] can take it out and put it back across a
/// wait (std's condvar consumes and returns guards by value).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never errors:
    /// poisoning is ignored, as in parking_lot.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

/// Result of a wait with a timeout.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's by-`&mut`-guard API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard already taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// One-time initialization flag (subset of parking_lot's `Once`).
#[derive(Default)]
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Once {
    /// A fresh, un-run `Once`.
    pub const fn new() -> Once {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once(&self, f: impl FnOnce()) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
