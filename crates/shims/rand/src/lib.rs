//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::SmallRng` (an
//! xoshiro256** generator seeded by splitmix64, like rand 0.8's), the
//! `SeedableRng::seed_from_u64` constructor, and the `Rng` methods
//! `gen`, `gen_range` (half-open and inclusive integer ranges, plus
//! `f64`), `gen_bool`, and `fill`. Deterministic for a given seed, which
//! is all the synthetic graph generators need.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Unbiased sample from `[0, bound)` by Lemire's multiply-shift with a
/// rejection step.
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // 2^64 mod bound: products whose low half lands below this threshold
    // fall in the over-represented zone and are rejected.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = rng.next_u64() as u128 * bound as u128;
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**), the
    /// same family rand 0.8's `SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but be defensive.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_full_u16_range_is_fine() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let _: u16 = rng.gen_range(1u16..=u16::MAX);
        }
    }
}
