//! Instrumented thread spawn/join/park, mirroring the subset of
//! `std::thread` the runtime's `msync` facade re-exports.
//!
//! Spawning threads through here is what gives the sanitizer its
//! thread identity and fork/join happens-before edges: the parent
//! pre-allocates the child's sanitizer id with an inherited clock
//! snapshot *before* the OS thread exists (so the child's first hook
//! already knows everything the parent knew), and a drop guard in the
//! child publishes its final clock for the joiner even if it unwinds.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::state;
use crate::state::VClock;

/// A handle to an instrumented thread (sanitizer id + real handle).
#[derive(Clone, Debug)]
pub struct Thread {
    real: std::thread::Thread,
    tid: u32,
}

impl Thread {
    /// Unparks the thread, releasing the caller's clock into the
    /// target's park token first so the wakeup is a visible
    /// happens-before edge.
    pub fn unpark(&self) {
        state::unpark(self.tid);
        self.real.unpark();
    }

    /// The thread's name, if it was spawned with one.
    pub fn name(&self) -> Option<&str> {
        self.real.name()
    }
}

/// The calling thread's instrumented handle.
pub fn current() -> Thread {
    Thread {
        real: std::thread::current(),
        tid: state::current_tid(),
    }
}

/// Parks the calling thread for at most `dur`, then acquires from its
/// own park token (joining the clock of whoever unparked it).
pub fn park_timeout(dur: Duration) {
    std::thread::park_timeout(dur);
    state::park_wake();
}

/// Cooperative yield; no happens-before effect.
pub fn yield_now() {
    std::thread::yield_now();
}

/// Handle for joining an instrumented thread; `join` absorbs the
/// child's final clock so everything it did happens-before the joiner.
#[derive(Debug)]
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    thread: Thread,
    final_vc: Arc<Mutex<Option<VClock>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and joins its final clock.
    pub fn join(self) -> std::thread::Result<T> {
        let result = self.real.join();
        state::join_final(&self.final_vc);
        result
    }

    /// The instrumented handle of the spawned thread.
    pub fn thread(&self) -> &Thread {
        &self.thread
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.real.is_finished()
    }
}

/// Publishes the child's final clock on scope exit — including unwinds,
/// so a panicking worker still hands its history to the joiner.
struct FinalizeGuard {
    tid: u32,
    slot: Arc<Mutex<Option<VClock>>>,
}

impl Drop for FinalizeGuard {
    fn drop(&mut self) {
        state::publish_final(self.tid, &self.slot);
    }
}

/// Spawns an instrumented thread with an optional name and stack size
/// (the same shape as `cilkm_checker::thread::spawn_with`).
pub fn spawn_with<F, T>(name: Option<String>, stack_size: Option<usize>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let child = state::prepare_child();
    let slot = Arc::new(Mutex::new(None));
    let child_slot = Arc::clone(&slot);
    let mut builder = std::thread::Builder::new();
    if let Some(name) = name {
        builder = builder.name(name);
    }
    if let Some(size) = stack_size {
        builder = builder.stack_size(size);
    }
    let real = builder
        .spawn(move || {
            state::adopt(child);
            let _finalize = FinalizeGuard {
                tid: child,
                slot: child_slot,
            };
            f()
        })
        .expect("failed to spawn thread");
    let thread = Thread {
        real: real.thread().clone(),
        tid: child,
    };
    JoinHandle {
        real,
        thread,
        final_vc: slot,
    }
}

/// Spawns an instrumented thread with defaults (convenience used by
/// the sanitizer's own tests).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_with(None, None, f)
}
