//! `cilkm-san`: summarize a sanitizer report produced by an
//! instrumented run (`CILKM_SAN_REPORT=san_report.json cargo test
//! --features sanitize ...`).
//!
//! Usage: `cilkm-san [path]` (default `san_report.json`). Prints the
//! per-detector summary and every finding; exits 1 if the report
//! contains any finding, 2 on a missing/unparsable report — so CI can
//! distinguish "clean run" from "no report produced".

use std::process::ExitCode;

use cilkm_san::report::{Detector, Report};

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "san_report.json".to_string());
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("cilkm-san: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let report = match Report::from_json(&src) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cilkm-san: cannot parse {path}: {err}");
            return ExitCode::from(2);
        }
    };
    println!("sanitizer report: {path}");
    for d in Detector::ALL {
        println!("  {:>18}: {}", d.name(), report.count(d));
    }
    if report.findings.is_empty() {
        println!("clean: no findings");
        return ExitCode::SUCCESS;
    }
    println!();
    for f in &report.findings {
        println!("[{}] {}: {}", f.detector.name(), f.site, f.message);
    }
    ExitCode::FAILURE
}
