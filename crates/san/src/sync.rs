//! Instrumented drop-in replacements for the sync primitives the
//! `msync` facades re-export: atomics + `fence` (mirroring
//! `std::sync::atomic`) and `Mutex`/`Condvar` (mirroring the
//! `parking_lot` shim's infallible API).
//!
//! Hook placement is chosen so the sanitizer's happens-before relation
//! is a superset of the real one *without* a race window between the
//! real operation and its bookkeeping:
//!
//! * **releases run before** the real store/unlock — by the time any
//!   observer can see the new value, the publisher's clock is already
//!   in the sync-object clock;
//! * **acquires run after** the real load/lock — whatever store the
//!   real operation observed, its publisher's release hook has already
//!   completed (it preceded the store).
//!
//! RMWs pessimistically release before and acquire after, even when the
//! compare-exchange fails; spurious releases only add happens-before
//! edges, which is the false-negative (never false-positive) direction.

use crate::state;

/// Instrumented mirror of `std::sync::atomic`.
pub mod atomic {
    use crate::state;

    pub use std::sync::atomic::Ordering;

    /// An atomic fence; modeled as a release into + acquire from one
    /// global fence clock, regardless of `order` (over-approximation).
    pub fn fence(order: Ordering) {
        state::fence_all();
        std::sync::atomic::fence(order);
    }

    macro_rules! instrumented_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ident, $ty:ty, [$($fetch:ident),*]) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            #[repr(transparent)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn key(&self) -> usize {
                    self as *const Self as usize
                }

                /// Instrumented `load` (treated as an acquire).
                pub fn load(&self, order: Ordering) -> $ty {
                    let v = self.inner.load(order);
                    state::atomic_acquire(self.key());
                    v
                }

                /// Instrumented `store` (treated as a release).
                pub fn store(&self, v: $ty, order: Ordering) {
                    state::atomic_release(self.key());
                    self.inner.store(v, order);
                }

                /// Instrumented `swap` (treated as acquire + release).
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    state::atomic_release(self.key());
                    let old = self.inner.swap(v, order);
                    state::atomic_acquire(self.key());
                    old
                }

                /// Instrumented `compare_exchange`; both outcomes
                /// acquire, and the release is pessimistic (recorded
                /// even on failure — extra edges are harmless).
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    state::atomic_release(self.key());
                    let r = self.inner.compare_exchange(current, new, success, failure);
                    state::atomic_acquire(self.key());
                    r
                }

                /// Instrumented `compare_exchange_weak` (same hook
                /// discipline as `compare_exchange`).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    state::atomic_release(self.key());
                    let r = self
                        .inner
                        .compare_exchange_weak(current, new, success, failure);
                    state::atomic_acquire(self.key());
                    r
                }

                /// Exclusive access needs no instrumentation.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                /// Consumes the atomic; exclusive, so uninstrumented.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }

                $(
                    /// Instrumented read-modify-write (acquire +
                    /// release, like `swap`).
                    pub fn $fetch(&self, v: $ty, order: Ordering) -> $ty {
                        state::atomic_release(self.key());
                        let old = self.inner.$fetch(v, order);
                        state::atomic_acquire(self.key());
                        old
                    }
                )*
            }
        };
    }

    instrumented_atomic!(
        /// Instrumented `AtomicBool`.
        AtomicBool,
        AtomicBool,
        bool,
        []
    );
    instrumented_atomic!(
        /// Instrumented `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32,
        [fetch_add, fetch_sub, fetch_max, fetch_min, fetch_or, fetch_and]
    );
    instrumented_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64,
        [fetch_add, fetch_sub, fetch_max, fetch_min, fetch_or, fetch_and]
    );
    instrumented_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize,
        [fetch_add, fetch_sub, fetch_max, fetch_min, fetch_or, fetch_and]
    );
    instrumented_atomic!(
        /// Instrumented `AtomicIsize`.
        AtomicIsize,
        AtomicIsize,
        isize,
        [fetch_add, fetch_sub, fetch_max, fetch_min, fetch_or, fetch_and]
    );

    /// Instrumented `AtomicPtr<T>`.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        fn key(&self) -> usize {
            self as *const Self as usize
        }

        /// Instrumented `load` (treated as an acquire).
        pub fn load(&self, order: Ordering) -> *mut T {
            let v = self.inner.load(order);
            state::atomic_acquire(self.key());
            v
        }

        /// Instrumented `store` (treated as a release).
        pub fn store(&self, p: *mut T, order: Ordering) {
            state::atomic_release(self.key());
            self.inner.store(p, order);
        }

        /// Instrumented `swap` (acquire + release).
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            state::atomic_release(self.key());
            let old = self.inner.swap(p, order);
            state::atomic_acquire(self.key());
            old
        }

        /// Instrumented `compare_exchange` (pessimistic release, see
        /// the module docs).
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            state::atomic_release(self.key());
            let r = self.inner.compare_exchange(current, new, success, failure);
            state::atomic_acquire(self.key());
            r
        }

        /// Instrumented `compare_exchange_weak`.
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            state::atomic_release(self.key());
            let r = self
                .inner
                .compare_exchange_weak(current, new, success, failure);
            state::atomic_acquire(self.key());
            r
        }

        /// Exclusive access needs no instrumentation.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        /// Consumes the atomic pointer.
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }
}

/// An instrumented mutex with the `parking_lot` shim's API (infallible
/// `lock`, no poisoning). Feeds both the lock-order detector (inversion
/// check *before* blocking, so a real deadlock still gets reported) and
/// the happens-before relation (the lock address is a sync object).
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new instrumented mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn key(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the lock, ignoring poisoning (panics propagate through
    /// the runtime's own latch/panic plumbing instead).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let key = self.key();
        state::lock_acquiring(key);
        let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        state::lock_acquired(key);
        MutexGuard {
            guard: Some(guard),
            key,
        }
    }

    /// Tries to acquire the lock without blocking. Adds no
    /// acquisition-order edge: a `try_lock` cannot deadlock.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let key = self.key();
        match self.inner.try_lock() {
            Ok(guard) => {
                state::lock_acquired(key);
                Some(MutexGuard {
                    guard: Some(guard),
                    key,
                })
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                state::lock_acquired(key);
                Some(MutexGuard {
                    guard: Some(p.into_inner()),
                    key,
                })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access; uninstrumented.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }

    /// Consumes the mutex; uninstrumented.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases the sanitizer's lock bookkeeping just
/// before the real unlock.
pub struct MutexGuard<'a, T> {
    /// `Option` so [`Condvar::wait`] can hand the inner guard to the
    /// std condvar and put it back after waking.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    key: usize,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.is_some() {
            state::lock_released(self.key);
        }
        // The inner guard (if still present) unlocks on drop.
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of [`Condvar::wait_for`], mirroring the `parking_lot` shim.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// An instrumented condition variable (infallible, `parking_lot`-shaped
/// API over `std::sync::Condvar`). The happens-before edge from
/// notifier to waiter is carried by the mutex release/re-acquire hooks
/// around the real wait.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new instrumented condvar.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while asleep.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let key = guard.key;
        state::lock_released(key);
        let inner = guard.guard.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|p| p.into_inner());
        state::lock_acquired(key);
        guard.guard = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let key = guard.key;
        state::lock_released(key);
        let inner = guard.guard.take().expect("guard taken during wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        state::lock_acquired(key);
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
