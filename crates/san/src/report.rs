//! Findings, the machine-readable sanitizer report, and its JSON codec.
//!
//! Same codec discipline as `cilkm-lint`'s `lint_report.json`: the
//! report CI archives must be **diffable**, so findings are
//! stable-sorted by (detector, site, message), duplicates are collapsed
//! at record time, and serialization is deterministic (same findings ⇒
//! byte-identical JSON). Messages never embed raw addresses — a racy
//! pair is identified by its facade-site label and thread ids, which
//! are stable across runs of a deterministic repro, while heap
//! addresses are not.

use std::fmt::Write as _;

/// The four detector families (see DESIGN.md §17).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detector {
    /// FastTrack-style happens-before data race on a traced plain
    /// location.
    Race,
    /// SP (series-parallel) determinacy race: two logically-parallel
    /// strands touched a reducer-contract location without a view.
    DeterminacyRace,
    /// Lock-acquisition-order inversion (potential AB/BA deadlock).
    LockOrder,
    /// Hazard-era lifecycle violation: use-after-retire or
    /// double-retire.
    Lifecycle,
}

impl Detector {
    /// The stable kebab-case name used in JSON and docs.
    pub fn name(self) -> &'static str {
        match self {
            Detector::Race => "race",
            Detector::DeterminacyRace => "determinacy-race",
            Detector::LockOrder => "lock-order",
            Detector::Lifecycle => "lifecycle",
        }
    }

    /// Parses a detector name as written in the JSON report.
    pub fn from_name(name: &str) -> Option<Detector> {
        match name {
            "race" => Some(Detector::Race),
            "determinacy-race" => Some(Detector::DeterminacyRace),
            "lock-order" => Some(Detector::LockOrder),
            "lifecycle" => Some(Detector::Lifecycle),
            _ => None,
        }
    }

    /// All detectors, in report order.
    pub const ALL: [Detector; 4] = [
        Detector::Race,
        Detector::DeterminacyRace,
        Detector::LockOrder,
        Detector::Lifecycle,
    ];
}

/// One finding: a detector firing at an instrumented site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which detector fired.
    pub detector: Detector,
    /// The facade-site label of the instrumented location (e.g.
    /// `"SpaMap"`, `"MapPool::pop"`, or a test-provided label).
    pub site: String,
    /// Human-readable description, including thread ids.
    pub message: String,
}

/// A full sanitizer run: every deduplicated finding plus per-detector
/// totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, stable-sorted (see [`Report::sort`]).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Stable order for diffable output: detector, then site, then
    /// message.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.detector, a.site.as_str(), a.message.as_str()).cmp(&(
                b.detector,
                b.site.as_str(),
                b.message.as_str(),
            ))
        });
    }

    /// Count of findings for one detector.
    pub fn count(&self, detector: Detector) -> usize {
        self.findings
            .iter()
            .filter(|f| f.detector == detector)
            .count()
    }

    /// Serializes the report as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"summary\": {");
        for (i, d) in Detector::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {}", d.name(), self.count(*d));
        }
        s.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"detector\": {}, \"site\": {}, \"message\": {}}}",
                json_string(f.detector.name()),
                json_string(&f.site),
                json_string(&f.message),
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a report previously produced by [`Report::to_json`].
    /// Tolerates any whitespace; rejects anything structurally off.
    pub fn from_json(src: &str) -> Result<Report, String> {
        // The report grammar is flat enough for a line-free scan: pull
        // the "findings" array and read each object's three string
        // fields. A tiny recursive parser would also do, but the only
        // consumer is the summarizer bin and the round-trip test.
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.seek_key("findings")?;
        p.expect(b'[')?;
        let mut findings = Vec::new();
        loop {
            match p.peek() {
                Some(b']') => break,
                Some(b'{') => {
                    p.pos += 1;
                    let mut detector = None;
                    let mut site = None;
                    let mut message = None;
                    loop {
                        let key = p.string()?;
                        p.expect(b':')?;
                        let value = p.string()?;
                        match key.as_str() {
                            "detector" => {
                                detector = Some(
                                    Detector::from_name(&value)
                                        .ok_or_else(|| format!("unknown detector {value:?}"))?,
                                )
                            }
                            "site" => site = Some(value),
                            "message" => message = Some(value),
                            other => return Err(format!("unknown finding key {other:?}")),
                        }
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b'}') => {
                                p.pos += 1;
                                break;
                            }
                            other => return Err(format!("expected , or }} but found {other:?}")),
                        }
                    }
                    findings.push(Finding {
                        detector: detector.ok_or("finding missing \"detector\"")?,
                        site: site.ok_or("finding missing \"site\"")?,
                        message: message.ok_or("finding missing \"message\"")?,
                    });
                    if p.peek() == Some(b',') {
                        p.pos += 1;
                    }
                }
                other => return Err(format!("expected {{ or ] but found {other:?}")),
            }
        }
        Ok(Report { findings })
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The minimal scanner behind [`Report::from_json`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<u8> {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    /// Advances to just past `"key":` at any nesting depth (keys are
    /// unique in the report grammar).
    fn seek_key(&mut self, key: &str) -> Result<(), String> {
        let needle = format!("\"{key}\"");
        let hay = std::str::from_utf8(self.bytes).map_err(|_| "report is not UTF-8")?;
        let at = hay.find(&needle).ok_or(format!("missing {needle}"))?;
        self.pos = at + needle.len();
        self.expect(b':')
    }

    /// Parses one JSON string literal (the escapes `to_json` emits).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    detector: Detector::Lifecycle,
                    site: "MapPool::pop".into(),
                    message: "use-after-retire: thread t2 dereferenced a retired node".into(),
                },
                Finding {
                    detector: Detector::Race,
                    site: "SpaMap".into(),
                    message: "write-write race between threads t1 and t3".into(),
                },
            ],
        };
        r.sort();
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, r);
        // Idempotent: re-serializing the parsed report is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn sort_orders_by_detector_then_site() {
        let r = sample();
        assert_eq!(r.findings[0].detector, Detector::Race);
        assert_eq!(r.findings[1].detector, Detector::Lifecycle);
    }

    #[test]
    fn empty_report_is_stable() {
        let r = Report::default();
        let json = r.to_json();
        assert!(json.contains("\"race\": 0"));
        assert_eq!(Report::from_json(&json).unwrap(), r);
    }
}
