//! The shared sanitizer substrate: per-thread vector clocks, the
//! FastTrack shadow map, SP (offset-span) labels, the lock-order graph,
//! and the hazard-era lifecycle shadow — all behind one global mutex.
//!
//! One mutex, not striped shadow memory: the sanitizer observes *real*
//! executions for correctness evidence, not performance numbers, and a
//! single serialization point keeps every detector's bookkeeping
//! trivially consistent (the measured overhead is recorded in
//! EXPERIMENTS.md). Everything here deliberately **over-approximates
//! happens-before** — `Relaxed` operations create the same edges as
//! `Acquire`/`Release`, sync-clock history is never cleared, and fences
//! release into / acquire from one global fence clock — so a reported
//! race is a race under *any* correct ordering-sensitivity model, at
//! the cost of missing races that only weaker edges would expose.
//! False positives break the clean-run CI gate; false negatives just
//! wait for a future run.

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock};

use crate::report::{Detector, Finding, Report};

/// Sync-clock namespace tags (the payload is an address or thread id,
/// so the namespaces must not collide).
const K_ATOMIC: u8 = 0;
const K_LOCK: u8 = 1;
const K_PARK: u8 = 2;
const K_FENCE: u8 = 3;

/// A growable vector clock; component `t` is thread `t`'s last
/// synchronized-to clock value (0 = never).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(pub(crate) Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, tid: usize, v: u32) {
        if tid >= self.0.len() {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Component-wise maximum.
    pub(crate) fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }
}

/// FastTrack's scalar clock: one (thread, clock) pair packed where a
/// full vector clock would be overkill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Epoch {
    tid: u32,
    clk: u32,
}

/// FastTrack read shadow: nothing, a single reader epoch (the common
/// case), or a full clock once concurrent readers are observed.
#[derive(Clone, Debug, Default)]
enum ReadShadow {
    #[default]
    None,
    Epoch(Epoch),
    Clock(VClock),
}

/// Per-location FastTrack shadow word pair.
#[derive(Clone, Debug, Default)]
struct VarShadow {
    write: Option<Epoch>,
    read: ReadShadow,
}

/// SP shadow for a reducer-contract location: the last writer's label
/// and the labels that read since (capped; see [`SP_READER_CAP`]).
#[derive(Clone, Debug, Default)]
struct SpShadow {
    writer: Option<(u64, u32)>,
    readers: Vec<(u64, u32)>,
}

/// Readers tracked per SP location between writes. Past the cap new
/// reader labels are dropped (write checks still see the first
/// `SP_READER_CAP`, so detection degrades, never explodes).
const SP_READER_CAP: usize = 32;

/// One interned offset-span label component (see DESIGN.md §17 for the
/// algebra). Index 0 of the node table is the "no label" sentinel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct LabelNode {
    parent: u64,
    offset: u64,
    span: u64,
}

/// The interned offset-span label forest.
#[derive(Debug, Default)]
struct Labels {
    nodes: Vec<LabelNode>,
    interned: HashMap<(u64, u64, u64), u64>,
}

impl Labels {
    fn intern(&mut self, parent: u64, offset: u64, span: u64) -> u64 {
        if self.nodes.is_empty() {
            // Slot 0 is the sentinel "no label".
            self.nodes.push(LabelNode {
                parent: 0,
                offset: 0,
                span: 0,
            });
        }
        if let Some(&id) = self.interned.get(&(parent, offset, span)) {
            return id;
        }
        let id = self.nodes.len() as u64;
        self.nodes.push(LabelNode {
            parent,
            offset,
            span,
        });
        self.interned.insert((parent, offset, span), id);
        id
    }

    /// The continuation label after a sync on `frame`: same parent,
    /// offset advanced by one span.
    fn bump(&mut self, frame: u64) -> u64 {
        let node = self.nodes[frame as usize];
        self.intern(node.parent, node.offset + node.span, node.span)
    }

    /// Root-to-leaf (offset, span) path of a label.
    fn path(&self, mut label: u64, out: &mut Vec<(u64, u64)>) {
        out.clear();
        while label != 0 {
            let node = self.nodes[label as usize];
            out.push((node.offset, node.span));
            label = node.parent;
        }
        out.reverse();
    }

    /// Whether two strands are *serially ordered* under the offset-span
    /// algebra: one label is a prefix of the other, or at the first
    /// differing pair the spans agree and the offsets are congruent
    /// modulo the span (consecutive sync generations of one frame).
    /// Anything else is logically parallel.
    fn sequential(&self, l1: u64, l2: u64) -> bool {
        if l1 == l2 || l1 == 0 || l2 == 0 {
            return true;
        }
        let mut p1 = Vec::new();
        let mut p2 = Vec::new();
        self.path(l1, &mut p1);
        self.path(l2, &mut p2);
        for (a, b) in p1.iter().zip(p2.iter()) {
            if a == b {
                continue;
            }
            let (o1, s1) = *a;
            let (o2, s2) = *b;
            // Differing spans at one depth cannot arise from this
            // runtime's fork/sync shapes; treat conservatively as
            // ordered (false-negative direction).
            return s1 != s2 || o1 % s1 == o2 % s1;
        }
        // One path is a prefix of the other: ancestor and descendant.
        true
    }
}

/// Everything the detectors share, behind the one global mutex.
#[derive(Debug, Default)]
pub(crate) struct State {
    /// Per-thread vector clocks, indexed by sanitizer thread id.
    clocks: Vec<VClock>,
    /// Sync-object clocks: atomics, locks, park tokens, the fence.
    sync: HashMap<(u8, usize), VClock>,
    /// FastTrack shadow per traced plain location.
    shadow: HashMap<usize, VarShadow>,
    /// SP shadow per reducer-contract location.
    sp_shadow: HashMap<usize, SpShadow>,
    /// Interned offset-span labels.
    labels: Labels,
    /// Monotone region counter (region roots are mutually sequential).
    regions: u64,
    /// Locks currently held, per thread (outermost first).
    held: HashMap<usize, Vec<usize>>,
    /// Observed lock-acquisition-order edges.
    lock_edges: HashMap<usize, BTreeSet<usize>>,
    /// Retired-but-not-reclaimed objects: address → retirement stamp.
    retired: HashMap<usize, u64>,
    /// Active hazard-era pins, per thread (a stack: pins may nest).
    pins: HashMap<usize, Vec<u64>>,
    /// Shared fallback id for hooks firing during TLS teardown.
    orphan: Option<usize>,
    /// Deduplicated findings plus the dedup key set.
    findings: Vec<Finding>,
    seen: BTreeSet<(&'static str, String, String)>,
}

impl State {
    fn new_thread(&mut self, inherit: Option<&VClock>) -> usize {
        let tid = self.clocks.len();
        let mut vc = inherit.cloned().unwrap_or_default();
        vc.set(tid, 1);
        self.clocks.push(vc);
        tid
    }

    /// Advances a thread's own clock component (after a release).
    fn tick(&mut self, tid: usize) {
        let clk = self.clocks[tid].get(tid);
        self.clocks[tid].set(tid, clk + 1);
    }

    fn sync_acquire(&mut self, tid: usize, key: (u8, usize)) {
        let State { sync, clocks, .. } = self;
        if let Some(vc) = sync.get(&key) {
            clocks[tid].join(vc);
        }
    }

    fn sync_release(&mut self, tid: usize, key: (u8, usize)) {
        let State { sync, clocks, .. } = self;
        sync.entry(key).or_default().join(&clocks[tid]);
        self.tick(tid);
    }

    fn record(&mut self, detector: Detector, site: &str, message: String) {
        let key = (detector.name(), site.to_string(), message.clone());
        if self.seen.insert(key) {
            self.findings.push(Finding {
                detector,
                site: site.to_string(),
                message,
            });
        }
    }

    // ---- FastTrack -----------------------------------------------------

    fn ft_read(&mut self, tid: usize, addr: usize, site: &str) {
        let epoch = Epoch {
            tid: tid as u32,
            clk: self.clocks[tid].get(tid),
        };
        let mut race = None;
        if let Some(sh) = self.shadow.get(&addr) {
            if let Some(w) = sh.write {
                if w.tid as usize != tid && w.clk > self.clocks[tid].get(w.tid as usize) {
                    race = Some(format!(
                        "write-read race between threads t{} and t{}",
                        w.tid, tid
                    ));
                }
            }
        }
        if let Some(m) = race {
            self.record(Detector::Race, site, m);
        }
        let vc = self.clocks[tid].clone();
        let sh = self.shadow.entry(addr).or_default();
        sh.read = match std::mem::take(&mut sh.read) {
            ReadShadow::None => ReadShadow::Epoch(epoch),
            ReadShadow::Epoch(r) if r.tid as usize == tid || r.clk <= vc.get(r.tid as usize) => {
                ReadShadow::Epoch(epoch)
            }
            ReadShadow::Epoch(r) => {
                // Second concurrent reader: inflate to a read clock.
                let mut rc = VClock::default();
                rc.set(r.tid as usize, r.clk);
                rc.set(tid, epoch.clk);
                ReadShadow::Clock(rc)
            }
            ReadShadow::Clock(mut rc) => {
                rc.set(tid, epoch.clk);
                ReadShadow::Clock(rc)
            }
        };
    }

    fn ft_write(&mut self, tid: usize, addr: usize, site: &str) {
        let epoch = Epoch {
            tid: tid as u32,
            clk: self.clocks[tid].get(tid),
        };
        let mut races = Vec::new();
        if let Some(sh) = self.shadow.get(&addr) {
            let vc = &self.clocks[tid];
            if let Some(w) = sh.write {
                if w.tid as usize != tid && w.clk > vc.get(w.tid as usize) {
                    races.push(format!(
                        "write-write race between threads t{} and t{}",
                        w.tid, tid
                    ));
                }
            }
            match &sh.read {
                ReadShadow::None => {}
                ReadShadow::Epoch(r) => {
                    if r.tid as usize != tid && r.clk > vc.get(r.tid as usize) {
                        races.push(format!(
                            "read-write race between threads t{} and t{}",
                            r.tid, tid
                        ));
                    }
                }
                ReadShadow::Clock(rc) => {
                    for (j, &c) in rc.0.iter().enumerate() {
                        if j != tid && c > 0 && c > vc.get(j) {
                            races.push(format!("read-write race between threads t{j} and t{tid}"));
                            break;
                        }
                    }
                }
            }
        }
        for m in races {
            self.record(Detector::Race, site, m);
        }
        let sh = self.shadow.entry(addr).or_default();
        sh.write = Some(epoch);
        sh.read = ReadShadow::None;
    }

    // ---- SP determinacy ------------------------------------------------

    fn sp_read(&mut self, tid: usize, label: u64, addr: usize, site: &str) {
        if label == 0 {
            return;
        }
        let mut race = None;
        if let Some(sh) = self.sp_shadow.get(&addr) {
            if let Some((wl, wt)) = sh.writer {
                if !self.labels.sequential(wl, label) {
                    race = Some(format!(
                        "write-read determinacy race between logically-parallel strands \
                         (threads t{wt} and t{tid}) not mediated by a reducer view"
                    ));
                }
            }
        }
        if let Some(m) = race {
            self.record(Detector::DeterminacyRace, site, m);
        }
        let sh = self.sp_shadow.entry(addr).or_default();
        if sh.readers.len() < SP_READER_CAP && !sh.readers.iter().any(|&(l, _)| l == label) {
            sh.readers.push((label, tid as u32));
        }
    }

    fn sp_write(&mut self, tid: usize, label: u64, addr: usize, site: &str) {
        if label == 0 {
            return;
        }
        let mut races = Vec::new();
        if let Some(sh) = self.sp_shadow.get(&addr) {
            if let Some((wl, wt)) = sh.writer {
                if !self.labels.sequential(wl, label) {
                    races.push(format!(
                        "write-write determinacy race between logically-parallel strands \
                         (threads t{wt} and t{tid}) not mediated by a reducer view"
                    ));
                }
            }
            for &(rl, rt) in &sh.readers {
                if !self.labels.sequential(rl, label) {
                    races.push(format!(
                        "read-write determinacy race between logically-parallel strands \
                         (threads t{rt} and t{tid}) not mediated by a reducer view"
                    ));
                    break;
                }
            }
        }
        for m in races {
            self.record(Detector::DeterminacyRace, site, m);
        }
        let sh = self.sp_shadow.entry(addr).or_default();
        sh.writer = Some((label, tid as u32));
        sh.readers.clear();
    }

    // ---- Lock order ----------------------------------------------------

    /// Whether `from` reaches `to` in the observed acquisition-order
    /// graph (DFS; the graph is tiny — one node per distinct lock).
    fn lock_reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.lock_edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    fn lock_order_check(&mut self, tid: usize, key: usize) {
        let holds = self.held.get(&tid).cloned().unwrap_or_default();
        for h in holds {
            if h == key {
                continue;
            }
            if self.lock_reaches(key, h) {
                self.record(
                    Detector::LockOrder,
                    "Mutex",
                    format!(
                        "acquisition-order inversion: thread t{tid} acquired two locks in \
                         the opposite order of a previously observed acquisition"
                    ),
                );
            }
            self.lock_edges.entry(h).or_default().insert(key);
        }
    }

    // ---- Lifecycle -----------------------------------------------------

    fn life_retire(&mut self, tid: usize, addr: usize, stamp: u64) {
        if self.retired.insert(addr, stamp).is_some() {
            self.record(
                Detector::Lifecycle,
                "Collector::retire",
                format!("double-retire: thread t{tid} retired an object that was already retired"),
            );
        }
    }

    fn life_check(&mut self, tid: usize, addr: usize, site: &str) {
        if let Some(&stamp) = self.retired.get(&addr) {
            let pinned = self
                .pins
                .get(&tid)
                .is_some_and(|eras| eras.iter().any(|&e| e <= stamp));
            if !pinned {
                self.record(
                    Detector::Lifecycle,
                    site,
                    format!(
                        "use-after-retire: thread t{tid} dereferenced a retired object \
                         without a hazard-era pin covering its retirement"
                    ),
                );
            }
        }
    }
}

thread_local! {
    /// Sanitizer thread id + 1 (0 = not yet assigned).
    static TID: Cell<u32> = const { Cell::new(0) };
    /// Current strand's SP label (0 = outside any sanitized region).
    static SP: Cell<u64> = const { Cell::new(0) };
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE
        .get_or_init(|| Mutex::new(State::default()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Runs `f` with the global state locked and the calling thread's id
/// resolved (assigning a fresh clock on first contact; falling back to
/// a shared orphan id if this thread's TLS is already being torn down).
fn enter<R>(f: impl FnOnce(&mut State, usize) -> R) -> R {
    let cached = TID.try_with(|c| c.get());
    let mut st = lock_state();
    let tid = match cached {
        Ok(0) => {
            let tid = st.new_thread(None);
            let _ = TID.try_with(|c| c.set(tid as u32 + 1));
            tid
        }
        Ok(n) => (n - 1) as usize,
        Err(_) => match st.orphan {
            Some(t) => t,
            None => {
                let t = st.new_thread(None);
                st.orphan = Some(t);
                t
            }
        },
    };
    f(&mut st, tid)
}

// ---- Crate-internal hook surface (called by sync.rs / thread.rs) ------

pub(crate) fn atomic_acquire(key: usize) {
    enter(|st, tid| st.sync_acquire(tid, (K_ATOMIC, key)));
}

pub(crate) fn atomic_release(key: usize) {
    enter(|st, tid| st.sync_release(tid, (K_ATOMIC, key)));
}

pub(crate) fn fence_all() {
    enter(|st, tid| {
        st.sync_acquire(tid, (K_FENCE, 0));
        st.sync_release(tid, (K_FENCE, 0));
    });
}

pub(crate) fn lock_acquiring(key: usize) {
    enter(|st, tid| st.lock_order_check(tid, key));
}

pub(crate) fn lock_acquired(key: usize) {
    enter(|st, tid| {
        st.held.entry(tid).or_default().push(key);
        st.sync_acquire(tid, (K_LOCK, key));
    });
}

pub(crate) fn lock_released(key: usize) {
    enter(|st, tid| {
        if let Some(held) = st.held.get_mut(&tid) {
            if let Some(pos) = held.iter().rposition(|&k| k == key) {
                held.remove(pos);
            }
        }
        st.sync_release(tid, (K_LOCK, key));
    });
}

pub(crate) fn unpark(target: u32) {
    enter(|st, tid| {
        let _ = tid;
        st.sync_release(tid, (K_PARK, target as usize));
    });
}

pub(crate) fn park_wake() {
    enter(|st, tid| st.sync_acquire(tid, (K_PARK, tid)));
}

pub(crate) fn current_tid() -> u32 {
    enter(|_, tid| tid as u32)
}

/// Parent half of a spawn: allocate the child's id with the parent's
/// clock inherited, and advance the parent past the fork.
pub(crate) fn prepare_child() -> u32 {
    enter(|st, tid| {
        let vc = st.clocks[tid].clone();
        let child = st.new_thread(Some(&vc));
        st.tick(tid);
        child as u32
    })
}

/// Child half of a spawn: bind the pre-allocated id to this thread.
pub(crate) fn adopt(tid: u32) {
    let _ = TID.try_with(|c| c.set(tid + 1));
}

/// Publishes a finishing thread's final clock for the joiner.
pub(crate) fn publish_final(tid: u32, slot: &Mutex<Option<VClock>>) {
    let st = lock_state();
    let vc = st.clocks[tid as usize].clone();
    drop(st);
    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(vc);
}

/// Joiner half: absorb the joined thread's final clock.
pub(crate) fn join_final(slot: &Mutex<Option<VClock>>) {
    let vc = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(vc) = vc {
        enter(|st, tid| st.clocks[tid].join(&vc));
    }
}

// ---- Public hook surface (called by the instrumented crates) ----------

/// Records a plain-memory read at a reducer-contract location: checked
/// by both the FastTrack and SP detectors.
pub fn plain_read(addr: usize, site: &'static str) {
    let label = SP.try_with(|c| c.get()).unwrap_or(0);
    enter(|st, tid| {
        st.ft_read(tid, addr, site);
        st.sp_read(tid, label, addr, site);
    });
}

/// Records a plain-memory write at a reducer-contract location.
pub fn plain_write(addr: usize, site: &'static str) {
    let label = SP.try_with(|c| c.get()).unwrap_or(0);
    enter(|st, tid| {
        st.ft_write(tid, addr, site);
        st.sp_write(tid, label, addr, site);
    });
}

/// Records a plain-memory read on runtime-internal shared state
/// (FastTrack only: pool-recycled structures legitimately cross
/// logically-parallel strands, so the SP detector must not see them).
pub fn shadow_read(addr: usize, site: &'static str) {
    enter(|st, tid| st.ft_read(tid, addr, site));
}

/// Records a runtime-internal plain-memory write (FastTrack only).
pub fn shadow_write(addr: usize, site: &'static str) {
    enter(|st, tid| st.ft_write(tid, addr, site));
}

/// The calling strand's current SP label (0 outside sanitized regions).
pub fn sp_current() -> u64 {
    SP.try_with(|c| c.get()).unwrap_or(0)
}

/// Installs an SP label on the calling thread (strand hand-off).
pub fn sp_set(label: u64) {
    let _ = SP.try_with(|c| c.set(label));
}

/// Forks `frame` into (continuation, child) labels: the spawning strand
/// continues as the first, the spawned task executes as the second.
pub fn sp_fork(frame: u64) -> (u64, u64) {
    if frame == 0 {
        return (0, 0);
    }
    enter(|st, _| (st.labels.intern(frame, 1, 2), st.labels.intern(frame, 2, 2)))
}

/// Installs `label` for an executing task; returns the previous label
/// for [`sp_exit`].
pub fn sp_enter(label: u64) -> u64 {
    let prev = sp_current();
    sp_set(label);
    prev
}

/// Restores the label saved by [`sp_enter`].
pub fn sp_exit(prev: u64) {
    sp_set(prev);
}

/// A sync on `frame`: every label forked from it is now serially before
/// the calling strand, which continues as the bumped frame.
pub fn sp_join(frame: u64) {
    let next = if frame == 0 {
        0
    } else {
        enter(|st, _| st.labels.bump(frame))
    };
    sp_set(next);
}

/// Starts a parallel region's root strand: a fresh span-1 label, so
/// successive regions are mutually sequential. Returns the previous
/// label for [`sp_exit`].
pub fn sp_region_enter() -> u64 {
    let label = enter(|st, _| {
        st.regions += 1;
        let r = st.regions;
        st.labels.intern(0, r, 1)
    });
    sp_enter(label)
}

/// Hazard-era lifecycle hooks (see `cilkm-core/src/reclaim.rs`).
pub mod lifecycle {
    use super::enter;

    /// An object was handed to the collector with retirement stamp
    /// `stamp` (the pre-bump era).
    pub fn retire(addr: usize, stamp: u64) {
        enter(|st, tid| st.life_retire(tid, addr, stamp));
    }

    /// A retired object was physically reclaimed (its address may be
    /// legitimately reused from here on).
    pub fn reclaim(addr: usize) {
        enter(|st, _| {
            st.retired.remove(&addr);
        });
    }

    /// The calling thread pinned the collector at `era`.
    pub fn pin(era: u64) {
        enter(|st, tid| st.pins.entry(tid).or_default().push(era));
    }

    /// The calling thread released its most recent pin.
    pub fn unpin() {
        enter(|st, tid| {
            if let Some(eras) = st.pins.get_mut(&tid) {
                eras.pop();
            }
        });
    }

    /// The calling thread is about to dereference `addr`; flags the
    /// access if the object is retired and no live pin covers it.
    pub fn check_access(addr: usize, site: &'static str) {
        enter(|st, tid| st.life_check(tid, addr, site));
    }
}

/// A deduplicated, stable-sorted snapshot of every finding so far.
pub fn snapshot() -> Report {
    let mut report = enter(|st, _| Report {
        findings: st.findings.clone(),
    });
    report.sort();
    report
}

/// Total findings recorded so far (all detectors).
pub fn finding_count() -> usize {
    enter(|st, _| st.findings.len())
}

/// Serializes [`snapshot`] as deterministic JSON.
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Writes the report to `path` (parent directory must exist).
pub fn write_report(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, report_json())
}

/// Writes the report to `$CILKM_SAN_REPORT` if that variable is set —
/// the runtime calls this when a pool shuts down, so test binaries and
/// examples leave a report behind for CI without any per-test plumbing.
pub fn flush_report() {
    if let Ok(path) = std::env::var("CILKM_SAN_REPORT") {
        if !path.is_empty() {
            let _ = write_report(std::path::Path::new(&path));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a state with `n` registered threads (ids 0..n).
    fn state_with_threads(n: usize) -> State {
        let mut st = State::default();
        for _ in 0..n {
            st.new_thread(None);
        }
        st
    }

    #[test]
    fn unsynchronized_writes_race_and_synchronized_do_not() {
        let mut st = state_with_threads(2);
        st.ft_write(0, 0x10, "loc");
        // t1 has no knowledge of t0's write: race.
        st.ft_write(1, 0x10, "loc");
        assert_eq!(st.findings.len(), 1);
        assert!(st.findings[0].message.contains("write-write"));

        // Now synchronize t0 → t1 through a sync object and write again:
        // no new finding.
        let mut st = state_with_threads(2);
        st.ft_write(0, 0x20, "loc2");
        st.sync_release(0, (K_ATOMIC, 7));
        st.sync_acquire(1, (K_ATOMIC, 7));
        st.ft_write(1, 0x20, "loc2");
        assert!(st.findings.is_empty());
    }

    #[test]
    fn concurrent_readers_inflate_and_catch_a_later_writer() {
        let mut st = state_with_threads(3);
        st.ft_read(0, 0x30, "loc");
        st.ft_read(1, 0x30, "loc");
        assert!(st.findings.is_empty(), "reads never race with reads");
        st.ft_write(2, 0x30, "loc");
        assert_eq!(st.findings.len(), 1);
        assert!(st.findings[0].message.contains("read-write"));
    }

    #[test]
    fn offset_span_labels_order_forks_and_syncs() {
        let mut labels = Labels::default();
        let region = labels.intern(0, 1, 1);
        let a = labels.intern(region, 1, 2);
        let b = labels.intern(region, 2, 2);
        let after = labels.bump(region);
        // Siblings of one fork are parallel; both precede the sync.
        assert!(!labels.sequential(a, b));
        assert!(labels.sequential(a, after));
        assert!(labels.sequential(b, after));
        // Nested: a's own children stay parallel to b.
        let aa = labels.intern(a, 1, 2);
        assert!(!labels.sequential(aa, b));
        assert!(labels.sequential(aa, a), "child and ancestor are ordered");
        // A second fork from the bumped frame is after the first fork.
        let c = labels.intern(after, 1, 2);
        assert!(labels.sequential(a, c));
        assert!(labels.sequential(b, c));
        // Distinct regions are sequential.
        let region2 = labels.intern(0, 2, 1);
        let in_region2 = labels.intern(region2, 2, 2);
        assert!(labels.sequential(a, in_region2));
    }

    #[test]
    fn sp_shadow_flags_parallel_strands_only() {
        let mut st = state_with_threads(2);
        let region = st.labels.intern(0, 1, 1);
        let a = st.labels.intern(region, 1, 2);
        let b = st.labels.intern(region, 2, 2);
        st.sp_write(0, a, 0x40, "counter");
        st.sp_write(1, b, 0x40, "counter");
        assert_eq!(st.findings.len(), 1);
        assert_eq!(st.findings[0].detector, Detector::DeterminacyRace);
        // Sequential follow-up (post-sync strand): no new finding.
        let after = st.labels.bump(region);
        st.sp_write(0, after, 0x40, "counter");
        assert_eq!(st.findings.len(), 1);
    }

    #[test]
    fn lock_order_inversion_is_reported_once() {
        let mut st = state_with_threads(2);
        // t0: A then B.
        st.lock_order_check(0, 0xA);
        st.held.entry(0).or_default().push(0xA);
        st.lock_order_check(0, 0xB);
        st.held.entry(0).or_default().push(0xB);
        assert!(st.findings.is_empty());
        st.held.get_mut(&0).unwrap().clear();
        // t1: B then A — inversion.
        st.lock_order_check(1, 0xB);
        st.held.entry(1).or_default().push(0xB);
        st.lock_order_check(1, 0xA);
        assert_eq!(st.findings.len(), 1);
        assert_eq!(st.findings[0].detector, Detector::LockOrder);
    }

    #[test]
    fn lifecycle_flags_unpinned_access_and_double_retire() {
        let mut st = state_with_threads(2);
        st.life_retire(0, 0x50, 9);
        // Pinned at an era covering the stamp: fine.
        st.pins.entry(1).or_default().push(9);
        st.life_check(1, 0x50, "MapPool::pop");
        assert!(st.findings.is_empty());
        // Pinned too late (era after the stamp): flagged.
        st.pins.get_mut(&1).unwrap().clear();
        st.pins.entry(1).or_default().push(10);
        st.life_check(1, 0x50, "MapPool::pop");
        assert_eq!(st.findings.len(), 1);
        // Retiring the same address again without a reclaim: flagged.
        st.life_retire(0, 0x50, 11);
        assert_eq!(st.findings.len(), 2);
        // After reclaim the address is clean for reuse.
        st.retired.remove(&0x50);
        st.life_retire(0, 0x50, 12);
        assert_eq!(st.findings.len(), 2);
    }
}
