//! cilkm-san: an in-tree dynamic sanitizer for **real executions** of
//! the memory-mapped reducer runtime.
//!
//! The model checker (`cilkm-checker`) proves small bounded scenarios
//! exhaustively; this crate watches the actual runtime at full scale —
//! stress tests, examples, benches — through the same `msync` facade
//! seam. Three detectors share one per-thread vector-clock substrate
//! (DESIGN.md §17):
//!
//! 1. **FastTrack happens-before races** — epoch-optimized read/write
//!    shadow state per traced location; atomics, locks, park/unpark and
//!    thread fork/join build the happens-before relation.
//! 2. **SP determinacy races** — offset-span labels threaded through
//!    the runtime's spawn/sync sites flag shared plain accesses between
//!    logically-parallel strands that are not mediated by a reducer
//!    view (the paper's correctness contract).
//! 3. **Lifecycle shadow checks** — use-after-retire and double-retire
//!    on the hazard-era collector's objects.
//!
//! A fourth cheap detector rides along: lock-acquisition-order
//! inversion (potential AB/BA deadlock) on the facade mutexes.
//!
//! The crate has zero dependencies and is always fully functional; the
//! `sanitize` feature gate lives at the hook call sites in the
//! instrumented crates, so with the feature off every hook compiles to
//! nothing and hot paths stay emit-free. Findings are deduplicated and
//! serialized as deterministic stable-sorted JSON ([`report`]); the
//! `cilkm-san` bin summarizes a report file for CI.

pub mod report;
mod state;
pub mod sync;
pub mod thread;

pub use state::lifecycle;
pub use state::{
    finding_count, flush_report, plain_read, plain_write, report_json, shadow_read, shadow_write,
    snapshot, sp_current, sp_enter, sp_exit, sp_fork, sp_join, sp_region_enter, sp_set,
    write_report,
};
