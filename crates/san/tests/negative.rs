//! Negative controls for the sanitizer's own primitives: seeded bugs
//! that MUST be detected, plus properly synchronized twins that must
//! stay clean. (The runtime-level controls — determinacy races through
//! real spawn/sync and lifecycle violations through the real collector
//! — live with the crates that own those hook sites.)
//!
//! All tests share one process-global sanitizer state, so every
//! scenario uses a unique site label and asserts only on findings
//! carrying its own label.

use cilkm_san::report::Detector;
use cilkm_san::{plain_write, snapshot, sync::Mutex, thread};

/// Findings for one site label in the current snapshot.
fn findings_at(site: &str) -> Vec<(Detector, String)> {
    snapshot()
        .findings
        .into_iter()
        .filter(|f| f.site == site)
        .map(|f| (f.detector, f.message))
        .collect()
}

#[test]
fn unsynchronized_counter_is_reported() {
    // Two threads bump a "plain" counter with no synchronization at
    // all. The address is leaked so no later test can reuse it.
    let addr = Box::leak(Box::new(0u64)) as *mut u64 as usize;
    let t1 = thread::spawn(move || plain_write(addr, "negative.racy-counter"));
    let t2 = thread::spawn(move || plain_write(addr, "negative.racy-counter"));
    t1.join().unwrap();
    t2.join().unwrap();

    let found = findings_at("negative.racy-counter");
    assert!(
        found
            .iter()
            .any(|(d, m)| *d == Detector::Race && m.contains("write-write")),
        "seeded racy counter was not detected: {found:?}"
    );
}

#[test]
fn fork_join_ordered_counter_stays_clean() {
    // Same shape, but the second writer starts only after joining the
    // first: the fork/join edges order the writes.
    let addr = Box::leak(Box::new(0u64)) as *mut u64 as usize;
    thread::spawn(move || plain_write(addr, "negative.joined-counter"))
        .join()
        .unwrap();
    thread::spawn(move || plain_write(addr, "negative.joined-counter"))
        .join()
        .unwrap();

    assert_eq!(
        findings_at("negative.joined-counter"),
        vec![],
        "fork/join-ordered writes must not race"
    );
}

#[test]
fn ab_ba_lock_inversion_is_reported() {
    // One thread takes A then B, another takes B then A — sequentially,
    // so there is no deadlock, but the acquisition-order cycle is real.
    let locks = Box::leak(Box::new((Mutex::new(0u32), Mutex::new(0u32))));
    let (a, b) = (&locks.0, &locks.1);
    thread::spawn(move || {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    })
    .join()
    .unwrap();
    thread::spawn(move || {
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
    })
    .join()
    .unwrap();

    let found = findings_at("Mutex");
    assert!(
        found.iter().any(|(d, _)| *d == Detector::LockOrder),
        "seeded AB/BA inversion was not detected: {found:?}"
    );
}

#[test]
fn release_acquire_and_unpark_order_a_handoff() {
    use cilkm_san::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    // The parker publishes its handle, the writer thread writes,
    // releases a flag, and unparks it; the parker re-checks the flag
    // after each wakeup and then writes the same location. The
    // instrumented flag makes the edge deterministic (the unpark edge
    // alone would race with a timeout-before-unpark wakeup).
    let addr = Box::leak(Box::new(0u64)) as *mut u64 as usize;
    let ready: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let slot: &'static Mutex<Option<thread::Thread>> = Box::leak(Box::new(Mutex::new(None)));

    let parker = thread::spawn(move || {
        *slot.lock() = Some(thread::current());
        while !ready.load(Ordering::Acquire) {
            thread::park_timeout(Duration::from_millis(1));
        }
        plain_write(addr, "negative.parked-writer");
    });
    let waker = thread::spawn(move || {
        plain_write(addr, "negative.parked-writer");
        ready.store(true, Ordering::Release);
        loop {
            if let Some(t) = slot.lock().as_ref() {
                t.unpark();
                break;
            }
            thread::yield_now();
        }
    });
    parker.join().unwrap();
    waker.join().unwrap();

    assert_eq!(
        findings_at("negative.parked-writer"),
        vec![],
        "park/unpark handoff must carry a happens-before edge"
    );
}
