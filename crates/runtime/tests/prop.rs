//! Property tests for the scheduler: arbitrary join trees must compute
//! exactly what their serial counterparts compute, under any worker
//! count, and the deque must never lose or duplicate work.

use cilkm_runtime::{deque, join, parallel_for, scope, Pool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// An expression tree evaluated with one join per internal node.
#[derive(Debug, Clone)]
enum Expr {
    Const(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval_serial(&self) -> u64 {
        match self {
            Expr::Const(c) => *c as u64,
            Expr::Add(a, b) => a.eval_serial().wrapping_add(b.eval_serial()),
            Expr::Mul(a, b) => a.eval_serial().wrapping_mul(b.eval_serial()),
        }
    }

    fn eval_parallel(&self) -> u64 {
        match self {
            Expr::Const(c) => *c as u64,
            Expr::Add(a, b) => {
                let (x, y) = join(|| a.eval_parallel(), || b.eval_parallel());
                x.wrapping_add(y)
            }
            Expr::Mul(a, b) => {
                let (x, y) = join(|| a.eval_parallel(), || b.eval_parallel());
                x.wrapping_mul(y)
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = any::<u8>().prop_map(Expr::Const);
    leaf.prop_recursive(10, 128, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_trees_evaluate_exactly(expr in expr_strategy(), workers in 1usize..5) {
        let expected = expr.eval_serial();
        let pool = Pool::new(workers);
        let got = pool.run(|| expr.eval_parallel());
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn parallel_for_partitions_exactly(
        len in 0usize..5000,
        grain in 1usize..512,
        workers in 1usize..4,
    ) {
        let pool = Pool::new(workers);
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        pool.run(|| {
            parallel_for(0..len, grain, &|r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {}", i);
        }
    }

    #[test]
    fn scope_runs_each_spawn_once(n_tasks in 0usize..200, workers in 1usize..4) {
        let pool = Pool::new(workers);
        let count = AtomicU64::new(0);
        pool.run(|| {
            scope(|s| {
                for _ in 0..n_tasks {
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        prop_assert_eq!(count.into_inner(), n_tasks as u64);
    }

    /// Single-owner deque semantics: any push/pop interleaving behaves
    /// like a stack (this is the serial fast path the paper relies on).
    #[test]
    fn deque_is_a_stack_for_its_owner(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let (owner, _stealer) = deque::deque();
        let mut model: Vec<usize> = Vec::new();
        let mut next = 1usize;
        for push in ops {
            if push {
                owner.push((next * 8) as *mut ());
                model.push(next);
                next += 1;
            } else {
                let got = owner.pop().map(|p| p as usize / 8);
                prop_assert_eq!(got, model.pop());
            }
        }
        prop_assert_eq!(owner.len(), model.len());
    }
}

/// Contended-deque stress: one owner pushing and popping against many
/// concurrent thieves. Every pushed job must be claimed exactly once —
/// either popped by the owner or stolen by exactly one thief — and
/// nothing may be lost or duplicated under contention.
#[test]
fn contended_deque_loses_and_duplicates_nothing() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    const JOBS: usize = 20_000;
    const THIEVES: usize = 6;

    let (owner, stealer) = deque::deque();
    let stealer = Arc::new(stealer);
    let done = Arc::new(AtomicBool::new(false));
    // One claim slot per job id; jobs travel as (id+1)*8 so the pointer
    // is non-null and 8-aligned like a real JobRef.
    let claims: Arc<Vec<AtomicU64>> = Arc::new((0..JOBS).map(|_| AtomicU64::new(0)).collect());

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let stealer = Arc::clone(&stealer);
            let done = Arc::clone(&done);
            let claims = Arc::clone(&claims);
            std::thread::spawn(move || {
                let mut stolen = 0u64;
                loop {
                    match stealer.steal() {
                        deque::Steal::Success(p) => {
                            let id = p as usize / 8 - 1;
                            claims[id].fetch_add(1, Ordering::Relaxed);
                            stolen += 1;
                        }
                        deque::Steal::Retry => std::hint::spin_loop(),
                        deque::Steal::Empty => {
                            if done.load(Ordering::Acquire) && stealer.is_empty() {
                                return stolen;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            })
        })
        .collect();

    // The owner interleaves bursts of pushes with pops, like a worker
    // spawning trees of jobs while draining its own tail.
    let mut pushed = 0usize;
    while pushed < JOBS {
        let burst = 1 + (pushed % 37);
        for _ in 0..burst.min(JOBS - pushed) {
            owner.push(((pushed + 1) * 8) as *mut ());
            pushed += 1;
        }
        // Pop roughly a third of each burst back.
        for _ in 0..burst / 3 {
            if let Some(p) = owner.pop() {
                let id = p as usize / 8 - 1;
                claims[id].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Drain whatever the thieves have not taken.
    while let Some(p) = owner.pop() {
        let id = p as usize / 8 - 1;
        claims[id].fetch_add(1, Ordering::Relaxed);
    }
    done.store(true, Ordering::Release);

    let stolen_total: u64 = thieves.into_iter().map(|t| t.join().unwrap()).sum();
    for (id, c) in claims.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "job {id} claimed wrong number of times"
        );
    }
    assert!(stolen_total <= JOBS as u64);
}

/// Deterministic many-round stress: mixed joins and scopes, checked sums.
#[test]
fn mixed_join_scope_stress() {
    let pool = Pool::new(4);
    for round in 0..20u64 {
        let total = AtomicU64::new(0);
        pool.run(|| {
            scope(|s| {
                for k in 0..8u64 {
                    let total = &total;
                    s.spawn(move |_| {
                        let (a, b) = join(
                            || (0..500).map(|i| i * k).sum::<u64>(),
                            || (0..500).map(|i| i + k).sum::<u64>(),
                        );
                        total.fetch_add(a + b, Ordering::Relaxed);
                    });
                }
            });
        });
        let expect: u64 = (0..8u64)
            .map(|k| (0..500).map(|i| i * k).sum::<u64>() + (0..500).map(|i| i + k).sum::<u64>())
            .sum();
        assert_eq!(total.into_inner(), expect, "round {round}");
    }
}
