//! PR-8: the online constant-space work/span profiler and the offline
//! SP-DAG reconstruction are two independent implementations of the same
//! Cilkview-style accounting. On a known fib-shaped DAG with busy leaves
//! they must agree: exactly on the structural counts (spawns, syncs,
//! strands), and within a small relative tolerance on the measured work
//! and span (both read the same monotonic clock over the same run, so
//! only per-event bookkeeping overhead separates them).
//!
//! Compiled out without the `trace` feature (the profiler and the
//! tracer are both feature-gated to keep the hot path free).
#![cfg(feature = "trace")]

use cilkm_obs::{dag, trace};
use cilkm_runtime::{join, Pool};
use std::time::Instant;

/// Spins for ~`ns` so every leaf strand has hand-computable weight that
/// dwarfs scheduler bookkeeping.
fn busy(ns: u64) -> u64 {
    let start = Instant::now();
    let mut acc = 0u64;
    while (start.elapsed().as_nanos() as u64) < ns {
        acc = acc.wrapping_add(1);
        std::hint::spin_loop();
    }
    acc
}

/// fib with one `join` per internal node and a 2 ms busy leaf: for n = 6
/// that is 13 leaves (26 ms of work), 12 spawns, 12 syncs, and a span of
/// one leaf plus the spine to it.
fn fib_busy(n: u32) -> u64 {
    if n < 2 {
        busy(2_000_000);
        return n as u64;
    }
    let (a, b) = join(|| fib_busy(n - 1), || fib_busy(n - 2));
    a.wrapping_add(b)
}

/// `|a - b|` within `pct`% of the larger (floored at 1 to avoid 0/0).
fn close(a: u64, b: u64, pct: f64, what: &str) {
    let (af, bf) = (a as f64, b as f64);
    let bound = af.max(bf).max(1.0) * pct / 100.0;
    assert!(
        (af - bf).abs() <= bound,
        "{what}: online {a} vs offline {b} differ by more than {pct}%"
    );
}

#[test]
fn online_and_offline_agree_on_a_known_dag() {
    let pool = Pool::new(3);

    // One run, both instruments: tracing on around a profiled region so
    // the offline DAG describes exactly the execution the online
    // accumulator measured.
    let t0 = cilkm_obs::clock::now_ns();
    let was_enabled = trace::enabled();
    trace::set_enabled(true);
    let (value, report) = pool.run_profiled(|| fib_busy(6));
    trace::set_enabled(was_enabled);
    let traced = trace::drain().since_ns(t0);

    assert_eq!(value, 8, "fib(6)");
    let dropped: u64 = traced.threads.iter().map(|t| t.dropped).sum();
    assert_eq!(dropped, 0, "rings must not truncate this tiny run");

    let analysis = dag::build(&traced);
    if analysis.warnings != 0 {
        for t in &traced.threads {
            eprintln!("== {}", t.label);
            for e in &t.events {
                eprintln!("  {:>12} {:?} {}", e.ts_ns, e.kind, e.arg);
            }
        }
    }
    assert_eq!(analysis.warnings, 0, "trace must parse cleanly");
    assert_eq!(analysis.incomplete_spawns, 0);

    // Structural counts are exact on both sides: 12 internal nodes, one
    // spawn + one sync each, and 13 strands (root + 12 spawned tasks).
    assert_eq!(report.spawns, 12);
    assert_eq!(analysis.spawns, 12);
    assert_eq!(report.syncs, 12);
    assert_eq!(analysis.syncs, 12);
    assert_eq!(analysis.strands, 13);

    // Work is ~26 ms of busy leaves; span at least one 2 ms leaf. The
    // two instruments bracket the same intervals with the same clock,
    // so 25% covers their per-event bookkeeping skew with a wide berth.
    assert!(report.work_ns >= 24_000_000, "work {} ns", report.work_ns);
    assert!(report.span_ns >= 2_000_000, "span {} ns", report.span_ns);
    eprintln!("ONLINE:\n{}", report.render());
    eprintln!("OFFLINE:\n{}", analysis.render(20));
    close(report.work_ns, analysis.work_ns, 25.0, "work");
    close(report.span_ns, analysis.span_ns, 25.0, "span");
    close(
        report.burdened_span_ns,
        analysis.burdened_span_ns,
        25.0,
        "burdened span",
    );

    // And both must see real parallelism in a 13-leaf balanced-ish DAG.
    assert!(report.parallelism() > 1.5, "{}", report.render());
    assert!(analysis.parallelism() > 1.5, "{}", analysis.render(5));
}
