//! A from-scratch Chase–Lev work-stealing deque.
//!
//! The owner pushes and pops jobs at the *bottom* in LIFO order — which is
//! what makes an unstolen execution mimic the serial one (§3 of the paper)
//! — while thieves steal from the *top*, taking the oldest (shallowest,
//! largest) frames first.
//!
//! The implementation follows Chase & Lev (SPAA 2005) with the C11
//! memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
//! Elements are single machine words (type-erased [`JobRef`](crate::job::JobRef)s stored as
//! `*mut ()`), so every slot access can itself be an atomic load/store and
//! the algorithm needs no data races on plain memory. Buffers grow
//! geometrically; retired buffers are kept alive until the deque is
//! dropped because a concurrent thief may still be reading an old one —
//! the classic, simple reclamation strategy for this structure (total
//! waste is bounded by 2× the peak buffer size).

use std::ptr;
use std::sync::Arc;

use crate::msync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use crate::msync::Mutex;

/// A geometrically grown ring buffer of job slots.
struct Buffer {
    mask: usize,
    slots: Box<[AtomicPtr<()>]>,
}

impl Buffer {
    fn new(cap: usize) -> Box<Buffer> {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            mask: cap - 1,
            slots,
        })
    }

    #[inline]
    fn get(&self, i: isize) -> *mut () {
        self.slots[(i as usize) & self.mask].load(Ordering::Relaxed)
    }

    #[inline]
    fn put(&self, i: isize, v: *mut ()) {
        self.slots[(i as usize) & self.mask].store(v, Ordering::Relaxed);
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }
}

/// Shared state of one deque.
struct Shared {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Retired buffers, freed when the deque is dropped.
    retired: Mutex<Vec<*mut Buffer>>,
}

// SAFETY: `top`/`bottom`/`buffer` are atomics, and the retired-buffer
// list is mutex-guarded; the buffer pointers are heap allocations owned
// by this deque.
unsafe impl Send for Shared {}
// SAFETY: concurrent slot access follows the Chase-Lev protocol — the
// owner operates on `bottom`, thieves claim elements by CAS on `top` —
// so no slot is handed to two threads.
unsafe impl Sync for Shared {}

impl Drop for Shared {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no worker or stealer is live; the
        // current and retired buffers were all created by
        // `Box::into_raw` in `grow` and each is freed exactly once here.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for b in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(b));
            }
        }
    }
}

/// Outcome of a steal attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole the given item.
    Success(*mut ()),
}

/// The owner's handle: push and pop at the bottom. Not cloneable and not
/// `Sync`; exactly one thread may own it.
pub struct DequeOwner {
    shared: Arc<Shared>,
}

/// A thief's handle: steal from the top. Cloneable and shareable.
#[derive(Clone)]
pub struct DequeStealer {
    shared: Arc<Shared>,
}

// SAFETY: the owner is a unique handle (not Clone); moving it moves the
// bottom end of the protocol wholesale to another thread.
unsafe impl Send for DequeOwner {}
// SAFETY: stealers only touch `top` (by CAS) and read slots they have
// claimed; `Shared` is Sync, so handles may move freely.
unsafe impl Send for DequeStealer {}
// SAFETY: as for `Send` — all stealer operations are already designed
// for concurrent use from many threads.
unsafe impl Sync for DequeStealer {}

/// Creates a new deque, returning the owner and a stealer handle.
pub fn deque() -> (DequeOwner, DequeStealer) {
    let shared = Arc::new(Shared {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::new(64))),
        retired: Mutex::new(Vec::new()),
    });
    (
        DequeOwner {
            shared: Arc::clone(&shared),
        },
        DequeStealer { shared },
    )
}

impl DequeOwner {
    /// Pushes an item at the bottom.
    pub fn push(&self, item: *mut ()) {
        debug_assert!(!item.is_null());
        let s = &*self.shared;
        let b = s.bottom.load(Ordering::Relaxed);
        let t = s.top.load(Ordering::Acquire);
        // SAFETY: only the owner replaces `buffer`, and replaced buffers
        // are retired, not freed, so the pointer is always live here.
        let mut buf = unsafe { &*s.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            buf = self.grow(b, t);
        }
        buf.put(b, item);
        fence(Ordering::Release);
        s.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops the most recently pushed item, if any (the serial fast path).
    pub fn pop(&self) -> Option<*mut ()> {
        let s = &*self.shared;
        let b = s.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: as in `push` — owner-only replacement plus retirement
        // keep the buffer pointer valid.
        let buf = unsafe { &*s.buffer.load(Ordering::Relaxed) };
        s.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = s.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty.
            let item = buf.get(b);
            if t == b {
                // Last element: race with thieves via CAS on top.
                let won = s
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                s.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(item)
                } else {
                    None
                }
            } else {
                Some(item)
            }
        } else {
            // Empty: restore bottom.
            s.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Number of items currently in the deque (owner's racy estimate).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        let b = s.bottom.load(Ordering::Relaxed);
        let t = s.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Doubles the buffer, copying live elements. Owner-only.
    #[cold]
    fn grow(&self, b: isize, t: isize) -> &Buffer {
        let s = &*self.shared;
        let old_ptr = s.buffer.load(Ordering::Relaxed);
        // SAFETY: `grow` is owner-only, and the owner is the only writer
        // of `buffer`, so `old_ptr` is the live current buffer.
        let old = unsafe { &*old_ptr };
        let new = Buffer::new(old.cap() * 2);
        for i in t..b {
            new.put(i, old.get(i));
        }
        let new_ptr = Box::into_raw(new);
        s.buffer.store(new_ptr, Ordering::Release);
        // A thief may still be reading `old`; retire it instead of freeing.
        s.retired.lock().push(old_ptr);
        // SAFETY: `new_ptr` came from `Box::into_raw` two lines up and
        // is freed only when the deque drops.
        unsafe { &*new_ptr }
    }
}

impl DequeStealer {
    /// Attempts to steal the oldest item from the top.
    pub fn steal(&self) -> Steal {
        let s = &*self.shared;
        let t = s.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = s.bottom.load(Ordering::Acquire);
        if t < b {
            // Non-empty: read the element *before* claiming it; the claim
            // (CAS on top) validates that the owner has not raced past us.
            // SAFETY: buffers are retired (never freed) while stealers
            // exist, so the loaded pointer is live even if stale.
            let buf = unsafe { &*s.buffer.load(Ordering::Acquire) };
            let item = buf.get(t);
            if s.top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(item)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Racy emptiness estimate (used by victim selection heuristics).
    pub fn is_empty(&self) -> bool {
        let s = &*self.shared;
        let t = s.top.load(Ordering::Relaxed);
        let b = s.bottom.load(Ordering::Relaxed);
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tag(i: usize) -> *mut () {
        (i * 8 + 8) as *mut ()
    }

    #[test]
    fn lifo_for_owner() {
        let (owner, _stealer) = deque();
        owner.push(tag(1));
        owner.push(tag(2));
        owner.push(tag(3));
        assert_eq!(owner.pop(), Some(tag(3)));
        assert_eq!(owner.pop(), Some(tag(2)));
        assert_eq!(owner.pop(), Some(tag(1)));
        assert_eq!(owner.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let (owner, stealer) = deque();
        owner.push(tag(1));
        owner.push(tag(2));
        owner.push(tag(3));
        assert_eq!(stealer.steal(), Steal::Success(tag(1)));
        assert_eq!(stealer.steal(), Steal::Success(tag(2)));
        assert_eq!(owner.pop(), Some(tag(3)));
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (owner, stealer) = deque();
        for i in 0..1000 {
            owner.push(tag(i));
        }
        assert_eq!(owner.len(), 1000);
        // Steal a few from the top (oldest), pop the rest (newest first).
        for i in 0..10 {
            assert_eq!(stealer.steal(), Steal::Success(tag(i)));
        }
        for i in (10..1000).rev() {
            assert_eq!(owner.pop(), Some(tag(i)));
        }
        assert_eq!(owner.pop(), None);
    }

    #[test]
    fn single_element_race_is_exclusive() {
        // The t == b CAS path: owner pop and thief steal must never both
        // win the same element.
        for _ in 0..200 {
            let (owner, stealer) = deque();
            owner.push(tag(7));
            let handle = {
                let stealer = stealer.clone();
                std::thread::spawn(move || loop {
                    match stealer.steal() {
                        Steal::Success(p) => return Some(p as usize),
                        Steal::Empty => return None,
                        Steal::Retry => continue,
                    }
                })
            };
            let popped = owner.pop().map(|p| p as usize);
            let stolen = handle.join().unwrap();
            match (popped, stolen) {
                (Some(p), None) | (None, Some(p)) => assert_eq!(p, tag(7) as usize),
                other => panic!("element duplicated or lost: {other:?}"),
            }
        }
    }

    #[test]
    fn stress_all_items_delivered_exactly_once() {
        const N: usize = 20_000;
        const THIEVES: usize = 3;
        let (owner, stealer) = deque();
        let stolen: Vec<_> = (0..THIEVES)
            .map(|_| {
                let stealer = stealer.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut misses = 0usize;
                    loop {
                        match stealer.steal() {
                            Steal::Success(p) => {
                                got.push(p as usize);
                                misses = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                misses += 1;
                                if misses > 1000 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut popped = Vec::new();
        for i in 0..N {
            owner.push(tag(i));
            if i % 3 == 0 {
                if let Some(p) = owner.pop() {
                    popped.push(p as usize);
                }
            }
        }
        while let Some(p) = owner.pop() {
            popped.push(p as usize);
        }

        let mut all: Vec<usize> = popped;
        for h in stolen {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), N, "each pushed item delivered exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), N, "no duplicates");
        for i in 0..N {
            assert!(set.contains(&(tag(i) as usize)));
        }
    }
}
