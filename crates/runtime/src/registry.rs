//! The worker registry: pool construction, worker threads, the steal
//! loop, and the context-suspension discipline around foreign jobs.
//!
//! Idle/wake coordination lives in [`crate::sleep::SleepGate`]: workers
//! announce themselves before parking and producers fence-then-check
//! after publishing work, so no job is ever left behind with every
//! worker asleep (the protocol and its model-checked proof obligations
//! are documented there).

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
// lint: allow(raw-sync, WorkerStats counters are Relaxed-only monitoring data; routing them through msync would add a recorded model op to every steal/park and explode checker state for zero verification value — same policy as cilkm-obs::metrics)
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use cilkm_obs::event::{current_cpu, pack_cpu};
use cilkm_obs::{profile, trace, EventKind};

use crate::msync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::msync::{thread, Mutex};

use crate::deque::{deque, DequeOwner, DequeStealer, Steal};
use crate::hooks::{DetachedViews, HyperHooks, NoopHooks};
use crate::job::{JobRef, RootJob};
use crate::latch::{Latch, LockLatch, SpinLatch};
use crate::sleep::SleepGate;

/// Per-worker event counters. All relaxed; read only for reporting.
#[derive(Default)]
pub(crate) struct WorkerStats {
    /// Successful steals committed by this worker (as the thief).
    pub steals: AtomicU64,
    /// Steal attempts that found nothing or lost a race.
    pub failed_steals: AtomicU64,
    /// Foreign jobs executed (stolen + injected + leapfrogged).
    pub jobs_executed: AtomicU64,
    /// Joins whose right branch was popped back and run inline.
    pub inline_joins: AtomicU64,
    /// Joins whose right branch was executed by another context.
    pub stolen_joins: AtomicU64,
    /// Steal sweeps started (whether or not they found work).
    pub steal_attempts: AtomicU64,
    /// Times this worker parked on the sleep gate (announce + re-check;
    /// the re-check may return immediately without blocking).
    pub parks: AtomicU64,
    /// Times this worker came back from the sleep gate.
    pub wakes: AtomicU64,
    /// High-water mark of this worker's deque depth. Owner-maintained
    /// with a plain load/compare/store (no RMW: only the owner writes,
    /// others just read), so the spawn hot path stays cheap.
    pub deque_hwm: AtomicU64,
}

/// A snapshot of pool-wide scheduler statistics.
///
/// The paper's reduce-overhead experiments (Figs. 7–8) normalize against
/// the number of *successful steals*, since view transferal and
/// hypermerge only happen when steals do; this is where that number comes
/// from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful steals across all workers.
    pub steals: u64,
    /// Failed steal attempts across all workers.
    pub failed_steals: u64,
    /// Foreign jobs executed across all workers.
    pub jobs_executed: u64,
    /// Joins resolved on the serial fast path (right branch popped back).
    pub inline_joins: u64,
    /// Joins whose right branch ran in a different context.
    pub stolen_joins: u64,
    /// Steal sweeps started across all workers (successful or not).
    pub steal_attempts: u64,
    /// Park episodes across all workers.
    pub parks: u64,
    /// Wakeups from the sleep gate across all workers.
    pub wakes: u64,
    /// Largest deque depth any worker ever reached.
    pub deque_hwm: u64,
}

struct ThreadInfo {
    stealer: DequeStealer,
    stats: WorkerStats,
}

/// Shared pool state.
pub(crate) struct Registry {
    hooks: Arc<dyn HyperHooks>,
    threads: Vec<ThreadInfo>,
    injector: Mutex<VecDeque<JobRef>>,
    injected: AtomicUsize,
    /// Sleeper announcement slots + wake claiming (protocol in
    /// `crate::sleep`).
    gate: SleepGate,
    /// Failed steal sweeps spent spinning / yielding before a worker
    /// parks. `(SPIN_TRIES, YIELD_TRIES)` when the pool fits in the
    /// hardware, `(0, 1)` when workers are oversubscribed on too few
    /// cores — there, every cycle an idle worker burns before parking
    /// is stolen from the thread that actually holds work.
    spin_tries: u32,
    yield_tries: u32,
    terminate: AtomicBool,
}

impl Registry {
    pub(crate) fn hooks_arc(&self) -> Arc<dyn HyperHooks> {
        Arc::clone(&self.hooks)
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().push_back(job);
        self.injected.fetch_add(1, Ordering::Release);
        // Waker side of the handshake (see `crate::sleep`), waking
        // everyone: an injection is rare and starts a region.
        self.gate.signal_all();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.injected.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.injector.lock();
        let job = q.pop_front();
        if job.is_some() {
            self.injected.fetch_sub(1, Ordering::Release);
        }
        job
    }

    /// Wakes one sleeping worker if any (called after deque pushes).
    /// The caller has already published the job; the gate's fence +
    /// sleeper load is the waker side of the handshake in `crate::sleep`.
    #[inline]
    pub(crate) fn signal_work(&self) {
        self.gate.signal_one();
    }

    fn stats(&self) -> PoolStats {
        let mut s = PoolStats::default();
        for t in &self.threads {
            s.steals += t.stats.steals.load(Ordering::Relaxed);
            s.failed_steals += t.stats.failed_steals.load(Ordering::Relaxed);
            s.jobs_executed += t.stats.jobs_executed.load(Ordering::Relaxed);
            s.inline_joins += t.stats.inline_joins.load(Ordering::Relaxed);
            s.stolen_joins += t.stats.stolen_joins.load(Ordering::Relaxed);
            s.steal_attempts += t.stats.steal_attempts.load(Ordering::Relaxed);
            s.parks += t.stats.parks.load(Ordering::Relaxed);
            s.wakes += t.stats.wakes.load(Ordering::Relaxed);
            s.deque_hwm = s.deque_hwm.max(t.stats.deque_hwm.load(Ordering::Relaxed));
        }
        s
    }
}

impl cilkm_obs::MetricsSource for Registry {
    fn collect(&self, out: &mut cilkm_obs::metrics::MetricsCollector) {
        let s = self.stats();
        out.counter("steals", s.steals);
        out.counter("failed_steals", s.failed_steals);
        out.counter("steal_attempts", s.steal_attempts);
        out.counter("jobs_executed", s.jobs_executed);
        out.counter("inline_joins", s.inline_joins);
        out.counter("stolen_joins", s.stolen_joins);
        out.counter("parks", s.parks);
        out.counter("wakes", s.wakes);
        out.counter("deque_hwm", s.deque_hwm);
    }
}

thread_local! {
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// The thread-local owner side of one worker.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    deque: DequeOwner,
    /// xorshift state for random victim selection.
    rng: Cell<u64>,
    /// Per-worker hyperobject backend state; only this thread touches it.
    state: UnsafeCell<Box<dyn Any + Send>>,
}

impl WorkerThread {
    /// The worker currently running on this thread, if any.
    #[inline]
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        let ptr = CURRENT_WORKER.with(|c| c.get());
        if ptr.is_null() {
            None
        } else {
            // SAFETY: the pointer is installed for the lifetime of the
            // worker's main loop and cleared before the WorkerThread is
            // dropped, so it is live whenever non-null on this thread.
            Some(unsafe { &*ptr })
        }
    }

    pub(crate) fn index(&self) -> usize {
        self.index
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    #[inline]
    fn stats(&self) -> &WorkerStats {
        &self.registry.threads[self.index].stats
    }

    pub(crate) fn note_inline_join(&self) {
        self.stats().inline_joins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stolen_join(&self) {
        self.stats().stolen_joins.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job.as_raw());
        // Owner-only high-water mark: plain load/compare/store, no RMW,
        // so the spawn path pays one predictable branch.
        let depth = self.deque.len() as u64;
        let hwm = &self.stats().deque_hwm;
        if depth > hwm.load(Ordering::Relaxed) {
            hwm.store(depth, Ordering::Relaxed);
        }
        self.registry.signal_work();
    }

    #[inline]
    pub(crate) fn pop(&self) -> Option<JobRef> {
        // SAFETY: everything in this worker's deque was produced by
        // `JobRef::as_raw`.
        self.deque.pop().map(|raw| unsafe { JobRef::from_raw(raw) })
    }

    /// Calls `f` with the worker's mutable hyperobject state.
    #[inline]
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut dyn Any) -> R) -> R {
        // SAFETY: state is only ever touched from this worker's own
        // thread, and never reentrantly (hooks do not call back into the
        // scheduler).
        let state = unsafe { &mut *self.state.get() };
        f(state.as_mut())
    }

    #[inline]
    fn next_rand(&self) -> u64 {
        // xorshift64*; cheap and good enough for victim selection.
        let mut x = self.rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// One randomized steal sweep over all other workers, then the
    /// injector. The sweep visits victims at `start + i·stride (mod n)`
    /// with a random start *and* a random stride coprime to `n` — a
    /// fresh random permutation each sweep (not just a rotated fixed
    /// order), with no allocation in the steal loop. Distinct
    /// permutations keep simultaneous thieves from convoying over the
    /// victims in the same sequence.
    fn try_steal(&self) -> Option<JobRef> {
        self.stats().steal_attempts.fetch_add(1, Ordering::Relaxed);
        let n = self.registry.threads.len();
        if n > 1 {
            let r = self.next_rand();
            let start = (r as usize) % n;
            let mut stride = 1 + (r >> 32) as usize % (n - 1).max(1);
            while gcd(stride, n) != 1 {
                stride -= 1; // reaches 1, which is coprime to everything
            }
            for i in 0..n {
                let victim = (start + i * stride) % n;
                if victim == self.index {
                    continue;
                }
                loop {
                    match self.registry.threads[victim].stealer.steal() {
                        Steal::Success(raw) => {
                            self.stats().steals.fetch_add(1, Ordering::Relaxed);
                            // Victim index in the low half, thief's cpu
                            // (for socket-locality analysis) in the high
                            // half. The cpu lookup is gated so the steal
                            // path pays nothing when tracing is off.
                            if trace::enabled() {
                                trace::emit(
                                    EventKind::StealSuccess,
                                    pack_cpu(victim as u64, current_cpu()),
                                );
                            }
                            // SAFETY: deque contents are always raw
                            // `JobRef`s (see `pop`).
                            return Some(unsafe { JobRef::from_raw(raw) });
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
        }
        if let Some(job) = self.registry.pop_injected() {
            return Some(job);
        }
        self.stats().failed_steals.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Executes a foreign job from an *empty* current context (top-level
    /// steal loop). The job itself ends in a detach, restoring emptiness.
    #[inline]
    fn execute_idle(&self, job: JobRef) {
        self.stats().jobs_executed.fetch_add(1, Ordering::Relaxed);
        // SAFETY: popping/stealing transferred sole execution rights for
        // this job to us, and its frame outlives execution (job
        // contract). JobBegin/JobEnd are emitted *inside* execute: the
        // begin right next to the profiler's strand clock (so both
        // instruments bound the same interval), the end before the job
        // signals completion (an emit after `execute` returns would race
        // a drain triggered by that signal).
        unsafe { job.execute() };
    }

    /// Executes a foreign job while this worker's current context is
    /// *suspended* (waiting at a join): the current views are detached
    /// around the execution and re-attached after — the leapfrogging
    /// discipline that keeps views affixed to contexts, not workers.
    pub(crate) fn execute_suspended(&self, job: JobRef) {
        let hooks = self.registry.hooks.clone();
        // Emit *before* the suspension runs so the Detach..JobBegin
        // window covers the suspension work itself (flag 1 = suspend;
        // cpu id in the high half).
        if trace::enabled() {
            trace::emit(EventKind::Detach, pack_cpu(1, current_cpu()));
        }
        let saved = self.with_state(|s| hooks.suspend(s));
        self.stats().jobs_executed.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as in `execute_idle` (JobBegin/JobEnd emit inside).
        unsafe { job.execute() };
        self.with_state(|s| hooks.resume(s, saved));
        if trace::enabled() {
            trace::emit(EventKind::Attach, pack_cpu(1, current_cpu()));
        }
    }

    /// The waiting discipline at a join: keep useful until `latch` fires.
    /// Returns jobs popped from our own deque that are *not* `my_job` to
    /// the foreign path; returns `Some(true)` if we popped `my_job`
    /// ourselves (caller runs it inline / cancels it), `Some(false)` when
    /// the latch fired.
    pub(crate) fn wait_for_latch(&self, latch: &SpinLatch, my_job: JobRef) -> bool {
        let mut idle_spins = 0u32;
        loop {
            if latch.probe() {
                return false;
            }
            if let Some(job) = self.pop() {
                if job == my_job {
                    return true;
                }
                self.execute_suspended(job);
                idle_spins = 0;
                continue;
            }
            if let Some(job) = self.try_steal() {
                self.execute_suspended(job);
                idle_spins = 0;
                continue;
            }
            // Nothing to do but wait; be polite on oversubscribed hosts.
            // Spin with exponentially longer pause bursts, then yield.
            // No parking here: nothing fires an unpark when the latch
            // opens, and join waits want latency over politeness anyway.
            idle_spins += 1;
            if idle_spins <= self.registry.spin_tries {
                for _ in 0..(1u32 << idle_spins.min(8)) {
                    std::hint::spin_loop();
                }
            } else {
                thread::yield_now();
            }
        }
    }

    /// The waiting discipline at a scope close: keep useful until the
    /// scope's completion latch fires. Unlike a join wait there is no
    /// owned job to run inline — every job (including our own scope
    /// spawns, popped back LIFO) runs through the foreign path with the
    /// current context suspended around it.
    pub(crate) fn wait_for_scope(&self, latch: &SpinLatch) {
        let mut idle_spins = 0u32;
        loop {
            if latch.probe() {
                return;
            }
            if let Some(job) = self.pop() {
                self.execute_suspended(job);
                idle_spins = 0;
                continue;
            }
            if let Some(job) = self.try_steal() {
                self.execute_suspended(job);
                idle_spins = 0;
                continue;
            }
            // Spin with exponentially longer pause bursts, then yield.
            // No parking here: nothing fires an unpark when the latch
            // opens, and join waits want latency over politeness anyway.
            idle_spins += 1;
            if idle_spins <= self.registry.spin_tries {
                for _ in 0..(1u32 << idle_spins.min(8)) {
                    std::hint::spin_loop();
                }
            } else {
                thread::yield_now();
            }
        }
    }

    /// The top-level scheduling loop, with spin → yield → park backoff:
    /// a worker that keeps failing to find work spins briefly (stealable
    /// work often appears within nanoseconds), then yields the CPU a few
    /// times, and only then pays the cost of parking.
    fn main_loop(&self) {
        // Register the unpark handle before anything can mark us PARKED.
        self.registry.gate.register_current(self.index);
        let mut idle = 0u32;
        loop {
            if self.registry.terminate.load(Ordering::Acquire) {
                return;
            }
            if let Some(job) = self.pop() {
                // Only possible transiently (a panic unwound past pushed
                // jobs); treat like any foreign job.
                self.execute_idle(job);
                idle = 0;
                continue;
            }
            if let Some(job) = self.try_steal() {
                self.execute_idle(job);
                idle = 0;
                continue;
            }
            idle += 1;
            if idle == 1 {
                // Once per idle *episode*, not per sweep: per-sweep
                // events would flood the ring while workers spin (the
                // per-sweep total is in `failed_steals`).
                trace::emit(EventKind::StealFail, 0);
            }
            // Idle-time maintenance: an empty steal sweep means this
            // worker has nothing better to do than fold parked
            // pending-merge views (DESIGN.md §13). Once at the start of
            // an idle episode (when a region just ended this is the
            // moment the parked views appear), with a periodic retry in
            // case a first-pass drain lost a serial-word race — NOT on
            // every failed sweep: with oversubscribed workers that
            // turns idle spinning into a herd of registry scans
            // competing for the CPU the victims need.
            if idle == 1 || idle.is_multiple_of(64) {
                self.registry.hooks.drain_pending();
            }
            if idle <= self.registry.spin_tries {
                // Exponentially longer pause bursts between steal sweeps.
                for _ in 0..(1u32 << idle.min(8)) {
                    std::hint::spin_loop();
                }
            } else if idle <= self.registry.spin_tries + self.registry.yield_tries {
                thread::yield_now();
            } else {
                self.sleep();
            }
        }
    }

    /// Parker side of the handshake in `crate::sleep`: announce, fence,
    /// re-check, and only park if the re-check finds nothing.
    #[cold]
    fn sleep(&self) {
        self.stats().parks.fetch_add(1, Ordering::Relaxed);
        trace::emit(EventKind::Park, 0);
        let reg = &*self.registry;
        reg.gate.sleep(self.index, || {
            reg.terminate.load(Ordering::Acquire)
                || reg.injected.load(Ordering::Acquire) != 0
                || reg
                    .threads
                    .iter()
                    .enumerate()
                    .any(|(i, t)| i != self.index && !t.stealer.is_empty())
        });
        self.stats().wakes.fetch_add(1, Ordering::Relaxed);
        trace::emit(EventKind::Wake, 0);
    }
}

/// Greatest common divisor (for coprime steal strides).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Failed steal sweeps spent spinning before yielding.
const SPIN_TRIES: u32 = 6;
/// Failed steal sweeps spent yielding before parking.
const YIELD_TRIES: u32 = 4;

/// View transferal out of the current worker's context (called by job
/// completion paths in `job.rs`).
pub(crate) fn detach_current_views() -> DetachedViews {
    let worker = WorkerThread::current().expect("detach outside worker");
    let hooks = worker.registry.hooks.clone();
    // Emit *before* the detach so the Detach..JobEnd window measures the
    // transferal itself (the DAG analyzer charges it to the strand).
    // Flag 0 = detach-at-strand-end; cpu id in the high half.
    if trace::enabled() {
        trace::emit(EventKind::Detach, pack_cpu(0, current_cpu()));
    }
    worker.with_state(|s| hooks.detach(s))
}

/// Folds the current worker's views into leftmost storage (root task end).
pub(crate) fn collect_root_views() {
    let worker = WorkerThread::current().expect("collect_root outside worker");
    let hooks = worker.registry.hooks.clone();
    worker.with_state(|s| hooks.collect_root(s));
}

/// Index of the worker running the current thread, if it is a pool worker.
pub fn current_worker_index() -> Option<usize> {
    WorkerThread::current().map(|w| w.index())
}

/// Number of workers in the pool that owns the current thread, if it is a
/// pool worker (drives the adaptive split budget in `parallel_for`).
pub(crate) fn current_num_threads() -> Option<usize> {
    WorkerThread::current().map(|w| w.registry.threads.len())
}

/// Configures and builds a [`Pool`].
pub struct PoolBuilder {
    num_threads: usize,
    hooks: Arc<dyn HyperHooks>,
    stack_size: usize,
}

impl PoolBuilder {
    /// Starts a builder with `num_threads` workers and no-op hooks.
    pub fn new(num_threads: usize) -> PoolBuilder {
        assert!(num_threads >= 1, "a pool needs at least one worker");
        PoolBuilder {
            num_threads,
            hooks: Arc::new(NoopHooks),
            stack_size: 8 << 20,
        }
    }

    /// Installs hyperobject hooks (the reducer backend).
    pub fn hooks(mut self, hooks: Arc<dyn HyperHooks>) -> PoolBuilder {
        self.hooks = hooks;
        self
    }

    /// Sets worker stack size in bytes (default 8 MiB; fork-join recursion
    /// can be deep on oversubscribed machines).
    pub fn stack_size(mut self, bytes: usize) -> PoolBuilder {
        self.stack_size = bytes;
        self
    }

    /// Spawns the workers and returns the pool.
    pub fn build(self) -> Pool {
        let mut owners = Vec::with_capacity(self.num_threads);
        let mut infos = Vec::with_capacity(self.num_threads);
        for _ in 0..self.num_threads {
            let (owner, stealer) = deque();
            owners.push(owner);
            infos.push(ThreadInfo {
                stealer,
                stats: WorkerStats::default(),
            });
        }
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (spin_tries, yield_tries) = if self.num_threads > hardware {
            (0, 1)
        } else {
            (SPIN_TRIES, YIELD_TRIES)
        };
        let num_threads = self.num_threads;
        let registry = Arc::new(Registry {
            hooks: self.hooks,
            threads: infos,
            injector: Mutex::new(VecDeque::new()),
            injected: AtomicUsize::new(0),
            gate: SleepGate::new(num_threads),
            spin_tries,
            yield_tries,
            terminate: AtomicBool::new(false),
        });
        // Expose scheduler counters through the unified metrics registry.
        // `Weak`, so registration never outlives the pool.
        let weak = Arc::downgrade(&registry);
        cilkm_obs::metrics::global().register(
            "pool",
            weak as std::sync::Weak<dyn cilkm_obs::MetricsSource>,
        );
        cilkm_obs::clock::warm_up();

        let mut handles = Vec::with_capacity(self.num_threads);
        for (index, owner) in owners.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let handle = thread::spawn_with(
                format!("cilkm-worker-{index}"),
                self.stack_size,
                move || {
                    // Worker state is created on the worker's own thread so
                    // backends can set up thread-local fast paths.
                    let state = registry.hooks.make_worker_state(index);
                    let worker = WorkerThread {
                        registry,
                        index,
                        deque: owner,
                        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1)),
                        state: UnsafeCell::new(state),
                    };
                    CURRENT_WORKER.with(|c| c.set(&worker));
                    worker.main_loop();
                    CURRENT_WORKER.with(|c| c.set(std::ptr::null()));
                },
            );
            handles.push(handle);
        }

        Pool {
            registry,
            handles: Some(handles),
            region_lock: Mutex::new(()),
        }
    }
}

/// A work-stealing thread pool with hyperobject hooks — the analogue of
/// one Cilk-M (or Cilk Plus) runtime instance.
///
/// Construct with [`Pool::new`] or [`PoolBuilder`]; enter a parallel
/// region with [`Pool::run`]; fork inside it with [`crate::join`].
pub struct Pool {
    registry: Arc<Registry>,
    handles: Option<Vec<thread::JoinHandle<()>>>,
    /// Serializes parallel regions: reducer leftmost storage is folded at
    /// region end, so two regions of one pool must never overlap.
    region_lock: Mutex<()>,
}

impl Pool {
    /// A pool with `num_threads` workers and no hyperobject hooks.
    pub fn new(num_threads: usize) -> Pool {
        PoolBuilder::new(num_threads).build()
    }

    /// Number of workers.
    pub fn num_threads(&self) -> usize {
        self.registry.threads.len()
    }

    /// Runs `f` as the root of a parallel region and returns its result.
    ///
    /// Blocks the calling thread (which must not itself be a pool worker)
    /// until the region completes. On completion, all views accumulated
    /// by the region's root context are folded into their reducers'
    /// leftmost storage, so reducer final values are observable after
    /// `run` returns. Panics inside the region propagate.
    ///
    /// At most one region runs at a time per pool: concurrent `run`
    /// calls serialize (region end folds into shared reducer leftmost
    /// storage, so overlapping regions of one pool would race).
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        assert!(
            WorkerThread::current().is_none(),
            "Pool::run called from inside a worker; use join() to fork instead"
        );
        let _region = self.region_lock.lock();
        self.run_region(f).0.into_return_value()
    }

    /// One parallel region, under the region lock: inject the root job,
    /// wait for its latch, and return the (possibly panicked) result
    /// together with the root strand's final `(span, bspan)` pair.
    fn run_region<F, R>(&self, f: F) -> (crate::job::JobResult<R>, (u64, u64))
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        trace::emit(EventKind::RegionBegin, 0);
        let latch = LockLatch::new();
        let job = RootJob::new(f, &latch);
        // The root strand's DAG id; it starts from a zero span pair.
        job.header().prepare(trace::next_task_id(), (0, 0));
        self.registry.inject(job.as_job_ref());
        latch.wait();
        trace::emit(EventKind::RegionEnd, 0);
        // SAFETY: the latch fired, so the worker finished the root job
        // and published its result and final span; each taken once.
        let span = unsafe { job.final_span() };
        // SAFETY: as above.
        (unsafe { job.take_result() }, span)
    }

    /// Runs `f` as a parallel region with event tracing enabled for the
    /// region's duration, and returns the drained [`cilkm_obs::Trace`]
    /// alongside the result. The trace is windowed to this call (events
    /// from earlier traced regions are excluded).
    ///
    /// Without the `trace` cargo feature the region still runs but the
    /// returned trace is empty (see [`cilkm_obs::trace::compiled`]).
    /// Tracing is process-wide while the region runs, so two overlapping
    /// `run_traced` calls on different pools will see each other's
    /// scheduler events.
    pub fn run_traced<F, R>(&self, f: F) -> (R, cilkm_obs::Trace)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let t0 = cilkm_obs::clock::now_ns();
        let was_enabled = cilkm_obs::trace::enabled();
        cilkm_obs::trace::set_enabled(true);
        let result = self.run(f);
        cilkm_obs::trace::set_enabled(was_enabled);
        (result, cilkm_obs::trace::drain().since_ns(t0))
    }

    /// Runs `f` as a parallel region with the **online work/span
    /// profiler** on, and returns a [`cilkm_obs::ParallelismReport`]
    /// alongside the result: work, span, parallelism, and the burdened
    /// span with its reducer-overhead breakdown — Cilkview-style, in
    /// constant space per worker, without draining any trace ring.
    ///
    /// The profiling session is process-global (like tracing), so two
    /// overlapping `run_profiled` calls on different pools would pool
    /// their numbers; per-pool regions already serialize. Without the
    /// `trace` cargo feature the region still runs and the report is
    /// all zeros.
    pub fn run_profiled<F, R>(&self, f: F) -> (R, cilkm_obs::ParallelismReport)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        assert!(
            WorkerThread::current().is_none(),
            "Pool::run_profiled called from inside a worker"
        );
        let _region = self.region_lock.lock();
        profile::begin_session();
        let (result, root_final) = self.run_region(f);
        // End the session before unwrapping so a panicking region does
        // not leave profiling enabled.
        let report = profile::end_session(root_final);
        (result.into_return_value(), report)
    }

    /// Scheduler statistics accumulated since pool construction.
    pub fn stats(&self) -> PoolStats {
        self.registry.stats()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::SeqCst);
        self.registry.gate.signal_all();
        if let Some(handles) = self.handles.take() {
            for h in handles {
                let _ = h.join();
            }
        }
        // All workers have quiesced: flush the sanitizer report (no-op
        // unless the `sanitize` hooks are compiled in and
        // `CILKM_SAN_REPORT` is set). Flushed here rather than at
        // process exit so test binaries and examples leave a report
        // behind without any atexit machinery.
        crate::sanhooks::flush_report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_a_closure_on_a_worker() {
        let pool = Pool::new(2);
        let idx = pool.run(current_worker_index);
        assert!(idx.is_some());
        assert!(idx.unwrap() < 2);
    }

    #[test]
    fn pool_returns_value_and_stats_start_clean() {
        let pool = Pool::new(1);
        assert_eq!(pool.run(|| 6 * 7), 42);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = Pool::new(2);
        for i in 0..20 {
            assert_eq!(pool.run(move || i * 2), i * 2);
        }
    }

    #[test]
    #[should_panic(expected = "root boom")]
    fn root_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|| panic!("root boom"));
    }

    #[test]
    fn pool_survives_a_panicked_region() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|| panic!("first"));
        }));
        assert!(caught.is_err());
        assert_eq!(pool.run(|| 5), 5);
    }

    #[test]
    fn drop_terminates_workers() {
        let pool = Pool::new(4);
        pool.run(|| ());
        drop(pool); // must not hang
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
    }

    #[test]
    fn scheduler_counters_move_under_load() {
        let pool = Pool::new(4);
        assert_eq!(pool.run(|| fib(16)), 987);
        let s = pool.stats();
        assert!(s.steal_attempts > 0, "workers must have swept for work");
        assert!(
            s.steal_attempts >= s.steals + s.failed_steals,
            "every steal outcome starts as an attempt"
        );
        assert!(s.deque_hwm >= 1, "joins push jobs, so depth reached >= 1");
        // Workers may be parked right now (the region is over), so only
        // the one-sided invariant holds: every wake had a park.
        assert!(s.wakes <= s.parks);
    }

    #[test]
    fn pool_appears_in_the_global_metrics_registry() {
        let pool = Pool::new(2);
        pool.run(|| fib(10));
        let snap = cilkm_obs::metrics::global().snapshot();
        // Other tests register pools concurrently, so locate ours by
        // value: some pool.* source must report our jobs_executed.
        let ours = pool.stats();
        let found = snap.values.iter().any(|(name, v)| {
            name.ends_with(".jobs_executed")
                && matches!(v, cilkm_obs::MetricValue::Counter(c) if *c == ours.jobs_executed)
        });
        assert!(
            found,
            "pool metrics source not found in {:?}",
            snap.values.keys()
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn run_traced_captures_region_and_worker_events() {
        use cilkm_obs::EventKind;
        let pool = Pool::new(4);
        let (val, trace) = pool.run_traced(|| fib(16));
        assert_eq!(val, 987);
        assert_eq!(trace.count(EventKind::RegionBegin), 1);
        assert_eq!(trace.count(EventKind::RegionEnd), 1);
        // JobEnd is emitted inside `execute`, before the completion
        // latch — so even though this drain runs the instant the root
        // latch fires, every begun job has its end in the rings.
        let begins = trace.count(EventKind::JobBegin);
        let ends = trace.count(EventKind::JobEnd);
        assert!(begins >= 1);
        assert_eq!(
            begins, ends,
            "unbalanced job events: {begins} begins, {ends} ends"
        );
        // Every stolen-join merge brackets properly.
        assert_eq!(
            trace.count(EventKind::MergeBegin),
            trace.count(EventKind::MergeEnd)
        );
        // Worker rings carry the pool's thread names.
        assert!(trace
            .threads
            .iter()
            .any(|t| t.label.starts_with("cilkm-worker-")));

        // A second traced region does not re-see the first one's events.
        let (_, trace2) = pool.run_traced(|| fib(10));
        assert_eq!(trace2.count(EventKind::RegionBegin), 1);
    }
}
