//! # cilkm-runtime — a Cilk-style work-stealing runtime with hyperobject hooks
//!
//! This crate is the scheduler substrate of the SPAA 2012 reproduction: a
//! fork-join work-stealing runtime in the spirit of Cilk-M / Cilk Plus,
//! with the extension points ("hyperobject hooks") that the reducer layer
//! in `cilkm-core` plugs both of its backends into.
//!
//! ## Continuation stealing → child stealing
//!
//! Cilk runtimes steal *continuations*: a `cilk_spawn`ed child runs
//! immediately and the suspended parent frame is what thieves take. Rust
//! cannot package a stack continuation as a first-class job, so — like
//! Rayon — this runtime steals *children*, exposing the equivalence
//!
//! ```text
//! cilk_spawn f(); rest; cilk_sync;   ≡   join(|| f(), || rest)
//! ```
//!
//! [`join`] runs its left closure inline (the serially-earlier work) and
//! publishes the right closure for thieves (the serially-later work).
//! Everything the paper's reducer protocol needs survives the translation:
//!
//! * a worker that never suffers a steal mimics serial execution exactly
//!   (pushes and pops from the bottom of its own deque, §3 of the paper);
//! * when the right branch is stolen, the thief begins a new *execution
//!   context* with an **empty view set** ([`HyperHooks`] is informed);
//! * when a stolen branch finishes, its views are **deposited** into the
//!   join frame's right placeholder (the analogue of the right-sibling
//!   hypermap) via [`HyperHooks::detach`] — this is *view transferal*;
//! * the owner waiting at the join performs the **hypermerge**
//!   ([`HyperHooks::merge_right`]) in serial order: left views ⊗ right
//!   views;
//! * while waiting, the owner *leapfrogs* (executes other stolen jobs),
//!   suspending and restoring its own context around each — views belong
//!   to execution contexts, not to workers, exactly as §3 stresses.
//!
//! ## What lives here
//!
//! * [`deque`] — a from-scratch Chase–Lev work-stealing deque;
//! * [`Latch`]es, [`job`]s, the worker [`registry`] and idle/sleep logic;
//! * [`join`] and [`parallel_for`] / [`parallel_for_each`];
//! * [`HyperHooks`] — the reducer extension interface;
//! * [`sync::SpinLock`] — the locking comparator of the paper's Figure 1;
//! * [`PoolStats`] — steal and job counters the evaluation reads.

#![deny(missing_docs)]

pub mod deque;
pub mod hooks;
pub mod job;
pub mod latch;
pub mod registry;
pub mod sync;

mod join;
pub(crate) mod msync;
mod parallel_for;
pub(crate) mod sanhooks;
mod scope;
pub(crate) mod sleep;

#[cfg(all(test, feature = "model"))]
mod model_tests;

pub use hooks::{DetachedViews, HyperHooks, NoopHooks};
pub use join::join;
pub use parallel_for::{parallel_for, parallel_for_each};
pub use registry::{current_worker_index, Pool, PoolBuilder, PoolStats};
pub use scope::{scope, Scope};

/// Re-exported latch types for advanced integrations and tests.
pub use latch::{CountLatch, Latch, LockLatch, SpinLatch};
