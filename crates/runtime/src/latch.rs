//! Completion latches: one-shot flags a job sets when it finishes and a
//! waiter polls or blocks on.

use crate::msync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::msync::{Condvar, Mutex};

/// A one-shot completion signal.
pub trait Latch {
    /// Marks the latch as set. May be called at most once.
    fn set(&self);
    /// Returns `true` once the latch has been set.
    fn probe(&self) -> bool;
}

/// A latch a worker polls while it keeps itself busy stealing — the
/// waiting discipline at a join. The waiter never blocks on it; blocking
/// would idle a worker that could be leapfrogging.
#[derive(Default)]
pub struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    /// Creates an unset latch.
    pub fn new() -> SpinLatch {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }
}

/// A blocking latch for threads *outside* the pool (the caller of
/// [`Pool::run`]): set wakes the sleeper through a mutex/condvar pair.
///
/// [`Pool::run`]: crate::Pool::run
#[derive(Default)]
pub struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    /// Creates an unset latch.
    pub fn new() -> LockLatch {
        LockLatch::default()
    }

    /// Blocks until the latch is set.
    pub fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cond.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cond.notify_all();
    }

    fn probe(&self) -> bool {
        *self.done.lock()
    }
}

/// A countdown latch: set once a fixed number of [`CountLatch::count_down`]
/// calls have happened. Used by scoped multi-way constructs.
pub struct CountLatch {
    remaining: AtomicUsize,
    inner: SpinLatch,
}

impl CountLatch {
    /// Creates a latch that requires `n` countdowns.
    pub fn new(n: usize) -> CountLatch {
        let latch = CountLatch {
            remaining: AtomicUsize::new(n),
            inner: SpinLatch::new(),
        };
        if n == 0 {
            latch.inner.set();
        }
        latch
    }

    /// Records one completion; the final one sets the latch.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "count_down past zero");
        if prev == 1 {
            self.inner.set();
        }
    }
}

impl Latch for CountLatch {
    fn set(&self) {
        self.count_down();
    }

    #[inline]
    fn probe(&self) -> bool {
        self.inner.probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_latch_set_probe() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_wakes_waiter() {
        use std::sync::Arc;
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        assert!(l.probe());
        t.join().unwrap();
    }

    #[test]
    fn count_latch_fires_on_last() {
        let l = CountLatch::new(3);
        l.count_down();
        l.count_down();
        assert!(!l.probe());
        l.count_down();
        assert!(l.probe());
    }

    #[test]
    fn count_latch_zero_starts_set() {
        assert!(CountLatch::new(0).probe());
    }
}
