//! Model- and sanitizer-switchable synchronization facade.
//!
//! Every concurrency primitive the scheduler's hot protocols touch —
//! atomics, fences, `Mutex`/`Condvar`, thread spawn/park/unpark — is
//! imported through this module rather than from `std`/`parking_lot`
//! directly. In normal builds the re-exports are zero-cost aliases of
//! the real primitives. With the `model` cargo feature they resolve to
//! `cilkm_checker`'s recorded, schedule-explored versions, so the deque,
//! latches, and the sleeper handshake can run under the model checker
//! unchanged (see DESIGN.md §10). With the `sanitize` feature (and
//! `model` off — model schedules must not pollute sanitizer state) they
//! resolve to `cilkm_san`'s instrumented versions, which run the real
//! primitives and feed the dynamic race detectors (DESIGN.md §17).
//!
//! Note the checker types are themselves dual-mode: a `--features
//! model` build that is *not* inside `cilkm_checker::model(..)` behaves
//! like the real primitives, so the whole test suite still passes with
//! the feature enabled.

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) use cilkm_san::sync::atomic;
#[cfg(not(any(feature = "model", feature = "sanitize")))]
pub(crate) use std::sync::atomic;

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::{Condvar, Mutex};
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) use cilkm_san::sync::{Condvar, Mutex};
#[cfg(not(any(feature = "model", feature = "sanitize")))]
pub(crate) use parking_lot::{Condvar, Mutex};

/// Thread spawn/park/unpark, model-switchable like the atomics above.
pub(crate) mod thread {
    #[cfg(feature = "model")]
    pub(crate) use cilkm_checker::thread::{current, park_timeout, yield_now, JoinHandle, Thread};

    #[cfg(all(not(feature = "model"), feature = "sanitize"))]
    pub(crate) use cilkm_san::thread::{current, park_timeout, yield_now, JoinHandle, Thread};

    #[cfg(not(any(feature = "model", feature = "sanitize")))]
    pub(crate) use std::thread::{current, park_timeout, yield_now, JoinHandle, Thread};

    /// Spawns a thread with a name and stack size. Under the model (or
    /// the sanitizer) the spawn goes through the instrumented spawn so
    /// the new thread has a recorded identity and a fork edge.
    pub(crate) fn spawn_with<F>(name: String, stack_size: usize, f: F) -> JoinHandle<()>
    where
        F: FnOnce() + Send + 'static,
    {
        #[cfg(feature = "model")]
        {
            cilkm_checker::thread::spawn_with(Some(name), Some(stack_size), f)
        }
        #[cfg(all(not(feature = "model"), feature = "sanitize"))]
        {
            cilkm_san::thread::spawn_with(Some(name), Some(stack_size), f)
        }
        #[cfg(not(any(feature = "model", feature = "sanitize")))]
        {
            std::thread::Builder::new()
                .name(name)
                .stack_size(stack_size)
                .spawn(f)
                .expect("failed to spawn worker thread")
        }
    }
}
