//! Multi-way fork-join: `scope` + `spawn`.
//!
//! [`join`] is the faithful rendering of `cilk_spawn`/`cilk_sync` (child
//! runs first, continuation stealable), and nested joins express any
//! Cilk program. `scope` adds the *help-first* idiom — fire off many
//! tasks, then wait — which Cilk itself lacks but TBB/Rayon users
//! expect.
//!
//! ## Reducer semantics of a scope
//!
//! Each spawned task runs in its own execution context (empty view set;
//! lazily created identities), and its views are deposited into the
//! scope tagged with the task's **spawn index**. When the scope closes,
//! the owner merges all deposits in spawn order:
//!
//! ```text
//! final views = owner's views ⊗ spawn₀'s views ⊗ spawn₁'s views ⊗ …
//! ```
//!
//! This is deterministic for any associative monoid, but note the
//! difference from `join`: the *owner's* in-scope updates are ordered
//! before all spawned tasks' (a help-first scheduler cannot interleave
//! them the way serial execution would). For commutative reducers this
//! is invisible; for non-commutative reducers, use nested [`join`]s when
//! exact serial order matters, as documented on [`Scope::spawn`].
//!
//! [`join`]: crate::join

use crate::msync::atomic::{AtomicUsize, Ordering};
use crate::msync::Mutex;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};

use cilkm_obs::{profile, trace, EventKind};

use crate::hooks::DetachedViews;
use crate::job::{JobHeader, JobRef};
use crate::latch::{Latch, SpinLatch};
use crate::registry::WorkerThread;

/// A fork scope: spawn any number of tasks; all complete before
/// [`scope`] returns.
pub struct Scope<'scope> {
    /// Tasks spawned but not yet completed (starts at 1 for the scope
    /// body itself, so the count cannot hit zero early).
    pending: AtomicUsize,
    /// Set when `pending` reaches zero.
    done: SpinLatch,
    /// Monotone spawn-order tag.
    next_index: AtomicUsize,
    /// Deposited view sets, tagged by spawn index and carrying the
    /// task's final `(span, bspan)` pair for the close-time fold.
    deposits: Mutex<Vec<Deposit>>,
    /// First panic from any spawned task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Ties spawned closures' borrows to the scope call.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// A spawned task's deposit: spawn index, detached views, and the
/// task's final `(span, bspan)` pair.
type Deposit = (usize, DetachedViews, (u64, u64));

/// A boxed spawned-task closure, receiving the scope to allow sibling
/// spawns.
type SpawnFn<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A heap-allocated spawned task.
#[repr(C)]
struct ScopeJob<'scope> {
    header: JobHeader,
    scope: *const Scope<'scope>,
    index: usize,
    func: Option<SpawnFn<'scope>>,
}

impl<'scope> ScopeJob<'scope> {
    unsafe fn execute(ptr: *const ()) {
        // Reconstitute the box (it was leaked into the deque).
        let mut job = Box::from_raw(ptr as *mut ScopeJob<'scope>);
        let scope = &*job.scope;
        let func = job.func.take().expect("scope job executed twice");
        // Adjacent to `strand_begin`, see `StackJob::execute_foreign`.
        trace::emit(EventKind::JobBegin, job.header.task_id());
        let strand = profile::strand_begin(job.header.spawn_span());
        // The task executes as the right strand of its spawn point's
        // fork (sanitizer SP label; view detachment is part of it).
        let sp_prev = crate::sanhooks::sp_enter(job.header.sp_label());
        let result = panic::catch_unwind(AssertUnwindSafe(|| func(scope)));
        // Views accumulated by this task's context, tagged for ordered
        // merging (the executing worker returns to an empty context).
        let views = crate::registry::detach_current_views();
        crate::sanhooks::sp_exit(sp_prev);
        // The final span rides the deposit (the job frame is freed when
        // this function returns, so the header cannot carry it).
        let fin = profile::strand_end(strand);
        scope.deposits.lock().push((job.index, views, fin));
        if let Err(p) = result {
            scope.panic.lock().get_or_insert(p);
        }
        // Before `task_done`: the owner may drain trace rings as soon as
        // the scope's latch fires (see `StackJob::execute_foreign`).
        trace::emit(EventKind::JobEnd, job.header.task_id());
        scope.task_done();
    }
}

impl<'scope> Scope<'scope> {
    fn new() -> Scope<'scope> {
        Scope {
            pending: AtomicUsize::new(1),
            done: SpinLatch::new(),
            next_index: AtomicUsize::new(0),
            deposits: Mutex::new(Vec::new()),
            panic: Mutex::new(None),
            _marker: PhantomData,
        }
    }

    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.set();
        }
    }

    /// Spawns `f` into the scope. The task may run on any worker, begins
    /// with an empty reducer view set, and its views merge back in spawn
    /// order when the scope closes. The closure receives the scope again
    /// so tasks can spawn siblings.
    ///
    /// Must be called from inside the pool (the scope body or another
    /// spawned task). For non-commutative reducers, remember that all
    /// spawned tasks order *after* the owner's own in-scope updates; use
    /// [`crate::join`] where exact serial order matters.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let worker = WorkerThread::current().expect("Scope::spawn must be called on a pool worker");
        self.pending.fetch_add(1, Ordering::AcqRel);
        let index = self.next_index.fetch_add(1, Ordering::Relaxed);
        let job = Box::new(ScopeJob {
            header: JobHeader::new(ScopeJob::execute),
            scope: self as *const Scope<'scope>,
            index,
            func: Some(Box::new(f)),
        });
        let tid = trace::next_task_id();
        job.header.prepare(tid, profile::spawn_point());
        // Fork the spawner's SP label: the spawner continues as the left
        // sibling, the task executes as the right. Cascaded spawns chain
        // left labels, which the offset-span algebra keeps mutually
        // parallel until the scope's closing sync.
        let (sp_cont, sp_child) = crate::sanhooks::sp_fork(crate::sanhooks::sp_current());
        job.header.set_sp_label(sp_child);
        let _ = crate::sanhooks::sp_enter(sp_cont);
        trace::emit(EventKind::Spawn, tid);
        // Leak into the deque; ScopeJob::execute reconstitutes it.
        let raw = Box::into_raw(job);
        // SAFETY: the heap job stays alive until `execute` reboxes it,
        // and the scope barrier keeps `'scope` data live past that.
        worker.push(unsafe { JobRef::new(raw) });
    }
}

/// Runs `body` with a [`Scope`], waits for every spawned task, merges
/// their reducer views in spawn order, and returns `body`'s result.
///
/// Panics from spawned tasks are propagated after all tasks have
/// quiesced (first panic wins; its views and the others' are destroyed
/// in that case, never merged).
///
/// Must be called on a pool worker (inside `Pool::run`).
pub fn scope<'scope, F, R>(body: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let worker = WorkerThread::current().expect("scope() must be called on a pool worker");
    let s = Scope::new();

    // The scope's SP sync frame: every spawn inside the body (or inside
    // nested tasks on this strand) forks off the label chain rooted
    // here, and the close below syncs them all.
    let sp_frame = crate::sanhooks::sp_current();

    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&s)));

    // The body's own token.
    s.task_done();

    // The scope close is a sync over *every* task spawned so far in this
    // strand; it gets a fresh id of its own (a join sync's id is the
    // joined task's, which the DAG analyzer uses to tell the two apart).
    let sync_id = trace::next_task_id();
    let left = profile::sync_pause();
    trace::emit(EventKind::SyncBegin, sync_id);

    // Keep useful while waiting: execute our own spawned jobs (popped
    // back LIFO) or steal, exactly like waiting at a join. All scope
    // jobs run through the foreign path (suspend/resume around them),
    // including on this worker.
    worker.wait_for_scope(&s.done);

    // Merge deposits in spawn order (serial-equivalent for the spawned
    // tasks among themselves).
    let mut deposits = std::mem::take(&mut *s.deposits.lock());
    deposits.sort_by_key(|(idx, _, _)| *idx);
    let hooks = worker.registry().hooks_arc();
    let panicked = s.panic.lock().take();
    let discard = result.is_err() || panicked.is_some();
    let mut span = left;
    let mut merge_ns = 0;
    let merging = !discard && !deposits.is_empty();
    let t0 = if merging && profile::profiling() {
        cilkm_obs::clock::now_ns()
    } else {
        0
    };
    if merging {
        trace::emit(EventKind::MergeBegin, 0);
    }
    for (_, views, fin) in deposits {
        if discard {
            hooks.discard(views);
        } else {
            worker.with_state(|st| hooks.merge_right(st, views));
            span = (span.0.max(fin.0), span.1.max(fin.1));
        }
    }
    if merging {
        trace::emit(EventKind::MergeEnd, 0);
        if t0 != 0 {
            merge_ns = cilkm_obs::clock::now_ns().saturating_sub(t0);
        }
    }
    profile::sync_resume(span.0, span.1, merge_ns);
    // The close is the sync point: every task label forked from this
    // frame is now serially before the continuing strand.
    crate::sanhooks::sp_join(sp_frame);
    trace::emit(EventKind::SyncEnd, sync_id);

    match result {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = panicked {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msync::atomic::AtomicU64;
    use crate::registry::Pool;

    #[test]
    fn scope_runs_all_spawns() {
        let pool = Pool::new(4);
        let count = AtomicU64::new(0);
        pool.run(|| {
            scope(|s| {
                for _ in 0..100 {
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(count.into_inner(), 100);
    }

    #[test]
    fn nested_spawns_complete_before_scope_ends() {
        let pool = Pool::new(4);
        let count = AtomicU64::new(0);
        pool.run(|| {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|s| {
                        count.fetch_add(1, Ordering::Relaxed);
                        // Tasks may spawn siblings onto the same scope.
                        s.spawn(|_| {
                            count.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(count.into_inner(), 8 + 80);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = Pool::new(2);
        let v = pool.run(|| {
            scope(|s| {
                s.spawn(|_| {});
                42
            })
        });
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "spawned boom")]
    fn spawned_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawned boom"));
            });
        });
    }

    #[test]
    fn scope_panic_still_waits_for_tasks() {
        let pool = Pool::new(2);
        let count = std::sync::Arc::new(AtomicU64::new(0));
        let c2 = std::sync::Arc::clone(&count);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| {
                scope(|s| {
                    for _ in 0..50 {
                        let c = std::sync::Arc::clone(&c2);
                        s.spawn(move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    panic!("body boom");
                });
            });
        }));
        assert!(res.is_err());
        // All 50 tasks either ran or were safely consumed before unwind.
        assert_eq!(count.load(Ordering::Relaxed), 50);
        assert_eq!(pool.run(|| 7), 7);
    }

    #[test]
    fn scopes_nest() {
        let pool = Pool::new(4);
        let count = AtomicU64::new(0);
        pool.run(|| {
            scope(|outer| {
                for _ in 0..4 {
                    outer.spawn(|_| {
                        scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(|_| {
                                    count.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(count.into_inner(), 16);
    }
}
