//! Model-checked protocol tests (run with `--features model`).
//!
//! Each test hands a small closed protocol instance to
//! `cilkm_checker::model`, which re-runs it under every schedule (bounded
//! by the preemption budget) and every allowed weak-memory read, failing
//! on assertion violations, data races on plain memory, and deadlocks.
//! Timeouts never fire under the model, so a lost wakeup — which the real
//! runtime would paper over with its 10 ms park backstop — surfaces as a
//! hard deadlock report.

use std::sync::Arc;

use cilkm_checker as checker;

use crate::deque::{deque, Steal};
use crate::latch::{CountLatch, Latch, LockLatch, SpinLatch};
use crate::msync::atomic::{AtomicUsize, Ordering};
use crate::sleep::SleepGate;
use crate::sync::SpinLock;

/// The sleeper/waker handshake (crate::sleep) has no lost wakeups: a
/// producer that publishes work and calls `signal_one` always ends with
/// the consumer observing the work, under every interleaving and every
/// allowed stale read. Since PR 7 this runs under DPOR at *unbounded*
/// preemption depth — the PR 1 soundness anchor, no longer relying on
/// the preemption budget to terminate.
#[test]
fn sleeper_handshake_no_lost_wakeup() {
    let report = checker::try_model_with(checker::Config::dpor(), || {
        let gate = Arc::new(SleepGate::new(1));
        let work = Arc::new(AtomicUsize::new(0));
        let (g2, w2) = (Arc::clone(&gate), Arc::clone(&work));
        let consumer = checker::thread::spawn(move || {
            g2.register_current(0);
            while w2.load(Ordering::Acquire) == 0 {
                g2.sleep(0, || w2.load(Ordering::Acquire) != 0);
            }
        });
        work.store(1, Ordering::Release);
        gate.signal_one();
        consumer.join().unwrap();
    })
    .expect("handshake must be wakeup-safe");
    assert!(report.complete, "DPOR must exhaust the handshake");
    // The interesting interleavings exist (park vs. retract vs. unpark).
    assert!(
        report.schedules > 1,
        "explored {} schedules",
        report.schedules
    );
}

/// The `signal_one_racy` scenario: waker omits its `SeqCst` fence, so
/// its `Relaxed` sleeper-count load can miss a just-parked consumer
/// whose own re-check missed the published work — a lost wakeup, which
/// the model reports as a deadlock.
fn racy_handshake() {
    let gate = Arc::new(SleepGate::new(1));
    let work = Arc::new(AtomicUsize::new(0));
    let (g2, w2) = (Arc::clone(&gate), Arc::clone(&work));
    let consumer = checker::thread::spawn(move || {
        g2.register_current(0);
        while w2.load(Ordering::Acquire) == 0 {
            g2.sleep(0, || w2.load(Ordering::Acquire) != 0);
        }
    });
    work.store(1, Ordering::Release);
    gate.signal_one_racy();
    consumer.join().unwrap();
}

/// Regression for the pre-PR-1 bug: `signal_one_racy` omits the
/// waker-side `SeqCst` fence, so its `Relaxed` sleeper-count load can
/// miss a just-parked consumer whose own re-check missed the published
/// work. Under the model the lost wakeup is a deadlock, and the checker
/// must find it.
#[test]
fn sleeper_regression_is_detected() {
    let err =
        checker::try_model(racy_handshake).expect_err("the fence-less waker must lose a wakeup");
    assert!(
        err.message.contains("deadlock"),
        "unexpected failure: {}",
        err.message
    );
}

/// The same regression stays red under unbounded-preemption DPOR: the
/// sleep sets and happens-before filter must never prune away the
/// interleaving class holding the lost wakeup (PR 7 soundness gate).
#[test]
fn sleeper_regression_is_detected_by_dpor() {
    let err = checker::try_model_with(checker::Config::dpor(), racy_handshake)
        .expect_err("DPOR must find the fence-less waker's lost wakeup");
    assert!(
        err.message.contains("deadlock"),
        "unexpected failure: {}",
        err.message
    );
}

/// Seeded-replay regression (PR 7): the pair below was printed by a
/// failing PCT sampling run over `racy_handshake` (`pct replay:
/// CILKM_CHECK_SEED=<seed>:<depth>`). Replaying it re-finds the lost
/// wakeup in exactly one schedule — the whole point of recording seeds.
#[test]
fn sleeper_regression_replays_from_recorded_seed() {
    // Printed by `Config::pct(0xBAD5EED, 3, 10_000)` over this scenario.
    const SEED: u64 = 15405835895086995523;
    const DEPTH: usize = 3;
    let err = checker::try_model_with(checker::Config::pct_replay(SEED, DEPTH), racy_handshake)
        .expect_err("the recorded seed must reproduce the lost wakeup");
    assert!(
        err.message.contains("deadlock"),
        "unexpected failure: {}",
        err.message
    );
    assert_eq!(
        err.schedules_explored, 1,
        "a seed replay is a single deterministic schedule"
    );
}

/// A single deque item is claimed exactly once when the owner's `pop`
/// races a thief's `steal` — the Chase–Lev bottom/top CAS protocol's
/// central guarantee (one of them wins, never both, never neither).
#[test]
fn deque_single_item_claimed_exactly_once() {
    checker::model(|| {
        let (owner, stealer) = deque();
        owner.push(0x8 as *mut ());
        let thief = checker::thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(_) => return 1usize,
                Steal::Retry => continue,
                Steal::Empty => return 0,
            }
        });
        let mine = usize::from(owner.pop().is_some());
        let stolen = thief.join().unwrap();
        assert_eq!(mine + stolen, 1, "item claimed {} times", mine + stolen);
    });
}

/// `SpinLatch::set` (Release) publishes everything written before it to a
/// waiter that observed `probe` (Acquire) — the payload handoff every
/// join in the runtime relies on. The payload is a `TraceCell`, so a
/// missing edge would also surface as a data-race report.
#[test]
fn spin_latch_publishes_payload() {
    checker::model(|| {
        let latch = Arc::new(SpinLatch::new());
        let data = Arc::new(checker::cell::TraceCell::new(0u32));
        let (l2, d2) = (Arc::clone(&latch), Arc::clone(&data));
        let setter = checker::thread::spawn(move || {
            // SAFETY: the latch handshake makes this the only access
            // until `set` publishes it.
            d2.with_mut(|p| unsafe { *p = 42 });
            l2.set();
        });
        while !latch.probe() {
            checker::thread::yield_now();
        }
        // SAFETY: `probe()` returned true, so the setter's write
        // happened-before this read and no writer remains.
        let got = data.with(|p| unsafe { *p });
        assert_eq!(got, 42, "latch fired before payload was visible");
        setter.join().unwrap();
    });
}

/// `LockLatch` (mutex + condvar, the blocking latch under `Pool::run`)
/// never loses its set: the waiter always wakes, even when `set` races
/// the waiter between its predicate check and its `wait`.
#[test]
fn lock_latch_set_always_wakes_waiter() {
    checker::model(|| {
        let latch = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&latch);
        let setter = checker::thread::spawn(move || l2.set());
        latch.wait();
        assert!(latch.probe());
        setter.join().unwrap();
    });
}

/// Concurrent `count_down`s fire a `CountLatch` exactly once, on the
/// last decrement, with the firing visible to the joiner.
#[test]
fn count_latch_fires_on_last_countdown() {
    checker::model(|| {
        let latch = Arc::new(CountLatch::new(2));
        let l2 = Arc::clone(&latch);
        let t = checker::thread::spawn(move || l2.count_down());
        latch.count_down();
        t.join().unwrap();
        assert!(latch.probe(), "both countdowns done but latch unset");
    });
}

/// `SpinLock` is mutually exclusive and its unlock (Release store)
/// publishes the protected writes to the next holder: two increments
/// from two threads always sum.
#[test]
fn spin_lock_serializes_increments() {
    checker::model(|| {
        let lock = Arc::new(SpinLock::new(0u64));
        let l2 = Arc::clone(&lock);
        let t = checker::thread::spawn(move || *l2.lock() += 1);
        *lock.lock() += 1;
        t.join().unwrap();
        assert_eq!(*lock.lock(), 2);
    });
}
