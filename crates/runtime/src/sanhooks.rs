//! Sanitizer hook points for the scheduler's fork/join structure.
//!
//! The dynamic sanitizer's SP (series-parallel) determinacy detector
//! needs to know which strand every instruction belongs to. The
//! scheduler tells it here: `join`/`scope` fork offset-span labels at
//! each spawn point, jobs carry their label in the [`crate::job::JobHeader`],
//! and executors install it around the user closure (DESIGN.md §17).
//!
//! With `sanitize` off (or under `model`, whose synthetic schedules
//! must not pollute real-run shadow state) every function here is an
//! inlined no-op, so the hot scheduling paths stay emit-free — the
//! same discipline as `obs::trace::emit`.

#[cfg(all(feature = "sanitize", not(feature = "model")))]
pub(crate) use cilkm_san::{sp_current, sp_enter, sp_exit, sp_fork, sp_join, sp_region_enter};

#[cfg(all(feature = "sanitize", not(feature = "model")))]
pub(crate) fn flush_report() {
    cilkm_san::flush_report();
}

#[cfg(not(all(feature = "sanitize", not(feature = "model"))))]
mod noop {
    /// The calling strand's SP label (always 0 when hooks are off).
    #[inline(always)]
    pub(crate) fn sp_current() -> u64 {
        0
    }

    /// Forks a frame label into (continuation, child); no-op.
    #[inline(always)]
    pub(crate) fn sp_fork(frame: u64) -> (u64, u64) {
        let _ = frame;
        (0, 0)
    }

    /// Installs a strand label, returning the previous one; no-op.
    #[inline(always)]
    pub(crate) fn sp_enter(label: u64) -> u64 {
        let _ = label;
        0
    }

    /// Restores a label saved by `sp_enter`; no-op.
    #[inline(always)]
    pub(crate) fn sp_exit(prev: u64) {
        let _ = prev;
    }

    /// Advances past a sync point on `frame`; no-op.
    #[inline(always)]
    pub(crate) fn sp_join(frame: u64) {
        let _ = frame;
    }

    /// Starts a region-root strand, returning the previous label; no-op.
    #[inline(always)]
    pub(crate) fn sp_region_enter() -> u64 {
        0
    }

    /// Writes the sanitizer report if `CILKM_SAN_REPORT` is set; no-op.
    #[inline(always)]
    pub(crate) fn flush_report() {}
}

#[cfg(not(all(feature = "sanitize", not(feature = "model"))))]
pub(crate) use noop::*;
