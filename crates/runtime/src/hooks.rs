//! The hyperobject extension interface between the scheduler and the
//! reducer layer.
//!
//! The paper's central observation is that a set of local views belongs to
//! an *execution context*, not to a worker (§3): a frame's views follow
//! steals, deposits, and merges. The scheduler therefore exposes exactly
//! the context transitions, and a reducer backend (hypermap or
//! memory-mapped) supplies what happens at each:
//!
//! | scheduler event                         | hook                 |
//! |-----------------------------------------|----------------------|
//! | stolen task finishes → **view transferal** into the join frame's right placeholder | [`HyperHooks::detach`] |
//! | worker resumes a suspended context after leapfrogging | [`HyperHooks::attach`] |
//! | both sides of a join done → **hypermerge**, left ⊗ right | [`HyperHooks::merge_right`] |
//! | root task of `Pool::run` finishes → fold views into reducer leftmost storage | [`HyperHooks::collect_root`] |
//! | a side panicked → its views are destroyed unmerged | [`HyperHooks::discard`] |
//!
//! The runtime maintains the invariant that a worker's *current* view set
//! is empty whenever the worker is idle (stealing at top level): every
//! foreign job execution ends in a `detach`, and `detach` leaves the
//! current context empty — for the memory-mapped backend this is the
//! zeroing of the private SPA maps that §7 calls out as essential before
//! the worker engages in work-stealing again.

use std::any::Any;

/// A type-erased set of local views detached from an execution context —
/// the thing that gets deposited into a join frame's placeholder.
///
/// For the hypermap backend this is the hypermap itself (pointer
/// switching, §7); for the memory-mapped backend it is the list of
/// *public SPA maps* produced by copying view pointers out of the
/// worker's private TLMM-resident maps.
pub type DetachedViews = Box<dyn Any + Send>;

/// Per-worker backend state (TLMM region + private SPA maps, or nothing
/// for the hypermap backend), created on the worker's own thread.
pub type WorkerState = Box<dyn Any + Send>;

/// Scheduler-to-reducer callbacks. One implementation is installed per
/// pool; all methods except [`HyperHooks::make_worker_state`] are called
/// on worker threads with that worker's own state.
pub trait HyperHooks: Send + Sync + 'static {
    /// Creates the per-worker state. Called exactly once per worker, on
    /// the worker thread itself before it starts scheduling — so the
    /// backend may also initialize thread-local fast-path pointers here.
    fn make_worker_state(&self, index: usize) -> WorkerState;

    /// View transferal: removes the worker's current view set and returns
    /// it in shareable form, leaving the current context empty.
    fn detach(&self, state: &mut dyn Any) -> DetachedViews;

    /// Re-installs a previously detached view set as the current one.
    /// The current context must be empty.
    fn attach(&self, state: &mut dyn Any, views: DetachedViews);

    /// Hypermerge: reduces `right` into the worker's current view set,
    /// with the current set on the left (serially earlier). Afterwards
    /// the current set holds `left ⊗ right` and `right` is consumed.
    fn merge_right(&self, state: &mut dyn Any, right: DetachedViews);

    /// End of a `Pool::run` root task: folds the worker's current views
    /// into their reducers' leftmost storage and empties the context.
    fn collect_root(&self, state: &mut dyn Any);

    /// Destroys a detached view set without merging (panic paths).
    fn discard(&self, views: DetachedViews);

    /// Suspends the worker's current view set so a *different* context
    /// can run on this worker (leapfrogging at a join). Unlike
    /// [`HyperHooks::detach`], the result never has to be shared with
    /// another worker — it will be handed back to this same worker via
    /// [`HyperHooks::resume`] — so backends may use a cheaper, worker-
    /// private representation. Cilk-M swaps the private SPA-map *pages*
    /// (one simulated `sys_pmap`, amortized against the steal) instead of
    /// copying view pointers. Defaults to `detach`.
    fn suspend(&self, state: &mut dyn Any) -> DetachedViews {
        self.detach(state)
    }

    /// Reinstates a view set saved by [`HyperHooks::suspend`]. The
    /// current context must be empty. Defaults to `attach`.
    fn resume(&self, state: &mut dyn Any, views: DetachedViews) {
        self.attach(state, views)
    }

    /// Idle-time maintenance: called when a worker's steal sweep came up
    /// empty, before it backs off. Backends fold parked pending-merge
    /// views here (DESIGN.md §13), so hypermerge work that was taken off
    /// the steal critical path gets done while the worker has nothing
    /// better to do. Must not block. Defaults to nothing.
    fn drain_pending(&self) {}
}

/// The do-nothing hooks used by pools that run no reducers.
pub struct NoopHooks;

impl HyperHooks for NoopHooks {
    fn make_worker_state(&self, _index: usize) -> WorkerState {
        Box::new(())
    }

    fn detach(&self, _state: &mut dyn Any) -> DetachedViews {
        Box::new(())
    }

    fn attach(&self, _state: &mut dyn Any, _views: DetachedViews) {}

    fn merge_right(&self, _state: &mut dyn Any, _right: DetachedViews) {}

    fn collect_root(&self, _state: &mut dyn Any) {}

    fn discard(&self, _views: DetachedViews) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_round_trip() {
        let hooks = NoopHooks;
        let mut state = hooks.make_worker_state(0);
        let views = hooks.detach(state.as_mut());
        hooks.attach(state.as_mut(), views);
        let views = hooks.detach(state.as_mut());
        hooks.merge_right(state.as_mut(), views);
        hooks.collect_root(state.as_mut());
        hooks.discard(Box::new(()));
    }
}
