//! The fork-join primitive, with the reducer view protocol threaded
//! through it.
//!
//! `join(a, b)` is the child-stealing rendering of
//! `cilk_spawn a(); b(); cilk_sync;` — see the crate docs for the mapping.
//! The join frame ([`StackJob`]) plays the role of the paper's *full
//! frame*: its deposit slot is the right-sibling placeholder that a
//! terminating thief fills by view transferal, and the owner performs the
//! hypermerge once both sides are done.

use std::panic::{self, AssertUnwindSafe};

use cilkm_obs::{profile, trace, EventKind};

use crate::job::{JobResult, StackJob};
use crate::registry::WorkerThread;

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// Semantics mirror a Cilk spawn/sync pair with `a` serially earlier than
/// `b`:
///
/// * On a pool worker, `a` runs inline and `b` is published for thieves.
///   If nobody steals `b`, the worker pops it back and runs it in the
///   same execution context — the serial fast path with zero reducer
///   overhead (§3 of the paper).
/// * If `b` is stolen, the thief runs it in a fresh context (empty view
///   set); when both sides finish, the views are reduced in serial order
///   (`a`'s ⊗ `b`'s) by the waiting worker.
/// * Outside a pool, `a` and `b` simply run sequentially.
///
/// # Panics
///
/// If either closure panics, the panic is propagated after both sides
/// have quiesced; with both panicking, `a`'s (serially earlier) panic
/// wins. Views accumulated by a panicked join are destroyed, not merged.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match WorkerThread::current() {
        None => (a(), b()),
        Some(worker) => join_on_worker(worker, a, b),
    }
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    // DAG identity + the spawn point's span pair travel in the header
    // through the deque; both calls are one relaxed load when off.
    let tid = trace::next_task_id();
    job_b.header().prepare(tid, profile::spawn_point());
    // SP labels for the sanitizer's determinacy detector: the current
    // strand forks — `a` continues as the left sibling, `b` (stolen or
    // not) executes as the right. No-ops unless `sanitize` is on.
    let sp_frame = crate::sanhooks::sp_current();
    let (sp_cont, sp_child) = crate::sanhooks::sp_fork(sp_frame);
    job_b.header().set_sp_label(sp_child);
    let _ = crate::sanhooks::sp_enter(sp_cont);
    trace::emit(EventKind::Spawn, tid);
    let job_ref = job_b.as_job_ref();
    worker.push(job_ref);

    // Run the serially-earlier side inline, in the current context.
    let ra = panic::catch_unwind(AssertUnwindSafe(a));

    // The sync point: pause the current strand before the wait loop (any
    // foreign jobs executed while waiting nest their own contexts), and
    // remember the continuation's span pair for the fold below.
    let left = profile::sync_pause();
    trace::emit(EventKind::SyncBegin, tid);

    // Wait for b: pop it back if unstolen, leapfrog otherwise.
    let popped_own = worker.wait_for_latch(&job_b.latch, job_ref);

    let rb: JobResult<RB>;
    let mut deposit = None;
    // The joined strand's final span pair ((0,0) if it never ran).
    let mut child = (0u64, 0u64);
    if popped_own {
        if ra.is_ok() {
            worker.note_inline_join();
            trace::emit(EventKind::StrandBegin, tid);
            // Inline execution continues from the spawn point's pair in
            // the owner's (paused) context slot.
            let strand = profile::strand_begin(job_b.header().spawn_span());
            // Even inline, `b` is logically the right strand of the
            // fork — its label must differ from the continuation's.
            let sp_prev = crate::sanhooks::sp_enter(job_b.header().sp_label());
            // SAFETY: we popped our own push of `job_b` before anyone
            // stole it, so it is unexecuted and this thread is its only
            // owner.
            rb = unsafe { job_b.run_inline() };
            crate::sanhooks::sp_exit(sp_prev);
            child = profile::strand_end(strand);
            trace::emit(EventKind::StrandEnd, tid);
        } else {
            // a panicked and b was never stolen: serial semantics say b
            // never runs. Drop the closure unrun.
            // SAFETY: same exclusive ownership as the branch above; the
            // closure has not run and is dropped exactly once.
            unsafe { job_b.cancel() };
            rb = JobResult::None;
        }
    } else {
        worker.note_stolen_join();
        // SAFETY: the latch is set, so the thief finished executing
        // `job_b` and published the deposit, result, and final span
        // before the release store `wait_for_latch` acquired; each is
        // taken once.
        deposit = unsafe { job_b.take_deposit() };
        // SAFETY: as above.
        child = unsafe { job_b.header().final_span() };
        // SAFETY: as above.
        rb = unsafe { job_b.take_result() };
    }

    // The hypermerge (or, on a panic path, destruction of the orphaned
    // right views).
    let mut merge_ns = 0;
    if let Some(dep) = deposit {
        let hooks = worker.registry().hooks_arc();
        if ra.is_ok() && matches!(rb, JobResult::Ok(_)) {
            let t0 = if profile::profiling() {
                cilkm_obs::clock::now_ns()
            } else {
                0
            };
            trace::emit(EventKind::MergeBegin, 0);
            worker.with_state(|s| hooks.merge_right(s, dep));
            trace::emit(EventKind::MergeEnd, 0);
            if t0 != 0 {
                merge_ns = cilkm_obs::clock::now_ns().saturating_sub(t0);
            }
        } else {
            hooks.discard(dep);
        }
    }

    // Resume the continuation: the post-sync span is the later of the
    // continuation and the joined strand, and the merge burdens it.
    profile::sync_resume(left.0.max(child.0), left.1.max(child.1), merge_ns);
    // The sync point: both forked labels are now serially before the
    // bumped frame this strand continues as.
    crate::sanhooks::sp_join(sp_frame);
    trace::emit(EventKind::SyncEnd, tid);

    match ra {
        Err(p) => panic::resume_unwind(p),
        Ok(ra) => (ra, rb.into_return_value()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Pool;

    #[test]
    fn join_outside_pool_runs_sequentially() {
        let (x, y) = join(|| 1, || 2);
        assert_eq!((x, y), (1, 2));
    }

    #[test]
    fn join_inside_pool_returns_both() {
        let pool = Pool::new(2);
        let (x, y) = pool.run(|| join(|| 40, || 2));
        assert_eq!(x + y, 42);
    }

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
    }

    #[test]
    fn nested_joins_compute_fib() {
        let pool = Pool::new(4);
        assert_eq!(pool.run(|| fib(18)), 2584);
    }

    #[test]
    fn join_generates_steals_with_multiple_workers() {
        let pool = Pool::new(4);
        pool.run(|| fib(20));
        let stats = pool.stats();
        assert!(stats.inline_joins + stats.stolen_joins > 0);
        // With 4 workers contending, at least something should be stolen
        // over this many joins (not guaranteed in theory, overwhelmingly
        // likely in practice; fib(20) has thousands of joins).
        assert!(stats.jobs_executed >= 1);
    }

    #[test]
    #[should_panic(expected = "left boom")]
    fn left_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|| {
            join(|| panic!("left boom"), || 2);
        });
    }

    #[test]
    #[should_panic(expected = "right boom")]
    fn right_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|| {
            join(|| 1, || panic!("right boom"));
        });
    }

    #[test]
    fn left_panic_wins_over_right() {
        let pool = Pool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| {
                join::<_, _, (), ()>(|| panic!("left"), || panic!("right"));
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("?");
        assert_eq!(msg, "left");
    }

    #[test]
    fn deep_panic_inside_fib_tree_does_not_hang() {
        fn poisoned_fib(n: u64) -> u64 {
            if n == 7 {
                panic!("poison at 7");
            }
            if n < 2 {
                n
            } else {
                let (a, b) = join(|| poisoned_fib(n - 1), || poisoned_fib(n - 2));
                a + b
            }
        }
        let pool = Pool::new(4);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(|| poisoned_fib(15))));
        assert!(res.is_err());
        // Pool remains usable.
        assert_eq!(pool.run(|| fib(10)), 55);
    }
}
