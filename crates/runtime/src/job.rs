//! Type-erased jobs: the units that travel through deques.
//!
//! A job is any struct whose first field is a [`JobHeader`] containing its
//! execute function; a [`JobRef`] is a single thin pointer to that header,
//! which is what the Chase–Lev deque stores (one machine word, so slot
//! accesses can be plain atomics). This is the runtime analogue of the
//! Cilk frame: a [`StackJob`] is the spawned-child frame a thief may
//! promote, carrying the result slot, the completion latch, and the
//! *right placeholder* where the thief deposits its detached views.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};

use cilkm_obs::{profile, trace, EventKind};

use crate::hooks::DetachedViews;
use crate::latch::{Latch, SpinLatch};

/// First field of every job type: the type-erased execute function, plus
/// the task's DAG identity and work/span hand-off slots (PR 8).
///
/// `task_id` and `spawn_span` are written by the spawning worker before
/// the deque push and read by whichever worker executes the job — the
/// deque hand-off is the happens-before edge, exactly as for the job's
/// closure. `final_span` flows the other way: the executor writes it
/// before signaling the job's completion latch, and the joining owner
/// reads it after acquiring the latch. All three are zero when tracing /
/// profiling is off, and the spawn path pays nothing beyond the existing
/// enabled checks.
#[repr(C)]
pub struct JobHeader {
    execute_fn: unsafe fn(*const ()),
    /// DAG task id from [`cilkm_obs::trace::next_task_id`] (0 = tracing
    /// off at spawn time).
    task_id: Cell<u64>,
    /// The spawning strand's `(span, bspan)` at the spawn point.
    spawn_span: Cell<(u64, u64)>,
    /// The executed strand's final `(span, bspan)`; published by the
    /// latch handshake.
    final_span: UnsafeCell<(u64, u64)>,
    /// The task's SP (series-parallel) strand label for the sanitizer's
    /// determinacy detector; written by the spawner before the deque
    /// push, like `task_id`. Always present (one word), dead when the
    /// `sanitize` hooks are compiled out — same deal as `task_id` with
    /// tracing off.
    sp_label: Cell<u64>,
}

impl JobHeader {
    /// Builds a header around a job's execute function (for job types
    /// defined outside this module, e.g. scope tasks).
    pub fn new(execute_fn: unsafe fn(*const ())) -> JobHeader {
        JobHeader {
            execute_fn,
            task_id: Cell::new(0),
            spawn_span: Cell::new((0, 0)),
            final_span: UnsafeCell::new((0, 0)),
            sp_label: Cell::new(0),
        }
    }

    /// Stamps the task's SP strand label (sanitizer builds only; the
    /// spawner writes it before the deque push, which publishes it).
    pub fn set_sp_label(&self, label: u64) {
        self.sp_label.set(label);
    }

    /// The task's SP strand label (0 when the sanitizer is off).
    pub fn sp_label(&self) -> u64 {
        self.sp_label.get()
    }

    /// Stamps the task's DAG id and its spawn point's span pair. Called
    /// by the spawning worker before the job is pushed (the deque
    /// publish orders it before any foreign read).
    pub fn prepare(&self, task_id: u64, spawn_span: (u64, u64)) {
        self.task_id.set(task_id);
        self.spawn_span.set(spawn_span);
    }

    /// The task's DAG id (0 when tracing was off at spawn time).
    pub fn task_id(&self) -> u64 {
        self.task_id.get()
    }

    /// The spawning strand's span pair at the spawn point.
    pub fn spawn_span(&self) -> (u64, u64) {
        self.spawn_span.get()
    }

    /// Stores the executed strand's final span pair.
    ///
    /// # Safety
    ///
    /// Caller must be the executing worker, before it signals the job's
    /// completion latch (the latch's release publishes the write).
    pub(crate) unsafe fn set_final_span(&self, v: (u64, u64)) {
        *self.final_span.get() = v;
    }

    /// Reads the executed strand's final span pair.
    ///
    /// # Safety
    ///
    /// Caller must have synchronized with the completion (latch
    /// acquire).
    pub(crate) unsafe fn final_span(&self) -> (u64, u64) {
        *self.final_span.get()
    }
}

/// A thin, type-erased pointer to a job. The pointee must stay alive
/// until the job has been executed (stack jobs guarantee this by having
/// their owner wait on the latch before returning).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct JobRef {
    ptr: *const JobHeader,
}

// SAFETY: a `JobRef` only carries the address of a pinned `JobHeader`;
// whichever thread claims it calls `execute` at most once, and the
// pointee outlives execution (see the struct docs).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Type-erases a job. `job` must be pinned in memory until executed.
    ///
    /// # Safety
    ///
    /// `T`'s first field must be a `JobHeader` and `T` must be `repr(C)`.
    pub unsafe fn new<T>(job: *const T) -> JobRef {
        JobRef {
            ptr: job as *const JobHeader,
        }
    }

    /// Runs the job through its header function.
    ///
    /// # Safety
    ///
    /// Must be called exactly once, and the pointee must still be alive.
    #[inline]
    pub unsafe fn execute(self) {
        ((*self.ptr).execute_fn)(self.ptr as *const ())
    }

    /// The raw pointer, for storage in the deque.
    #[inline]
    pub fn as_raw(self) -> *mut () {
        self.ptr as *mut ()
    }

    /// Reconstitutes a `JobRef` from deque storage.
    ///
    /// # Safety
    ///
    /// `raw` must have come from [`JobRef::as_raw`].
    #[inline]
    pub unsafe fn from_raw(raw: *mut ()) -> JobRef {
        JobRef {
            ptr: raw as *const JobHeader,
        }
    }
}

/// Result slot of a job: distinguishes "not run", success, and panic.
pub enum JobResult<R> {
    /// Not yet executed.
    None,
    /// Completed and produced a value.
    Ok(R),
    /// Panicked; payload to be resumed by the owner.
    Panic(Box<dyn Any + Send>),
}

impl<R> JobResult<R> {
    /// Unwraps into the value, resuming the panic if the job panicked.
    ///
    /// # Panics
    ///
    /// Panics (resumes) if the job panicked; panics if the job never ran.
    pub fn into_return_value(self) -> R {
        match self {
            JobResult::None => unreachable!("job never executed"),
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
        }
    }
}

/// The spawned-child frame of a [`join`]: lives on the owner's stack.
///
/// The owner pushes a [`JobRef`] to it on its deque. Exactly one of three
/// things then happens, and the owner's wait loop learns which:
///
/// * the owner pops it back and runs it **inline** (serial fast path —
///   same execution context, no view operations at all, §3);
/// * a thief (or the owner acting as a thief while leapfrogging) runs it
///   via [`JobRef::execute`], which gives it a fresh context and ends
///   with **view transferal** into the frame's deposit slot; or
/// * the owner's side panicked, and the job is popped and **cancelled**
///   (closure dropped unrun).
///
/// [`join`]: crate::join
#[repr(C)]
pub struct StackJob<F, R> {
    header: JobHeader,
    /// The completion latch the owner waits on (set only on the foreign
    /// execution path; inline and cancel paths are known to the owner).
    pub latch: SpinLatch,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    deposit: UnsafeCell<Option<DetachedViews>>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// Creates a frame around `func`.
    pub fn new(func: F) -> StackJob<F, R> {
        StackJob {
            header: JobHeader::new(Self::execute_foreign),
            latch: SpinLatch::new(),
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
            deposit: UnsafeCell::new(None),
        }
    }

    /// The job's header (for the spawner to stamp the task id and spawn
    /// span, and the owner to read the final span after the latch).
    pub fn header(&self) -> &JobHeader {
        &self.header
    }

    /// The type-erased reference to push on the deque.
    pub fn as_job_ref(&self) -> JobRef {
        // SAFETY: a stack job is pinned by its owner, which waits on the
        // latch before returning (see the struct docs).
        unsafe { JobRef::new(self) }
    }

    /// The foreign execution path: runs the closure in the executing
    /// worker's (empty) current context, then performs view transferal
    /// into the deposit slot, then signals the latch. Never unwinds.
    unsafe fn execute_foreign(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        // JobBegin is emitted here — adjacent to `strand_begin` — rather
        // than at the registry call site, so the offline DAG's strand
        // boundaries coincide with the online profiler's segment clock
        // (a preemption between the two would otherwise be charged to
        // the strand by one instrument but not the other).
        trace::emit(EventKind::JobBegin, this.header.task_id());
        // The strand starts from the spawn point's span pair; view
        // transferal below is inside the strand so its cost lands on the
        // burdened side (the transferal *charge* debits the unburdened
        // one).
        let saved = profile::strand_begin(this.header.spawn_span());
        // The stolen child executes as the spawn point's right strand;
        // view transferal below is part of it.
        let sp_prev = crate::sanhooks::sp_enter(this.header.sp_label());
        let res = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        *this.result.get() = res;
        // View transferal: detach the views this execution accumulated
        // and deposit them in the frame's right placeholder. Done even on
        // panic so the executing worker returns to an empty context.
        let views = crate::registry::detach_current_views();
        *this.deposit.get() = Some(views);
        crate::sanhooks::sp_exit(sp_prev);
        // SAFETY: we are the executing worker and the latch is not yet
        // set; the release below publishes the span with the result.
        this.header.set_final_span(profile::strand_end(saved));
        // The strand's closing event must precede the latch: the owner
        // may drain the trace rings the moment the latch fires, and a
        // registry-side emit after `execute` returns would race that
        // drain and leave a truncated strand in the DAG.
        trace::emit(EventKind::JobEnd, this.header.task_id());
        // Release: result, deposit, and final span are published before
        // the flag.
        this.latch.set();
    }

    /// The inline path: the owner popped its own job back. Runs in the
    /// owner's current context; no latch, no deposit.
    ///
    /// # Safety
    ///
    /// Caller must be the owner, after popping this job from its deque.
    pub unsafe fn run_inline(&self) -> JobResult<R> {
        let func = (*self.func.get()).take().expect("job executed twice");
        match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        }
    }

    /// The cancel path: the owner's left side panicked before the job was
    /// stolen; drop the closure unrun.
    ///
    /// # Safety
    ///
    /// Caller must be the owner, after popping this job from its deque.
    pub unsafe fn cancel(&self) {
        drop((*self.func.get()).take());
    }

    /// Takes the result after the latch has been observed set (foreign
    /// path) or after `run_inline` stored it.
    ///
    /// # Safety
    ///
    /// Caller must have synchronized with the completion (latch acquire).
    pub unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }

    /// Takes the deposited views (foreign path only).
    ///
    /// # Safety
    ///
    /// Caller must have synchronized with the completion (latch acquire).
    pub unsafe fn take_deposit(&self) -> Option<DetachedViews> {
        (*self.deposit.get()).take()
    }
}

// SAFETY: the frame is shared with at most one other thread (the
// thief), and the protocol (deque + latch) serializes all access to the
// `UnsafeCell` fields.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

/// The injected root task of [`Pool::run`]: executes the user's closure as
/// the region's root context and then folds the accumulated views into
/// the reducers' leftmost storage ([`collect_root`]).
///
/// [`Pool::run`]: crate::Pool::run
/// [`collect_root`]: crate::hooks::HyperHooks::collect_root
#[repr(C)]
pub struct RootJob<F, R> {
    header: JobHeader,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: *const crate::latch::LockLatch,
}

impl<F, R> RootJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// Creates a root job; `latch` must outlive the execution (the caller
    /// of `Pool::run` blocks on it).
    pub fn new(func: F, latch: &crate::latch::LockLatch) -> RootJob<F, R> {
        RootJob {
            header: JobHeader::new(Self::execute_root),
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
            latch,
        }
    }

    /// The job's header (for `Pool::run` to stamp the root task id; the
    /// root strand starts from a zero span pair).
    pub fn header(&self) -> &JobHeader {
        &self.header
    }

    /// The type-erased reference to inject.
    pub fn as_job_ref(&self) -> JobRef {
        // SAFETY: `Pool::run` keeps the root job alive on its stack
        // until the latch fires, i.e. until after execution.
        unsafe { JobRef::new(self) }
    }

    unsafe fn execute_root(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("root executed twice");
        // Emitted next to `strand_begin`, as in the foreign path.
        trace::emit(EventKind::JobBegin, this.header.task_id());
        // The root strand: the whole region's span accumulates into this
        // context (joins fold their children's pairs back into it), so
        // its final pair *is* the region's span.
        let saved = profile::strand_begin(this.header.spawn_span());
        // Fresh SP region root: successive regions are mutually
        // sequential, strands forked inside this one hang off it.
        let sp_prev = crate::sanhooks::sp_region_enter();
        let res = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        *this.result.get() = res;
        // Root of the parallel region: views flow to leftmost storage.
        crate::registry::collect_root_views();
        crate::sanhooks::sp_exit(sp_prev);
        // SAFETY: executing worker, before the latch release publishes
        // the write to the region's caller.
        this.header.set_final_span(profile::strand_end(saved));
        // Before the latch, for the same drain-race reason as the
        // foreign path: the region's caller drains right after waiting.
        trace::emit(EventKind::JobEnd, this.header.task_id());
        (*this.latch).set();
    }

    /// Takes the result after waiting on the latch.
    ///
    /// # Safety
    ///
    /// Caller must have waited on the latch.
    pub unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }

    /// The root strand's final `(span, bspan)` pair.
    ///
    /// # Safety
    ///
    /// Caller must have waited on the latch.
    pub unsafe fn final_span(&self) -> (u64, u64) {
        self.header.final_span()
    }
}

// SAFETY: exactly one worker executes the injected job while the
// injecting thread only waits on the latch; the latch handshake orders
// the result handoff.
unsafe impl<F: Send, R: Send> Sync for RootJob<F, R> {}
// SAFETY: the closure and result are `Send`, and the latch reference is
// only used for signaling.
unsafe impl<F: Send, R: Send> Send for RootJob<F, R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_result_ok_unwraps() {
        assert_eq!(JobResult::Ok(42).into_return_value(), 42);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_result_panic_resumes() {
        let r: JobResult<()> = JobResult::Panic(Box::new("boom"));
        r.into_return_value();
    }

    #[test]
    fn job_ref_round_trips_through_raw() {
        let job: StackJob<_, i32> = StackJob::new(|| 7);
        let r = job.as_job_ref();
        let raw = r.as_raw();
        // SAFETY: `raw` came from `as_raw` on a live job just above.
        let back = unsafe { JobRef::from_raw(raw) };
        assert_eq!(back, r);
        // SAFETY: the job was never executed; cancel drops the closure
        // exactly once.
        unsafe { job.cancel() };
    }

    #[test]
    fn inline_path_stores_nothing_in_latch() {
        let job: StackJob<_, i32> = StackJob::new(|| 40 + 2);
        // SAFETY: the job was never pushed, so this thread is its only
        // owner and it has not run yet.
        let res = unsafe { job.run_inline() };
        assert!(!job.latch.probe());
        assert_eq!(res.into_return_value(), 42);
    }
}
