//! The sleeper/waker handshake, extracted from the registry so the
//! protocol itself is a unit the model checker can drive (see
//! `model_tests` and DESIGN.md §10).
//!
//! # The protocol
//!
//! Idle workers park without any lock on the wake path; producers pay
//! one fence and one load when everybody is awake. Correctness rests on
//! a single invariant, enforced with `SeqCst` fences on both sides:
//!
//! * A **parker** announces itself (marks its slot `PARKED`, increments
//!   `sleepers`), executes a `SeqCst` fence, and only then re-checks for
//!   work. It parks only if that re-check finds nothing.
//! * A **waker** first publishes the work (deque push or injection),
//!   executes a `SeqCst` fence, and only then loads `sleepers`.
//!
//! Both fences are totally ordered. If the waker's fence comes first,
//! the parker's re-check (after its own fence) observes the published
//! work and the parker retracts instead of parking. If the parker's
//! fence comes first, the waker's `sleepers` load observes the
//! increment and the waker wakes somebody. Either way no job is left
//! behind with every worker asleep. (A plain `Relaxed` load of
//! `sleepers` *without* the waker-side fence — the bug PR 1 fixed, kept
//! reproducible here as [`SleepGate::signal_one_racy`] — can miss a
//! just-parked sleeper: the load may be satisfied before the parker's
//! increment while the parker's re-check missed the push.)
//!
//! Waking claims a specific worker by CAS `PARKED → NOTIFIED` before
//! `unpark`, so concurrent wakers each rouse a *different* sleeper
//! instead of all piling onto one. A parked worker also wakes on a
//! timeout backstop, so a liveness bug degrades to latency, not
//! deadlock — except under the model, where timeouts never fire and a
//! lost wakeup is reported as a deadlock.

use std::sync::OnceLock;
use std::time::Duration;

use crate::msync::atomic::{fence, AtomicU32, AtomicUsize, Ordering};
use crate::msync::thread;

/// Park-state values for a worker's slot (protocol above).
const AWAKE: u32 = 0;
const PARKED: u32 = 1;
const NOTIFIED: u32 = 2;

struct Slot {
    /// `AWAKE`/`PARKED`/`NOTIFIED`; wakers claim a sleeper by CAS
    /// `PARKED → NOTIFIED` before unparking it.
    state: AtomicU32,
    /// The worker's thread handle for `unpark`; the worker registers it
    /// before its first park, so any observer of `PARKED` finds it set.
    parker: OnceLock<thread::Thread>,
}

/// Per-pool sleep/wake coordination: one slot per worker plus the
/// published sleeper count.
pub(crate) struct SleepGate {
    slots: Vec<Slot>,
    /// Number of workers currently announced as sleeping. Incremented
    /// before parking, decremented on wake; wakers read it after a
    /// `SeqCst` fence.
    sleepers: AtomicUsize,
    /// Rotates the starting point of wake scans so repeated wakes do not
    /// all land on worker 0.
    wake_cursor: AtomicUsize,
}

impl SleepGate {
    /// A gate for `n` workers, all awake.
    pub(crate) fn new(n: usize) -> SleepGate {
        SleepGate {
            slots: (0..n)
                .map(|_| Slot {
                    state: AtomicU32::new(AWAKE),
                    parker: OnceLock::new(),
                })
                .collect(),
            sleepers: AtomicUsize::new(0),
            wake_cursor: AtomicUsize::new(0),
        }
    }

    /// Registers the calling thread as worker `index`'s unpark target.
    /// Must run on the worker's own thread before its first `sleep`.
    pub(crate) fn register_current(&self, index: usize) {
        self.slots[index]
            .parker
            .set(thread::current())
            .unwrap_or_else(|_| panic!("worker {index} handle registered twice"));
    }

    /// Parker side: announce, fence, re-check via `work_exists`, and
    /// only park if the re-check finds nothing. Returns with the slot
    /// back in `AWAKE` regardless of how the park ended.
    #[cold]
    pub(crate) fn sleep(&self, index: usize, work_exists: impl FnOnce() -> bool) {
        let me = &self.slots[index];
        me.state.store(PARKED, Ordering::SeqCst);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !work_exists() {
            // Timeout backstop: a protocol bug shows up as latency, not
            // a hang. Spurious returns are fine — callers loop and
            // re-check. (Under the model this parks until unparked.)
            thread::park_timeout(Duration::from_millis(10));
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        // Swallow any claim raced onto us (NOTIFIED): the unpark token,
        // if still pending, only makes the next park return at once.
        me.state.swap(AWAKE, Ordering::SeqCst);
    }

    /// Waker side: the caller has already published work; fence, then
    /// wake one sleeper if any is announced.
    ///
    /// Lock-free: the common everybody-awake case is one fence and one
    /// load. The fence pairs with the parker's (module comment) — either
    /// this load observes the sleeper, or that sleeper's post-announce
    /// re-check observes the published work.
    #[inline]
    pub(crate) fn signal_one(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.wake_one();
        }
    }

    /// The pre-PR-1 bug, kept compilable so the model checker can prove
    /// it still catches it (see `model_tests::sleeper_regression_is_
    /// detected`): no waker-side fence, so the `Relaxed` sleeper load
    /// may be satisfied from before a just-parked worker's announcement
    /// while that worker's re-check missed the published work.
    #[cfg(feature = "model")]
    #[cfg_attr(not(test), allow(dead_code))] // exercised only from model_tests
    pub(crate) fn signal_one_racy(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.wake_one();
        }
    }

    /// Claims and unparks one parked worker, if any is still parked.
    #[cold]
    fn wake_one(&self) {
        let n = self.slots.len();
        let start = self.wake_cursor.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            let s = &self.slots[(start + i) % n];
            if s.state
                .compare_exchange(PARKED, NOTIFIED, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // A worker marks itself PARKED only after registering its
                // handle, so the claim guarantees the handle is present.
                s.parker
                    .get()
                    .expect("claimed sleeper has no handle")
                    .unpark();
                return;
            }
        }
        // Every announced sleeper is already claimed or mid-wakeup; their
        // own re-checks (or the woken workers' steal loops) cover the new
        // job, so there is nobody left to rouse.
    }

    /// Wakes every worker (termination and region starts). Includes the
    /// waker-side fence.
    pub(crate) fn signal_all(&self) {
        fence(Ordering::SeqCst);
        for s in &self.slots {
            // Unconditional: claiming is pointless when waking everyone,
            // and an unpark of a running worker is a no-op beyond making
            // its next park return immediately (it re-checks and re-parks).
            let _ = s
                .state
                .compare_exchange(PARKED, NOTIFIED, Ordering::SeqCst, Ordering::Relaxed);
            if let Some(h) = s.parker.get() {
                h.unpark();
            }
        }
    }
}
