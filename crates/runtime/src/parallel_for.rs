//! Divide-and-conquer parallel loops — the `cilk_for` analogue.
//!
//! Cilk Plus desugars `cilk_for` into recursive spawn/sync over halves of
//! the iteration space (§2, footnote 2 of the paper); [`parallel_for`]
//! does the same with nested [`join`]s, so iteration order within each
//! grain is the serial order and grains are reduced left-to-right — the
//! property that keeps non-commutative reducers deterministic.
//!
//! Splitting is *adaptive* rather than exhaustive: each loop starts with
//! a split budget equal to the worker count, halved at every split, and
//! reset whenever the range is observed on a different worker than the
//! one that split it (the signature of a steal — meaning thieves are
//! hungry and more parallelism is worth exposing). With no steals a loop
//! therefore forks only ~2·P times regardless of `len/grain`, while
//! under load it keeps subdividing. A range whose budget is exhausted
//! runs serially, still invoking `body` in `grain`-sized pieces.

use std::ops::Range;

use crate::join;
use crate::registry::{current_num_threads, current_worker_index};

/// Runs `body` over every sub-range of `range`, splitting until pieces
/// are at most `grain` long (adaptively — see the module comment).
///
/// `body` receives contiguous sub-ranges of at most `grain` elements that
/// partition `range`; within a sub-range it iterates serially, and the
/// recursion preserves the serial left-to-right reduction order for
/// reducers.
///
/// # Panics
///
/// Panics if `grain == 0`.
pub fn parallel_for<F>(range: Range<usize>, grain: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(grain > 0, "grain must be at least 1");
    // Off-pool callers get a zero budget: the whole range runs serially
    // (join() would run its closures inline anyway).
    let budget = current_num_threads().unwrap_or(0);
    adaptive(range, grain, body, budget, current_worker_index());
}

/// The recursive worker behind [`parallel_for`]: splits while `budget`
/// lasts, replenishing it after a migration (= this range was stolen).
fn adaptive<F>(
    range: Range<usize>,
    grain: usize,
    body: &F,
    mut budget: usize,
    origin: Option<usize>,
) where
    F: Fn(Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len <= grain {
        if len > 0 {
            body(range);
        }
        return;
    }
    // Executing on a different worker than the one that forked this range
    // means it was stolen: thieves are idle, so spend a full fresh budget
    // on exposing more parallelism (rayon's adaptive-splitting heuristic).
    let here = current_worker_index();
    if here != origin {
        budget = current_num_threads().unwrap_or(0);
    }
    if budget > 0 {
        let mid = range.start + len / 2;
        let child = budget / 2;
        join(
            || adaptive(range.start..mid, grain, body, child, here),
            || adaptive(mid..range.end, grain, body, child, here),
        );
        return;
    }
    // Budget exhausted: run serially, keeping the documented contract
    // that `body` sees pieces of at most `grain` elements, left to right.
    let mut start = range.start;
    while start < range.end {
        let end = (start + grain).min(range.end);
        body(start..end);
        start = end;
    }
}

/// Runs `body(i, &items[i])` for every element of `items`, in parallel,
/// splitting to grains of at most `grain` elements.
pub fn parallel_for_each<T, F>(items: &[T], grain: usize, body: &F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    parallel_for(0..items.len(), grain, &|r: Range<usize>| {
        for i in r {
            body(i, &items[i]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use crate::registry::Pool;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|| {
            parallel_for(0..1000, 16, &|r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        pool.run(|| {
            parallel_for(5..5, 4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn grain_larger_than_range_runs_serially() {
        let pool = Pool::new(2);
        let calls = AtomicUsize::new(0);
        pool.run(|| {
            parallel_for(0..10, 100, &|r| {
                assert_eq!(r, 0..10);
                calls.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_sums_a_slice() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        pool.run(|| {
            parallel_for_each(&items, 8, &|_, &x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    #[should_panic(expected = "grain must be")]
    fn zero_grain_panics() {
        parallel_for(0..10, 0, &|_| {});
    }

    #[test]
    fn pieces_never_exceed_grain() {
        let pool = Pool::new(4);
        // Large range, tiny grain: adaptive splitting exhausts its budget
        // quickly and must fall back to serial grain-sized chunking.
        let max_piece = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        pool.run(|| {
            parallel_for(0..10_000, 7, &|r| {
                max_piece.fetch_max(r.len(), Ordering::Relaxed);
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        });
        assert!(max_piece.load(Ordering::Relaxed) <= 7);
        assert_eq!(total.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn off_pool_call_runs_serially_in_grain_chunks() {
        // No pool: every piece still arrives, serially, at most grain long.
        let seen = crate::msync::Mutex::new(Vec::new());
        parallel_for(0..25, 10, &|r| seen.lock().push(r));
        assert_eq!(seen.into_inner(), vec![0..10, 10..20, 20..25]);
    }
}
