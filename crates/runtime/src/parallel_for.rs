//! Divide-and-conquer parallel loops — the `cilk_for` analogue.
//!
//! Cilk Plus desugars `cilk_for` into recursive spawn/sync over halves of
//! the iteration space (§2, footnote 2 of the paper); [`parallel_for`]
//! does the same with nested [`join`]s, so iteration order within each
//! grain is the serial order and grains are reduced left-to-right — the
//! property that keeps non-commutative reducers deterministic.

use std::ops::Range;

use crate::join;

/// Runs `body` over every sub-range of `range`, splitting recursively
/// until pieces are at most `grain` long.
///
/// `body` receives contiguous sub-ranges that partition `range`; within a
/// sub-range it iterates serially, and the recursion preserves the serial
/// left-to-right reduction order for reducers.
///
/// # Panics
///
/// Panics if `grain == 0`.
pub fn parallel_for<F>(range: Range<usize>, grain: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(grain > 0, "grain must be at least 1");
    let len = range.end.saturating_sub(range.start);
    if len <= grain {
        if len > 0 {
            body(range);
        }
        return;
    }
    let mid = range.start + len / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    join(
        || parallel_for(left, grain, body),
        || parallel_for(right, grain, body),
    );
}

/// Runs `body(i, &items[i])` for every element of `items`, in parallel,
/// splitting to grains of at most `grain` elements.
pub fn parallel_for_each<T, F>(items: &[T], grain: usize, body: &F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    parallel_for(0..items.len(), grain, &|r: Range<usize>| {
        for i in r {
            body(i, &items[i]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Pool;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|| {
            parallel_for(0..1000, 16, &|r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        pool.run(|| {
            parallel_for(5..5, 4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn grain_larger_than_range_runs_serially() {
        let pool = Pool::new(2);
        let calls = AtomicUsize::new(0);
        pool.run(|| {
            parallel_for(0..10, 100, &|r| {
                assert_eq!(r, 0..10);
                calls.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_sums_a_slice() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        pool.run(|| {
            parallel_for_each(&items, 8, &|_, &x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    #[should_panic(expected = "grain must be")]
    fn zero_grain_panics() {
        parallel_for(0..10, 0, &|_| {});
    }
}
