//! Locking primitives built from scratch — most importantly the spinlock
//! used as the locking comparator in the paper's Figure 1 (one
//! `pthread_spin_lock` per memory location, lock/unlock around each
//! update).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use crate::msync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spinlock with exponential backoff.
///
/// Functionally equivalent to `pthread_spin_lock` for the Figure 1
/// microbenchmark: uncontended acquire/release is one atomic
/// read-modify-write plus one store.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock owns its `T` and moves with it; `T: Send` is all
// that moving the whole lock between threads requires.
unsafe impl<T: Send> Send for SpinLock<T> {}
// SAFETY: the CAS on `locked` admits one guard at a time, so shared
// references to the lock only ever yield exclusive access to the `T`
// (the same bound std's `Mutex` uses).
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates an unlocked lock around `value`.
    pub const fn new(value: T) -> SpinLock<T> {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // cache line stays shared while contended.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SpinGuard { lock: self };
            }
            spins += 1;
            if spins < 16 {
                std::hint::spin_loop();
            } else {
                crate::msync::thread::yield_now();
            }
        }
    }

    /// Tries to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard; releases on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while this thread holds the
        // lock, so the cell is not aliased mutably.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: holding the lock (and `&mut` on the guard) makes this
        // the only reference to the cell's contents.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let lock = SpinLock::new(0);
        *lock.lock() += 5;
        assert_eq!(*lock.lock(), 5);
        assert_eq!(lock.into_inner(), 5);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let lock = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }
}
