//! The §8 microbenchmarks (Figure 4 of the paper) and the Figure 1
//! comparators.
//!
//! * `add-n` — summing 1 to x into n add-reducers in parallel;
//! * `min-n` / `max-n` — processing x pseudo-random values in parallel,
//!   accumulating into n min-/max-reducers;
//! * `add-base-n` — the control: the same loop over a plain array, no
//!   reducers, so `time(add-n) − time(add-base-n)` isolates lookup cost
//!   (Figure 6);
//! * `locking` — one spinlock per location, lock/unlock around each
//!   update (Figure 1);
//! * `l1` — plain (compiler-barriered) memory accesses: the unit of
//!   Figure 1's normalization.
//!
//! For each benchmark, iteration `i` touches location `i mod n`, and `x`
//! is chosen per `n` so every configuration performs the same number of
//! lookups, exactly as §8 prescribes.

use std::cell::UnsafeCell;
use std::time::{Duration, Instant};

use cilkm_core::library::{MaxMonoid, MinMonoid, SumMonoid};
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::parallel_for;
use cilkm_runtime::sync::SpinLock;

/// Shared settings for one microbenchmark run.
#[derive(Copy, Clone, Debug)]
pub struct MicroConfig {
    /// Worker count (1 for serial experiments, 16 for parallel ones).
    pub workers: usize,
    /// Reducer mechanism under test.
    pub backend: Backend,
    /// Number of reducers / locations (`n`; must be a power of two).
    pub reducers: usize,
    /// Total lookups to perform (`x`).
    pub lookups: u64,
    /// parallel_for grain (iterations per serial leaf).
    pub grain: usize,
}

impl MicroConfig {
    /// A config with the defaults used across the figures.
    pub fn new(workers: usize, backend: Backend, reducers: usize, lookups: u64) -> MicroConfig {
        assert!(reducers.is_power_of_two(), "n must be a power of two");
        MicroConfig {
            workers,
            backend,
            reducers,
            lookups,
            grain: 8192,
        }
    }
}

/// A cheap per-iteration pseudo-random value (splitmix-style), so min/max
/// runs process "x random values" without RNG state in the hot loop.
#[inline]
pub fn pseudo_random(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `add-n`: returns wall time. Panics if the reducer total does not
/// equal the iteration count (a correctness check on every benchmark run).
pub fn run_add(cfg: MicroConfig) -> Duration {
    let pool = ReducerPool::new(cfg.workers, cfg.backend);
    run_add_on(&pool, cfg)
}

/// The Figure 1 variant of add-n: the paper's literal "tight for loop"
/// on one worker, timed *inside* the region so neither region entry nor
/// loop-scheduling machinery is charged to the per-update cost.
pub fn run_add_tight(backend: Backend, reducers: usize, lookups: u64) -> Duration {
    let pool = ReducerPool::new(1, backend);
    let mask = reducers - 1;
    let rs: Vec<Reducer<SumMonoid<u64>>> = (0..reducers)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    let x = lookups as usize;
    let dt = pool.run(|| {
        let t0 = Instant::now();
        for i in 0..x {
            rs[i & mask].add(1);
        }
        t0.elapsed()
    });
    let total: u64 = rs.iter().map(|r| r.get_cloned()).sum();
    assert_eq!(total, lookups, "add-n (tight) lost updates");
    dt
}

/// As [`run_add`], but over an existing pool (used when a figure measures
/// several points against one pool, e.g. the reduce-overhead study).
pub fn run_add_on(pool: &ReducerPool, cfg: MicroConfig) -> Duration {
    let n = cfg.reducers;
    let mask = n - 1;
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(pool, SumMonoid::new(), 0))
        .collect();
    let x = cfg.lookups as usize;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, cfg.grain, &|r| {
            for i in r {
                reducers[i & mask].add(1);
            }
        });
    });
    let dt = t0.elapsed();
    let total: u64 = reducers.iter().map(|r| r.get_cloned()).sum();
    assert_eq!(total, cfg.lookups, "add-n lost updates");
    dt
}

/// Runs `min-n` over pseudo-random values; checks the result against a
/// serial fold over the same value stream.
pub fn run_min(cfg: MicroConfig) -> Duration {
    let pool = ReducerPool::new(cfg.workers, cfg.backend);
    let n = cfg.reducers;
    let mask = n - 1;
    let reducers: Vec<Reducer<MinMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, MinMonoid::new(), None))
        .collect();
    let x = cfg.lookups as usize;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, cfg.grain, &|r| {
            for i in r {
                reducers[i & mask].observe(pseudo_random(i as u64));
            }
        });
    });
    let dt = t0.elapsed();
    // Spot-check reducer 0 against a serial fold.
    let expect = (0..x)
        .filter(|i| i & mask == 0)
        .map(|i| pseudo_random(i as u64))
        .min();
    assert_eq!(reducers[0].get_cloned(), expect, "min-n wrong extreme");
    dt
}

/// Runs `max-n` symmetrically to [`run_min`].
pub fn run_max(cfg: MicroConfig) -> Duration {
    let pool = ReducerPool::new(cfg.workers, cfg.backend);
    let n = cfg.reducers;
    let mask = n - 1;
    let reducers: Vec<Reducer<MaxMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, MaxMonoid::new(), None))
        .collect();
    let x = cfg.lookups as usize;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, cfg.grain, &|r| {
            for i in r {
                reducers[i & mask].observe(pseudo_random(i as u64));
            }
        });
    });
    let dt = t0.elapsed();
    let expect = (0..x)
        .filter(|i| i & mask == 0)
        .map(|i| pseudo_random(i as u64))
        .max();
    assert_eq!(reducers[0].get_cloned(), expect, "max-n wrong extreme");
    dt
}

/// A cache-line-spread array of locations for the no-reducer controls.
struct Locations {
    cells: Vec<UnsafeCell<u64>>,
}

// SAFETY: only ever written single-threaded (the controls run on one
// worker); the parallel phases partition the index space disjointly.
unsafe impl Sync for Locations {}

impl Locations {
    /// Raw pointer to location `i` (keeps closures capturing the whole
    /// `Sync` struct rather than the inner non-`Sync` vector).
    #[inline]
    fn ptr(&self, i: usize) -> *mut u64 {
        self.cells[i].get()
    }
}

/// Runs `add-base-n`: the same scheduled loop as `add-n`, updating a
/// plain array instead of reducers. **Single-worker only** (the paper
/// runs it on one processor; with more workers the plain writes would
/// race).
pub fn run_add_base(workers: usize, reducers: usize, lookups: u64, grain: usize) -> Duration {
    assert_eq!(workers, 1, "add-base-n is a single-processor control");
    let pool = ReducerPool::new(1, Backend::Mmap); // backend irrelevant: no reducers
    let mask = reducers - 1;
    let locs = Locations {
        cells: (0..reducers).map(|_| UnsafeCell::new(0u64)).collect(),
    };
    let x = lookups as usize;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, grain, &|r| {
            for i in r {
                // Volatile, like the paper's `volatile` declarations: the
                // compiler may not cache the location in a register.
                // SAFETY: `ptr` points into the live cells vector, and
                // `parallel_for` hands each index to exactly one task.
                unsafe {
                    let p = locs.ptr(i & mask);
                    std::ptr::write_volatile(p, std::ptr::read_volatile(p) + 1);
                }
            }
        });
    });
    let dt = t0.elapsed();
    // SAFETY: the parallel region is over; this thread is the only one
    // left touching the cells.
    let total: u64 = locs.cells.iter().map(|c| unsafe { *c.get() }).sum();
    assert_eq!(total, lookups, "add-base-n lost updates");
    dt
}

/// The Figure 1 "L1-memory" baseline: the tight volatile-update loop with
/// no scheduling at all.
pub fn run_l1(reducers: usize, lookups: u64) -> Duration {
    let mask = reducers - 1;
    let locs: Vec<UnsafeCell<u64>> = (0..reducers).map(|_| UnsafeCell::new(0u64)).collect();
    let x = lookups as usize;
    let t0 = Instant::now();
    for i in 0..x {
        // SAFETY: single-threaded loop over locally owned cells.
        unsafe {
            let p = locs[i & mask].get();
            std::ptr::write_volatile(p, std::ptr::read_volatile(p) + 1);
        }
    }
    let dt = t0.elapsed();
    // SAFETY: as above — no other thread exists here.
    let total: u64 = locs.iter().map(|c| unsafe { *c.get() }).sum();
    assert_eq!(total, lookups);
    dt
}

/// The Figure 1 locking comparator: one spinlock per location, lock and
/// unlock around each update.
pub fn run_locking(reducers: usize, lookups: u64) -> Duration {
    let mask = reducers - 1;
    let locks: Vec<SpinLock<u64>> = (0..reducers).map(|_| SpinLock::new(0)).collect();
    let x = lookups as usize;
    let t0 = Instant::now();
    for i in 0..x {
        *locks[i & mask].lock() += 1;
    }
    let dt = t0.elapsed();
    let total: u64 = locks.iter().map(|l| *l.lock()).sum();
    assert_eq!(total, lookups);
    dt
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: u64 = 40_000;

    #[test]
    fn add_n_is_exact_on_both_backends() {
        for backend in [Backend::Hypermap, Backend::Mmap] {
            for workers in [1, 4] {
                let d = run_add(MicroConfig::new(workers, backend, 16, X));
                assert!(d.as_nanos() > 0);
            }
        }
    }

    #[test]
    fn min_max_controls_agree() {
        for backend in [Backend::Hypermap, Backend::Mmap] {
            run_min(MicroConfig::new(2, backend, 4, X));
            run_max(MicroConfig::new(2, backend, 4, X));
        }
    }

    #[test]
    fn baselines_run_and_count() {
        run_add_base(1, 4, X, 8192);
        run_l1(4, X);
        run_locking(4, X);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_spread() {
        assert_eq!(pseudo_random(1), pseudo_random(1));
        assert_ne!(pseudo_random(1), pseudo_random(2));
        // Rough spread check over 1000 draws.
        let high = (0..1000)
            .filter(|&i| pseudo_random(i) > u64::MAX / 2)
            .count();
        assert!((300..700).contains(&high));
    }
}
