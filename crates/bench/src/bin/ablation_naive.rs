//! Ablation: the naive TLMM-reducer design §5 rejects — views stored
//! *directly* in the TLMM region — versus thread-local indirection.
//!
//! Under the naive scheme, every hypermerge must map the other context's
//! pages into the merging worker's region (kernel crossings per merge,
//! scaling with the number of live pages, which fragmentation inflates),
//! and reducer allocation must manage variable-size objects inside the
//! region. Under thread-local indirection, views live on the shared heap
//! and a hypermerge performs **zero** extra crossings.
//!
//! This harness simulates both designs on the real `cilkm-tlmm`
//! substrate and counts simulated kernel crossings per merge, then
//! applies a latency model to show when the naive design's crossings
//! dominate the indirection's extra pointer dereference.
//!
//! Env: CILKM_ABLATION_MERGES (default 10000).

use std::sync::Arc;
use std::time::Instant;

use cilkm_bench::output::Table;
use cilkm_tlmm::{stats, PageArena, PageDesc, TlmmRegion, PAGE_SIZE};

/// Simulated view size in the naive scheme (a modest accumulator view).
const VIEW_BYTES: usize = 64;

/// Simulates the naive design: `live` views of VIEW_BYTES each scattered
/// over the other worker's pages with `frag`× fragmentation; a merge maps
/// those pages in (one pmap), walks the views, and unmaps (second pmap).
fn naive_merge(w2: &mut TlmmRegion, victim_pages: &[PageDesc], scratch_base: usize) -> u64 {
    let before = w2.arena().crossings().snapshot();
    w2.pmap(scratch_base, victim_pages);
    // Walk every mapped view (touch one byte per view slot).
    let mut acc = 0u64;
    for (i, _) in victim_pages.iter().enumerate() {
        let base = w2.page_base(scratch_base + i);
        for off in (0..PAGE_SIZE).step_by(VIEW_BYTES) {
            // SAFETY: `base` is the start of a live mapped arena page and
            // `off < PAGE_SIZE`, so the read stays inside that page.
            acc = acc.wrapping_add(unsafe { *base.add(off) } as u64);
        }
    }
    std::hint::black_box(acc);
    let nulls = vec![cilkm_tlmm::PD_NULL; victim_pages.len()];
    w2.pmap(scratch_base, &nulls);
    w2.arena()
        .crossings()
        .snapshot()
        .since(&before)
        .total_crossings()
}

/// Simulates indirection: views are heap boxes reachable from a shared
/// pointer table; a merge dereferences each pointer. The domain's arena
/// counters prove this performs zero crossings.
fn indirection_merge(arena: &PageArena, views: &[Box<[u8; VIEW_BYTES]>]) -> u64 {
    let before = arena.crossings().snapshot();
    let mut acc = 0u64;
    for v in views {
        acc = acc.wrapping_add(v[0] as u64);
    }
    std::hint::black_box(acc);
    arena
        .crossings()
        .snapshot()
        .since(&before)
        .total_crossings()
}

fn main() {
    let merges: usize = std::env::var("CILKM_ABLATION_MERGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    let arena = Arc::new(PageArena::new());
    let mut w2 = TlmmRegion::new(Arc::clone(&arena));

    // live views per merge × fragmentation factor (pages actually touched
    // vs pages strictly needed — allocation/deallocation churn in the
    // region scatters live reducers, §5).
    let configs: [(usize, usize); 6] = [(4, 1), (4, 4), (16, 1), (16, 4), (64, 1), (64, 4)];
    let crossing_costs = [0u64, 1000];

    let mut t = Table::new(
        &format!(
            "Ablation — naive direct-view design vs thread-local indirection (§5), {merges} merges"
        ),
        &[
            "views",
            "frag",
            "pages mapped",
            "crossings/merge",
            "naive ns (@0)",
            "naive ns (@1us)",
            "indirection ns",
        ],
    );

    for &(views, frag) in &configs {
        let needed_pages = (views * VIEW_BYTES).div_ceil(PAGE_SIZE).max(1);
        let pages = needed_pages * frag;
        let victim: Vec<PageDesc> = (0..pages).map(|_| arena.palloc()).collect();

        let mut crossings = 0u64;
        let mut naive_ns = Vec::new();
        for &cost in &crossing_costs {
            stats::set_crossing_cost_ns(cost);
            let t0 = Instant::now();
            for _ in 0..merges {
                crossings = naive_merge(&mut w2, &victim, 16);
            }
            naive_ns.push(t0.elapsed().as_nanos() as f64 / merges as f64);
        }
        stats::set_crossing_cost_ns(0);

        let heap_views: Vec<Box<[u8; VIEW_BYTES]>> =
            (0..views).map(|_| Box::new([1u8; VIEW_BYTES])).collect();
        let t0 = Instant::now();
        let mut ind_crossings = 0;
        for _ in 0..merges {
            ind_crossings = indirection_merge(&arena, &heap_views);
        }
        let ind_ns = t0.elapsed().as_nanos() as f64 / merges as f64;
        assert_eq!(ind_crossings, 0, "indirection must need no crossings");

        t.row(&[
            views.to_string(),
            format!("{frag}x"),
            pages.to_string(),
            crossings.to_string(),
            format!("{:.0}", naive_ns[0]),
            format!("{:.0}", naive_ns[1]),
            format!("{ind_ns:.0}"),
        ]);

        for pd in victim {
            arena.pfree(pd);
        }
    }
    t.emit("ablation_naive");

    println!(
        "Reading: the naive design pays two kernel crossings per merge and scans\n\
         whole pages (more with fragmentation); thread-local indirection performs\n\
         zero crossings and touches exactly the live views. With realistic syscall\n\
         latency the naive design is 1-2 orders of magnitude more expensive per\n\
         merge — the quantitative version of §5's argument."
    );
}
