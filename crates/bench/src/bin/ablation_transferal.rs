//! Ablation: the two view-transferal strategies of §7.
//!
//! When worker W1 terminates a frame it must publish its local views so
//! another worker can hypermerge them. The paper names two strategies:
//!
//! * **mapping** — W1 leaves the *page descriptors* of its private SPA
//!   maps in the frame; the merging worker W2 maps those pages into its
//!   own TLMM region (a `sys_pmap`, i.e. kernel crossings) and reads the
//!   views in place;
//! * **copying** — W1 copies the view pointers into *public SPA maps* in
//!   shared memory (zeroing its private maps as it goes); W2 reads the
//!   public maps directly, no remapping.
//!
//! Cilk-M chooses copying "because the number of reducers used in a
//! program is generally small, and thus the overhead of memory mapping
//! greatly outweighs the cost of copying a few pointers". This harness
//! measures both strategies over the actual `cilkm-tlmm` + `cilkm-spa`
//! substrates, sweeping the number of live views and the simulated
//! kernel-crossing latency, and reports the crossover.
//!
//! Env: CILKM_ABLATION_ITERS (default 2000 transferals per point),
//! crossing costs swept over {0ns, 300ns, 1000ns, 3000ns}.

use std::sync::Arc;
use std::time::Instant;

use cilkm_bench::output::Table;
use cilkm_spa::{SpaMapBox, SpaMapRef, ViewPair, VIEWS_PER_MAP};
use cilkm_tlmm::{stats, PageArena, TlmmRegion};

fn fake_pair(tag: usize) -> ViewPair {
    ViewPair {
        view: (0x10_0000 + tag * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

/// One copying transferal: private → fresh public map (+ zeroing), then
/// the "merger" sequences the public map (and zeroes it for recycling).
fn copying_round(private: SpaMapRef, public_pool: &mut Vec<SpaMapBox>, nviews: usize) -> usize {
    let public = public_pool.pop().unwrap_or_default();
    let pref = public.as_ref();
    private.drain(|idx, pair| {
        pref.insert(idx, pair);
    });
    // Merger side: sequence and consume.
    let mut seen = 0;
    pref.drain(|_, _| seen += 1);
    public_pool.push(public);
    debug_assert_eq!(seen, nviews);
    seen
}

/// One mapping transferal: W1 publishes descriptors; W2 pmaps them into
/// its own region at a scratch offset and sequences in place, then
/// unmaps. W1 must still zero its private map afterwards (the paper's
/// invariant: a worker re-enters stealing with empty private maps).
fn mapping_round(
    w1_private: SpaMapRef,
    w1_desc: cilkm_tlmm::PageDesc,
    w2: &mut TlmmRegion,
    scratch_page: usize,
    nviews: usize,
) -> usize {
    // W2 maps W1's page (kernel crossing) and reads the views in place.
    w2.pmap(scratch_page, &[w1_desc]);
    // SAFETY: the page just mapped at `scratch_page` is W1's SPA-map page
    // (laid out by `SpaMapRef` writes), and only this thread touches it
    // while mapped.
    let mapped = unsafe { SpaMapRef::from_raw(w2.page_base(scratch_page)) };
    let mut seen = 0;
    mapped.for_each_valid(|_, _| seen += 1);
    debug_assert_eq!(seen, nviews);
    // W1 zeroes its private map before stealing again.
    w1_private.clear_all();
    // W2 unmaps (second crossing in a real system; batched here).
    w2.pmap(scratch_page, &[cilkm_tlmm::PD_NULL]);
    seen
}

fn main() {
    let iters: usize = std::env::var("CILKM_ABLATION_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    let arena = Arc::new(PageArena::new());
    let mut w1 = TlmmRegion::new(Arc::clone(&arena));
    let mut w2 = TlmmRegion::new(Arc::clone(&arena));
    let w1_desc = arena.palloc();
    w1.pmap(0, &[w1_desc]);
    // SAFETY: `w1_desc` is a freshly `palloc`ed zeroed page mapped at
    // slot 0; an all-zero page is a valid empty SPA map, and only this
    // thread accesses it.
    let private = unsafe { SpaMapRef::from_raw(w1.page_base(0)) };

    let view_counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 248];
    let crossing_costs = [0u64, 300, 1000, 3000];

    let mut t = Table::new(
        &format!(
            "Ablation — view transferal strategy (§7), ns per transferal, {iters} iters/point"
        ),
        &[
            "views",
            "copying",
            "map@0ns",
            "map@300ns",
            "map@1us",
            "map@3us",
            "winner@1us",
        ],
    );

    for &nv in &view_counts {
        let fill = |m: SpaMapRef| {
            for i in 0..nv {
                m.insert(i % VIEWS_PER_MAP, fake_pair(i));
            }
        };

        // Copying strategy.
        stats::set_crossing_cost_ns(0);
        let mut pool: Vec<SpaMapBox> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..iters {
            fill(private);
            copying_round(private, &mut pool, nv);
        }
        let copy_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        for p in pool.drain(..) {
            p.as_ref().clear_all();
            drop(p);
        }

        // Mapping strategy at each simulated syscall latency.
        let mut map_ns = Vec::new();
        for &cost in &crossing_costs {
            stats::set_crossing_cost_ns(cost);
            let t0 = Instant::now();
            for _ in 0..iters {
                fill(private);
                mapping_round(private, w1_desc, &mut w2, 8, nv);
            }
            map_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        stats::set_crossing_cost_ns(0);

        let winner = if copy_ns < map_ns[2] {
            "copying"
        } else {
            "mapping"
        };
        t.row(&[
            nv.to_string(),
            format!("{copy_ns:.0}"),
            format!("{:.0}", map_ns[0]),
            format!("{:.0}", map_ns[1]),
            format!("{:.0}", map_ns[2]),
            format!("{:.0}", map_ns[3]),
            winner.into(),
        ]);
    }
    t.emit("ablation_transferal");

    let snap = arena.crossings().snapshot();
    println!(
        "total simulated kernel crossings this run: {}",
        snap.total_crossings()
    );
    println!(
        "\nReading: with few views (the common case, per §7) copying beats mapping as\n\
         soon as kernel crossings cost anything realistic; mapping only wins when a\n\
         transferal carries hundreds of views AND crossings are cheap."
    );
}
