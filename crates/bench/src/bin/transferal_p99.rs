//! CI gate: the tail of view transferal under steal contention.
//!
//! ```sh
//! cargo run --release --bin transferal_p99
//! ```
//!
//! PR 3's tracer showed view transferal is bimodal — p50 around a
//! microsecond, p99 two orders of magnitude higher — because every
//! steal return and hypermerge funnelled through the `ReducerDomain`
//! mutexes. This harness constructs the contended case on purpose:
//! many workers (oversubscribed "thieves"), one domain, a long train
//! of tiny `parallel_for` regions so the schedule is steal-dense and
//! every steal pays a detach (view transferal — §7 copying for sparse
//! pages, §16 page exchange for dense ones) and an attach on return.
//! The copied-views / exchanged-pages split rides along in the JSON so
//! the trajectory shows how much per-view copying the exchange path
//! displaced.
//!
//! Two tail numbers come out of the run:
//!
//! * **cpu p50/p99** — thread-CPU-time per transferal (the coarse
//!   Figure-8 histogram; it cannot see time spent *waiting* on a lock);
//! * **wall p50/p99** — wall-clock per transferal from the fine
//!   histogram (sub-log2 buckets in the 1–128 µs band). Lock waits and
//!   the scheduling quanta they induce land here, so this is the gated
//!   number.
//!
//! The gate fails if wall p99 exceeds `CILKM_TRANSFERAL_P99_MAX_NS`
//! (default committed below, with headroom over the lock-free path's
//! measured tail on the reference host). Results are persisted as
//! `bench_out/transferal_p99.csv` and a stable-schema
//! `bench_out/BENCH_transferal.json` — the first point of the
//! `BENCH_*.json` perf trajectory.
//!
//! Env: CILKM_BENCH_WORKERS (default 8), CILKM_TRANSFERAL_ROUNDS
//! (default 200 regions), CILKM_TRANSFERAL_SPIN (per-iteration opaque
//! work units, default 250), CILKM_TRANSFERAL_P99_MAX_NS.

use std::process::ExitCode;

use cilkm_bench::micro::run_add_tight;
use cilkm_bench::output::{out_dir, Table};
use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::parallel_for;

/// Default gate: a regression backstop, not a tight bound. On the
/// single-core reference host the lock-free path's wall p99 sits at
/// 30–65 µs when the tail is transferal-bound, but under 8–16×
/// oversubscription ~1% of windows absorb a scheduler requeue
/// (~0.5–0.7 ms), so the gate sits above that scheduling noise and
/// catches only structural regressions — e.g. a blocking acquisition
/// reintroduced on the steal-return path, which serializes whole
/// convoys of thieves and pushes p99 past this ceiling.
const DEFAULT_P99_MAX_NS: u64 = 4_000_000;

struct Measured {
    transferals: u64,
    transferal_views: u64,
    transferal_copied_views: u64,
    transferal_exchanged_pages: u64,
    steals: u64,
    crossings: u64,
    cpu_p50: u64,
    cpu_p99: u64,
    wall_p50: u64,
    wall_p99: u64,
    wall_mean: f64,
}

/// Opaque per-iteration work (~a microsecond): long enough that a
/// region spans several scheduling quanta even on a single-core host,
/// so oversubscribed thieves actually get scheduled and steal.
#[inline(never)]
fn spin_work(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_add(std::hint::black_box(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    std::hint::black_box(acc)
}

/// One contended-transferal measurement: `rounds` steal-dense regions
/// over `n` reducers on `workers` workers, one shared domain.
fn measure(workers: usize, n: usize, rounds: usize, spin: u64) -> Measured {
    let pool = ReducerPool::new(workers, Backend::Mmap);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    let hist0 = pool.overhead_histograms();
    let ins0 = pool.instrument();
    let steals0 = pool.stats().steals;
    let cross0 = pool.domain().arena_handle().crossings().snapshot();
    // Fine grain (2) keeps the deque shallow so idle workers steal
    // continuations rather than draining locally, and the per-iteration
    // spin keeps each region alive across scheduling quanta: each
    // region is a burst of steals, and every steal's return path
    // performs a transferal into the shared domain. Every reducer is
    // touched once per region so each thief's context spans the full
    // page range.
    let iters = n;
    for _ in 0..rounds {
        pool.run(|| {
            parallel_for(0..iters, 2, &|range| {
                for i in range {
                    reducers[i % n].add(1);
                    spin_work(spin);
                }
            });
        });
    }
    let total: u64 = reducers.iter().map(|r| r.get_cloned()).sum();
    assert_eq!(total, (iters * rounds) as u64, "contended add lost updates");

    let hist = pool.overhead_histograms();
    let ins = pool.instrument().since(&ins0);
    let cpu = hist.transferal.since(&hist0.transferal);
    let wall = hist.transferal_fine.since(&hist0.transferal_fine);
    let cross = pool
        .domain()
        .arena_handle()
        .crossings()
        .snapshot()
        .since(&cross0);
    Measured {
        transferals: ins.transferals,
        transferal_views: ins.transferal_views,
        transferal_copied_views: ins.transferal_copied_views,
        transferal_exchanged_pages: ins.transferal_exchanged_pages,
        steals: pool.stats().steals - steals0,
        crossings: cross.total_crossings(),
        cpu_p50: cpu.quantile_upper_bound(0.50),
        cpu_p99: cpu.quantile_upper_bound(0.99),
        wall_p50: wall.quantile_upper_bound(0.50),
        wall_p99: wall.quantile_upper_bound(0.99),
        wall_mean: wall.mean(),
    }
}

fn main() -> ExitCode {
    let workers = cilkm_bench::env_workers(8);
    let rounds: usize = std::env::var("CILKM_TRANSFERAL_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let spin: u64 = std::env::var("CILKM_TRANSFERAL_SPIN")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    let p99_max: u64 = std::env::var("CILKM_TRANSFERAL_P99_MAX_NS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_P99_MAX_NS);
    // 4096 reducers span 17 SPA pages (248 views/map) — more than
    // double the mmap backend's 8-map worker-local cache — so the
    // majority of every detach's public maps must come from the shared
    // domain pool and the majority of every attach's recycles must
    // spill back to it. Smaller n lets the local caches absorb the
    // lifecycle traffic and the pool (the contended structure this
    // gate exists to watch) goes quiet.
    let n = 4096usize;

    // Warm-up region so first-touch page faults and pool spin-up are not
    // charged to the measured tail.
    let _ = measure(workers, n, rounds / 10 + 1, spin);
    let m = measure(workers, n, rounds, spin);

    // Lookup cost rides along in the JSON so the trajectory catches a
    // fast-path regression smuggled in by lifecycle work.
    let lookups = 1u64 << 20;
    let lookup_ns = run_add_tight(Backend::Mmap, 1, lookups).as_nanos() as f64 / lookups as f64;

    let mut t = Table::new(
        &format!(
            "Contended view transferal — {workers} workers, one domain, \
             {n} reducers, {rounds} steal-dense regions"
        ),
        &[
            "transferals",
            "views",
            "copied",
            "xchg pages",
            "steals",
            "crossings/steal",
            "cpu p50",
            "cpu p99",
            "wall p50",
            "wall p99",
            "wall mean",
        ],
    );
    let cps = if m.steals > 0 {
        m.crossings as f64 / m.steals as f64
    } else {
        0.0
    };
    let per_steal = format!("{cps:.2}");
    t.row(&[
        m.transferals.to_string(),
        m.transferal_views.to_string(),
        m.transferal_copied_views.to_string(),
        m.transferal_exchanged_pages.to_string(),
        m.steals.to_string(),
        per_steal.clone(),
        format!("{}ns", m.cpu_p50),
        format!("{}ns", m.cpu_p99),
        format!("{}ns", m.wall_p50),
        format!("{}ns", m.wall_p99),
        format!("{:.0}ns", m.wall_mean),
    ]);
    t.emit("transferal_p99");

    // Stable-schema JSON data point (hand-rolled: all fields are numbers
    // or short known strings, nothing needs escaping).
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"transferal_p99\",\n  \
         \"backend\": \"mmap\",\n  \"workers\": {workers},\n  \"reducers\": {n},\n  \
         \"regions\": {rounds},\n  \"steals\": {},\n  \"transferals\": {},\n  \
         \"transferal_views\": {},\n  \"transferal_copied_views\": {},\n  \
         \"transferal_exchanged_pages\": {},\n  \"crossings_per_steal\": {cps:.3},\n  \
         \"transferal_cpu_p50_ns\": {},\n  \"transferal_cpu_p99_ns\": {},\n  \
         \"transferal_wall_p50_ns\": {},\n  \"transferal_wall_p99_ns\": {},\n  \
         \"transferal_wall_mean_ns\": {:.0},\n  \"lookup_ns\": {lookup_ns:.3},\n  \
         \"gate_p99_max_ns\": {p99_max}\n}}\n",
        m.steals,
        m.transferals,
        m.transferal_views,
        m.transferal_copied_views,
        m.transferal_exchanged_pages,
        m.cpu_p50,
        m.cpu_p99,
        m.wall_p50,
        m.wall_p99,
        m.wall_mean,
    );
    let path = out_dir().join("BENCH_transferal.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    println!(
        "\nwall p99 = {} ns (gate: < {p99_max} ns); lookup = {lookup_ns:.3} ns",
        m.wall_p99
    );
    if m.wall_p99 >= p99_max {
        eprintln!(
            "FAIL: contended transferal wall p99 {} ns regressed past {p99_max} ns",
            m.wall_p99
        );
        return ExitCode::FAILURE;
    }
    println!("PASS");
    ExitCode::SUCCESS
}
