//! Regenerates Figure 10: PBFS relative execution time (Cilk-M vs Cilk
//! Plus) on the eight stand-in input graphs, plus the characteristics
//! table.
//!
//! Env: CILKM_GRAPH_SCALE (graph-size divisor, default 500),
//! CILKM_BENCH_WORKERS.

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig10: graph scale divisor = {}, workers = {}\n",
        cilkm_bench::env_graph_scale(500.0),
        opts.workers
    );
    cilkm_bench::figures::fig10(opts);
}
