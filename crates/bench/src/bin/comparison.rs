//! The paper's motivating comparison (§1): strategies for updating a
//! *nonlocal variable* from parallel code, measured on the same workload.
//!
//! "Although existing reducer mechanisms are generally faster than other
//! solutions for updating nonlocal variables, such as locking and
//! atomic-update, they are still relatively slow." — this harness puts
//! numbers on all of them, on this machine:
//!
//! * **reducer (memory-mapped)** — Cilk-M's mechanism;
//! * **reducer (hypermap)** — Cilk Plus's mechanism;
//! * **atomic-update** — `AtomicU64::fetch_add` on shared counters;
//! * **locking** — one spinlock per counter;
//! * **manual split** — rayon-style `parallel_reduce` (each subtree
//!   returns a value, reduced structurally: the "rewrite your code"
//!   alternative reducers exist to avoid).
//!
//! All run the add-n workload: x updates spread over n counters, on P
//! workers. Correctness of every strategy is asserted.
//!
//! Env: CILKM_BENCH_SCALE (default 512), CILKM_BENCH_WORKERS (default 4).

// lint: allow(raw-sync, this benchmark measures the shared-atomic-counter *alternative* to reducers — the contended std primitive is the subject under test, and substituting a recorded one would measure the checker instead)
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cilkm_bench::output::{fmt_duration, write_bench_json, Table};
use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::sync::SpinLock;
use cilkm_runtime::{join, parallel_for};

fn run_atomic(pool: &ReducerPool, n: usize, x: usize, grain: usize) -> Duration {
    let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mask = n - 1;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, grain, &|r| {
            for i in r {
                counters[i & mask].fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    let dt = t0.elapsed();
    let total: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, x as u64);
    dt
}

fn run_locked(pool: &ReducerPool, n: usize, x: usize, grain: usize) -> Duration {
    let counters: Vec<SpinLock<u64>> = (0..n).map(|_| SpinLock::new(0)).collect();
    let mask = n - 1;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, grain, &|r| {
            for i in r {
                *counters[i & mask].lock() += 1;
            }
        });
    });
    let dt = t0.elapsed();
    let total: u64 = counters.iter().map(|c| *c.lock()).sum();
    assert_eq!(total, x as u64);
    dt
}

/// The manual alternative: restructure the computation so each branch
/// returns its own partial sums, combined on the way up. No shared
/// mutable state at all — but the code had to change shape.
fn run_manual_split(pool: &ReducerPool, n: usize, x: usize, grain: usize) -> Duration {
    fn go(lo: usize, hi: usize, grain: usize, n: usize) -> Vec<u64> {
        if hi - lo <= grain {
            let mut part = vec![0u64; n];
            let mask = n - 1;
            for i in lo..hi {
                part[i & mask] += 1;
            }
            return part;
        }
        let mid = lo + (hi - lo) / 2;
        let (mut a, b) = join(|| go(lo, mid, grain, n), || go(mid, hi, grain, n));
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    }
    let t0 = Instant::now();
    let result = pool.run(|| go(0, x, grain, n));
    let dt = t0.elapsed();
    assert_eq!(result.iter().sum::<u64>(), x as u64);
    dt
}

fn run_reducer(backend: Backend, workers: usize, n: usize, x: usize, grain: usize) -> Duration {
    let pool = ReducerPool::new(workers, backend);
    let rs: Vec<Reducer<SumMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    let mask = n - 1;
    let t0 = Instant::now();
    pool.run(|| {
        parallel_for(0..x, grain, &|r| {
            for i in r {
                rs[i & mask].add(1);
            }
        });
    });
    let dt = t0.elapsed();
    assert_eq!(rs.iter().map(|r| r.get_cloned()).sum::<u64>(), x as u64);
    dt
}

fn main() {
    let scale = cilkm_bench::env_scale(512.0);
    let workers = cilkm_bench::env_workers(4);
    let x = ((1024.0 * 1024.0 * 1024.0 / scale) as usize).max(100_000);
    let grain = 8192;

    let mut t = Table::new(
        &format!("Nonlocal-variable update strategies (add-n, x = {x}, {workers} workers)"),
        &[
            "n",
            "reducer (mmap)",
            "reducer (hyper)",
            "atomic",
            "locking",
            "manual split",
        ],
    );

    let mut json = vec![
        ("workers".to_string(), workers.to_string()),
        ("updates".to_string(), x.to_string()),
    ];
    for n in [4usize, 64, 1024] {
        let mmap = run_reducer(Backend::Mmap, workers, n, x, grain);
        let hyper = run_reducer(Backend::Hypermap, workers, n, x, grain);
        let aux_pool = ReducerPool::new(workers, Backend::Mmap);
        let atomic = run_atomic(&aux_pool, n, x, grain);
        let locked = run_locked(&aux_pool, n, x, grain);
        let manual = run_manual_split(&aux_pool, n, x, grain);
        t.row(&[
            n.to_string(),
            fmt_duration(mmap),
            fmt_duration(hyper),
            fmt_duration(atomic),
            fmt_duration(locked),
            fmt_duration(manual),
        ]);
        for (strategy, d) in [
            ("reducer_mmap", mmap),
            ("reducer_hypermap", hyper),
            ("atomic", atomic),
            ("locking", locked),
            ("manual_split", manual),
        ] {
            json.push((format!("n{n}_{strategy}_ns"), d.as_nanos().to_string()));
        }
    }
    t.emit("comparison");
    write_bench_json("comparison", &json);

    println!(
        "Notes: atomics/locks contend on shared cache lines as P grows and give no\n\
         ordering guarantee for non-commutative combining; the manual split gives\n\
         determinism but required restructuring the program and materializes O(n)\n\
         partials per branch. Reducers keep the serial code shape (Figure 2 of the\n\
         paper) and serial semantics; the memory-mapped mechanism makes that\n\
         abstraction nearly as cheap as the raw update."
    );
}
