//! Regenerates Figure 9: speedup of add-n on Cilk-M for 1..16 workers.
//! Note: on hosts with fewer hardware threads, workers are oversubscribed
//! and the curve saturates at the core count (recorded in EXPERIMENTS.md).
//!
//! Env: CILKM_BENCH_SCALE.

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!("fig9: scale divisor = {}\n", opts.scale);
    cilkm_bench::figures::fig9(opts);
}
