//! The regime the paper's footnote 9 warns about: "It is possible to
//! write an application to use [a] large number of reducers in such a way
//! that the reduce overhead dominates the total work in the computation.
//! In such case, the reduce overhead will affect scalability." (§8,
//! investigated further in Lee's thesis, ch. 5.)
//!
//! This harness constructs exactly that pathology — thousands of live
//! reducers, only a handful of updates each per region, with steals
//! forcing a view creation + insertion + merge per reducer per steal —
//! and reports what fraction of the region's CPU time is reduce overhead
//! under each backend. It shows (a) that the pathology is real on both
//! mechanisms, and (b) that the memory-mapped mechanism pushes the
//! cliff out by a constant factor but does not remove it: the paper's
//! "as long as the number of reducers used is reasonable" caveat,
//! quantified.
//!
//! Env: CILKM_BENCH_WORKERS (default 8), CILKM_OVERHEAD_ROUNDS (default
//! 30 regions per point).

use std::time::{Duration, Instant};

use cilkm_bench::output::{write_bench_json, Table};
use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::parallel_for;

struct Point {
    total: Duration,
    overhead_ns: u64,
    steals: u64,
}

fn measure(backend: Backend, workers: usize, n: usize, rounds: usize) -> Point {
    let pool = ReducerPool::new(workers, backend);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    // Tiny work per reducer per region: every touched reducer costs a
    // view creation + insertion on the first touch after each steal,
    // so overhead scales with n while useful work barely does.
    let updates_per_reducer = 4u64;
    let before = pool.instrument();
    let steals0 = pool.stats().steals;
    let t0 = Instant::now();
    for _ in 0..rounds {
        pool.run(|| {
            parallel_for(0..n, 8, &|range| {
                for i in range {
                    for _ in 0..updates_per_reducer {
                        reducers[i].add(1);
                    }
                }
            });
        });
    }
    let total = t0.elapsed();
    let snap = pool.instrument().since(&before);
    let steals = pool.stats().steals - steals0;
    for (i, r) in reducers.iter().enumerate() {
        assert_eq!(
            r.get_cloned(),
            updates_per_reducer * rounds as u64,
            "reducer {i} under {backend:?}"
        );
    }
    Point {
        total,
        overhead_ns: snap.reduce_overhead_ns(),
        steals,
    }
}

fn main() {
    let workers = cilkm_bench::env_workers(8);
    let rounds: usize = std::env::var("CILKM_OVERHEAD_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let mut t = Table::new(
        &format!(
            "Footnote 9 — reduce overhead dominating total work \
             ({workers} workers, {rounds} regions/point, 4 updates/reducer/region)"
        ),
        &[
            "reducers",
            "backend",
            "total",
            "overhead",
            "overhead %",
            "steals",
            "ns/steal",
        ],
    );

    let mut json = vec![
        ("workers".to_string(), workers.to_string()),
        ("rounds".to_string(), rounds.to_string()),
    ];
    for n in [256usize, 1024, 4096, 16384] {
        for backend in [Backend::Mmap, Backend::Hypermap] {
            let p = measure(backend, workers, n, rounds);
            let total_ns = p.total.as_nanos() as f64;
            let share = p.overhead_ns as f64 / total_ns * 100.0;
            t.row(&[
                n.to_string(),
                format!("{backend:?}"),
                cilkm_bench::output::fmt_duration(p.total),
                cilkm_bench::output::fmt_duration(Duration::from_nanos(p.overhead_ns)),
                format!("{share:.1}%"),
                p.steals.to_string(),
                if p.steals > 0 {
                    format!("{:.0}", p.overhead_ns as f64 / p.steals as f64)
                } else {
                    "-".into()
                },
            ]);
            let tag = format!("r{n}_{}", format!("{backend:?}").to_lowercase());
            json.push((format!("{tag}_total_ns"), p.total.as_nanos().to_string()));
            json.push((format!("{tag}_overhead_ns"), p.overhead_ns.to_string()));
            json.push((format!("{tag}_overhead_pct"), format!("{share:.1}")));
        }
    }
    t.emit("overhead_limit");
    write_bench_json("overhead_limit", &json);

    println!(
        "Reading: as the live-reducer count grows with work held constant per\n\
         reducer, the per-steal cost (one lazy view creation + insertion per\n\
         touched reducer, then a hypermerge over all of them) grows linearly and\n\
         the overhead share climbs — the scalability limit footnote 9 describes.\n\
         The memory-mapped mechanism's cheaper insertions and compact SPA sweeps\n\
         lower the curve but cannot change its slope."
    );
}
