//! Ablation: exchange-based vs copy-based view transferal (DESIGN.md §16)
//! — the threshold study behind `DEFAULT_EXCHANGE_THRESHOLD`.
//!
//! PR 9 adds a second transferal strategy next to §7's copying: when a
//! private page is dense enough, detach *exchanges* the page — the
//! occupied descriptor leaves the region and a zeroed replacement is
//! remapped in its place — so the cost is O(pages) in kernel crossings
//! instead of O(views) in pointer copies. This harness measures a full
//! detach + attach roundtrip under both strategies over the actual
//! `cilkm-tlmm` + `cilkm-spa` substrates, sweeping the number of live
//! views on the page and the simulated kernel-crossing latency:
//!
//! * **copy** — two bulk `drain_into` moves (private → public map on
//!   detach, public → private on attach). Zero crossings; cost grows
//!   with the view count.
//! * **exchange** — two scattered `sys_pmap`s (replacement in on detach,
//!   original back in on attach), replacement page prewarmed (the
//!   backend's idle-episode `free_pages` refill). Crossing-bound; cost
//!   independent of the view count.
//! * **exchange (cold)** — same, plus a batched `sys_palloc` + `pfree`
//!   per roundtrip: the worst case where no prewarmed page is ready and
//!   the allocation lands on the detach critical path.
//! * **exchange (batched, 16 pages)** — the regime the backend actually
//!   runs in: `detach` queues every dense page and exchanges them all
//!   through *one* `pmap_scatter` (§4: one call = one crossing no
//!   matter how many pages it carries), so the crossing cost amortizes
//!   across the batch. Reported per page.
//!
//! The crossover (smallest view count where batched exchange beats copy
//! per page) is what `CILKM_EXCHANGE_THRESHOLD` ablates in vivo; the
//! committed default (8) sits at the measured crossover for the ~1 µs
//! crossing-cost band the paper's Table 2 implies. The single-page
//! columns show why the threshold exists at all: an *unbatched*
//! exchange loses to copy at any density, because two crossings buy a
//! lot of pointer moves.
//!
//! The substrate sweep above deliberately isolates the *move* cost; the
//! second half of the run is the **in-vivo threshold sweep** — the
//! contended transferal_p99 workload (8 oversubscribed workers, 4096
//! reducers, steal-dense regions) re-run at `K ∈ {1, 4, 8, 16, 64, ∞}`.
//! In vivo the copy path also pays public-map pool traffic (take /
//! recycle through the shared domain under contention) and copies
//! *cold* pages another thread just wrote, so its crossover sits far
//! below the cache-hot substrate number; this sweep is what the
//! committed `DEFAULT_EXCHANGE_THRESHOLD` is actually read off.
//!
//! Env: CILKM_ABLATION_ITERS (default 2000 roundtrips per point),
//! CILKM_ABLATION_ROUNDS (default 100 regions per in-vivo point),
//! crossing costs swept over {0ns, 300ns, 1000ns, 3000ns}.

use std::sync::Arc;
use std::time::Instant;

use cilkm_bench::output::{write_bench_json, Table};
use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::parallel_for;
use cilkm_spa::{SpaMapBox, SpaMapRef, ViewPair, VIEWS_PER_MAP};
use cilkm_tlmm::{stats, PageArena, PageDesc, TlmmRegion};

fn fake_pair(tag: usize) -> ViewPair {
    ViewPair {
        view: (0x10_0000 + tag * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

/// One copy-strategy roundtrip: detach (private → public), merger scan,
/// attach (public → private). Ends with the views back in `private`.
fn copy_round(private: SpaMapRef, public: SpaMapRef, nviews: usize) {
    private.drain_into(public);
    let mut seen = 0;
    public.for_each_valid(|_, _| seen += 1);
    debug_assert_eq!(seen, nviews);
    public.drain_into(private);
}

/// One exchange-strategy roundtrip: detach swaps the prewarmed `spare`
/// in for the occupied page (one scattered `sys_pmap`), the merger reads
/// the detached page in place through its descriptor, attach swaps the
/// original back (second scattered `sys_pmap`). The views never move.
fn exchange_round(
    region: &mut TlmmRegion,
    arena: &PageArena,
    occupied: PageDesc,
    spare: PageDesc,
    nviews: usize,
) {
    region.pmap_scatter(&[(0, spare)]);
    // SAFETY: `occupied` stays a live arena page while unmapped (§4:
    // descriptors are process-wide); only this thread touches it.
    let detached = unsafe { SpaMapRef::from_raw(arena.page_base(occupied)) };
    let mut seen = 0;
    detached.for_each_valid(|_, _| seen += 1);
    debug_assert_eq!(seen, nviews);
    region.pmap_scatter(&[(0, occupied)]);
}

/// One *batched* exchange roundtrip over `occupied.len()` pages: all the
/// spares swap in through a single scattered `sys_pmap` (one crossing
/// for the whole set, §4), the merger reads every detached page in
/// place, and a second scatter swaps the originals back.
fn exchange_round_batched(
    region: &mut TlmmRegion,
    arena: &PageArena,
    occupied: &[PageDesc],
    spares: &[PageDesc],
    nviews: usize,
    plan: &mut Vec<(usize, PageDesc)>,
) {
    plan.clear();
    plan.extend(spares.iter().enumerate().map(|(s, &pd)| (s, pd)));
    region.pmap_scatter(plan);
    for &pd in occupied {
        // SAFETY: arena pages stay live while unmapped (§4 process-wide
        // descriptors); only this thread touches them.
        let detached = unsafe { SpaMapRef::from_raw(arena.page_base(pd)) };
        let mut seen = 0;
        detached.for_each_valid(|_, _| seen += 1);
        debug_assert_eq!(seen, nviews);
    }
    plan.clear();
    plan.extend(occupied.iter().enumerate().map(|(s, &pd)| (s, pd)));
    region.pmap_scatter(plan);
}

/// Opaque per-iteration work (~a microsecond), same shape as the
/// transferal_p99 gate: keeps regions alive across scheduling quanta so
/// oversubscribed thieves actually steal.
#[inline(never)]
fn spin_work(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_add(std::hint::black_box(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    std::hint::black_box(acc)
}

struct InVivo {
    wall_p50: u64,
    wall_p99: u64,
    wall_mean: f64,
    copied_views: u64,
    exchanged_pages: u64,
    transferals: u64,
}

/// One in-vivo point: the contended transferal_p99 workload at a fixed
/// exchange threshold. `usize::MAX` is the pure §7 copy path.
fn invivo_point(threshold: usize, workers: usize, rounds: usize) -> InVivo {
    let n = 4096usize;
    let pool = ReducerPool::new(workers, Backend::Mmap);
    pool.domain().set_exchange_threshold(threshold);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..n)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    // Short warm-up so pool spin-up and first-touch faults stay off the
    // measured tail.
    for _ in 0..rounds / 10 + 1 {
        pool.run(|| {
            parallel_for(0..n, 2, &|range| {
                for i in range {
                    reducers[i % n].add(1);
                    spin_work(250);
                }
            });
        });
    }
    let hist0 = pool.overhead_histograms();
    let ins0 = pool.instrument();
    for _ in 0..rounds {
        pool.run(|| {
            parallel_for(0..n, 2, &|range| {
                for i in range {
                    reducers[i % n].add(1);
                    spin_work(250);
                }
            });
        });
    }
    let wall = pool
        .overhead_histograms()
        .transferal_fine
        .since(&hist0.transferal_fine);
    let ins = pool.instrument().since(&ins0);
    InVivo {
        wall_p50: wall.quantile_upper_bound(0.50),
        wall_p99: wall.quantile_upper_bound(0.99),
        wall_mean: wall.mean(),
        copied_views: ins.transferal_copied_views,
        exchanged_pages: ins.transferal_exchanged_pages,
        transferals: ins.transferals,
    }
}

fn main() {
    let iters: usize = std::env::var("CILKM_ABLATION_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    let arena = Arc::new(PageArena::new());
    let mut region = TlmmRegion::new(Arc::clone(&arena));
    let occupied = arena.palloc();
    let spare = arena.palloc();
    region.pmap(0, &[occupied]);
    // SAFETY: `occupied` is a freshly `palloc`ed zeroed page mapped at
    // slot 0; an all-zero page is a valid empty SPA map, and only this
    // thread accesses it.
    let private = unsafe { SpaMapRef::from_raw(region.page_base(0)) };
    let public_b = SpaMapBox::new();
    let public = public_b.as_ref();

    // Batched-exchange fixture: BATCH occupied pages mapped at slots
    // 0..BATCH of their own region, plus BATCH prewarmed spares, so one
    // `pmap_scatter` carries the whole set (the shape `detach` emits).
    const BATCH: usize = 16;
    let mut batch_region = TlmmRegion::new(Arc::clone(&arena));
    let occupied_batch: Vec<PageDesc> = (0..BATCH).map(|_| arena.palloc()).collect();
    let spares_batch: Vec<PageDesc> = (0..BATCH).map(|_| arena.palloc()).collect();
    batch_region.pmap(0, &occupied_batch);
    let mut plan: Vec<(usize, PageDesc)> = Vec::with_capacity(BATCH);

    let view_counts = [1usize, 2, 4, 6, 8, 12, 16, 32, 64, 128, 248];
    let crossing_costs = [0u64, 300, 1000, 3000];

    let mut t = Table::new(
        &format!(
            "Ablation — exchange vs copy transferal (§16), ns per detach+attach roundtrip, \
             {iters} iters/point"
        ),
        &[
            "views",
            "copy",
            "xchg@0ns",
            "xchg@300ns",
            "xchg@1us",
            "xchg@3us",
            "cold@1us",
            "b16@1us/pg",
            "winner@1us",
        ],
    );
    let mut json: Vec<(String, String)> = Vec::new();
    let mut crossover: Option<usize> = None;

    for &nv in &view_counts {
        for i in 0..nv {
            private.insert(i % VIEWS_PER_MAP, fake_pair(i));
        }

        // Copy strategy: no crossings, cost is the two bulk moves.
        stats::set_crossing_cost_ns(0);
        let t0 = Instant::now();
        for _ in 0..iters {
            copy_round(private, public, nv);
        }
        let copy_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        // Exchange strategy at each simulated syscall latency, with the
        // replacement page prewarmed (the backend's idle-episode refill).
        let mut xchg_ns = Vec::new();
        for &cost in &crossing_costs {
            stats::set_crossing_cost_ns(cost);
            let t0 = Instant::now();
            for _ in 0..iters {
                exchange_round(&mut region, &arena, occupied, spare, nv);
            }
            xchg_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }

        // Cold exchange at 1 µs: the replacement allocation (one batched
        // `sys_palloc`) lands on the critical path, plus the free.
        stats::set_crossing_cost_ns(1000);
        let mut repl: Vec<PageDesc> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..iters {
            arena.palloc_batch(1, &mut repl);
            exchange_round(&mut region, &arena, occupied, spare, nv);
            arena.pfree(repl.pop().unwrap());
        }
        let cold_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        // Batched exchange at 1 µs: one scatter carries all BATCH pages,
        // so the crossing cost is paid once per roundtrip leg and
        // amortizes to cost/BATCH per page. Reported per page so it is
        // directly comparable with the copy column.
        let batch_iters = iters / BATCH + 1;
        for &pd in &occupied_batch {
            // SAFETY: freshly palloc'ed (or clear_all'ed) arena pages;
            // an all-zero page is a valid empty SPA map.
            let m = unsafe { SpaMapRef::from_raw(arena.page_base(pd)) };
            for i in 0..nv {
                m.insert(i % VIEWS_PER_MAP, fake_pair(i));
            }
        }
        stats::set_crossing_cost_ns(1000);
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            exchange_round_batched(
                &mut batch_region,
                &arena,
                &occupied_batch,
                &spares_batch,
                nv,
                &mut plan,
            );
        }
        let b16_ns = t0.elapsed().as_nanos() as f64 / (batch_iters * BATCH) as f64;
        stats::set_crossing_cost_ns(0);
        for &pd in &occupied_batch {
            // SAFETY: same pages as above, mapped back by the final
            // scatter of the last roundtrip.
            unsafe { SpaMapRef::from_raw(arena.page_base(pd)) }.clear_all();
        }

        private.clear_all();

        let winner = if b16_ns < copy_ns { "exchange" } else { "copy" };
        if crossover.is_none() && b16_ns < copy_ns {
            crossover = Some(nv);
        }
        t.row(&[
            nv.to_string(),
            format!("{copy_ns:.0}"),
            format!("{:.0}", xchg_ns[0]),
            format!("{:.0}", xchg_ns[1]),
            format!("{:.0}", xchg_ns[2]),
            format!("{:.0}", xchg_ns[3]),
            format!("{cold_ns:.0}"),
            format!("{b16_ns:.0}"),
            winner.into(),
        ]);
        json.push((format!("copy_v{nv}_ns"), format!("{copy_ns:.0}")));
        json.push((format!("exchange_v{nv}_ns"), format!("{:.0}", xchg_ns[2])));
        json.push((format!("exchange_cold_v{nv}_ns"), format!("{cold_ns:.0}")));
        json.push((format!("exchange_b16_v{nv}_ns"), format!("{b16_ns:.0}")));
    }
    t.emit("ablation_exchange");

    // In-vivo threshold sweep: same workload as the transferal_p99 gate.
    let rounds: usize = std::env::var("CILKM_ABLATION_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let workers = cilkm_bench::env_workers(8);
    let mut tv = Table::new(
        &format!(
            "In-vivo threshold sweep — contended transferal at K, \
             {workers} workers, 4096 reducers, {rounds} regions/point"
        ),
        &[
            "K",
            "transferals",
            "copied views",
            "xchg pages",
            "wall p50",
            "wall p99",
            "wall mean",
        ],
    );
    for &k in &[1usize, 4, 8, 16, 64, usize::MAX] {
        let m = invivo_point(k, workers, rounds);
        let klabel = if k == usize::MAX {
            "copy-only".to_string()
        } else {
            k.to_string()
        };
        tv.row(&[
            klabel.clone(),
            m.transferals.to_string(),
            m.copied_views.to_string(),
            m.exchanged_pages.to_string(),
            format!("{}ns", m.wall_p50),
            format!("{}ns", m.wall_p99),
            format!("{:.0}ns", m.wall_mean),
        ]);
        // Deliberately ungated keys (no `_ns` suffix): single 100-region
        // points on an oversubscribed host are too noisy for a 300%
        // trend gate; the trajectory-gated numbers live in
        // BENCH_transferal.json. These ride along as description.
        json.push((format!("invivo_p99_at_k_{klabel}"), m.wall_p99.to_string()));
        json.push((
            format!("invivo_mean_at_k_{klabel}"),
            format!("{:.0}", m.wall_mean),
        ));
    }
    tv.emit("ablation_exchange_invivo");

    json.push((
        "crossover_views_batched_at_1us".into(),
        crossover.map_or_else(|| "null".into(), |v| v.to_string()),
    ));
    json.push(("default_threshold".into(), "8".into()));
    write_bench_json("ablation_exchange", &json);

    let snap = arena.crossings().snapshot();
    println!(
        "total simulated kernel crossings this run: {}",
        snap.total_crossings()
    );
    match crossover {
        Some(v) => println!(
            "\ncrossover at 1 µs crossings, 16-page batches: exchange wins \
             from {v} views/page (committed default threshold: 8)"
        ),
        None => {
            println!("\ncopy won per page at every view count at 1 µs crossings (16-page batches)")
        }
    }
}
