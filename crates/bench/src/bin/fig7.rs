//! Regenerates Figure 7: the reduce overhead (view creation + insertion +
//! transferal + hypermerge) during parallel execution, per backend, and
//! emits the stable-schema `BENCH_fig7.json` perf-trajectory point.
//!
//! Env: CILKM_BENCH_SCALE, CILKM_BENCH_WORKERS.

use cilkm_bench::output::write_bench_json;

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig7: scale divisor = {}, workers = {}\n",
        opts.scale, opts.workers
    );
    let rows = cilkm_bench::figures::fig7(opts);

    let mut json: Vec<(String, String)> = Vec::new();
    json.push(("workers".into(), opts.workers.to_string()));
    for r in &rows {
        json.push((
            format!("add{}_mmap_overhead_ns", r.n),
            format!("{:.0}", r.cilk_m_us * 1e3),
        ));
        json.push((
            format!("add{}_hypermap_overhead_ns", r.n),
            format!("{:.0}", r.cilk_plus_us * 1e3),
        ));
        // Steals ride along as workload description (not gated): the
        // overheads above only mean anything relative to how many
        // steals the schedule actually produced.
        json.push((
            format!("add{}_mmap_steals", r.n),
            r.cilk_m_steals.to_string(),
        ));
        json.push((
            format!("add{}_hypermap_steals", r.n),
            r.cilk_plus_steals.to_string(),
        ));
    }
    write_bench_json("fig7", &json);
}
