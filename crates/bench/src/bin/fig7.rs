//! Regenerates Figure 7: the reduce overhead (view creation + insertion +
//! transferal + hypermerge) during parallel execution, per backend.
//!
//! Env: CILKM_BENCH_SCALE, CILKM_BENCH_WORKERS.

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig7: scale divisor = {}, workers = {}\n",
        opts.scale, opts.workers
    );
    cilkm_bench::figures::fig7(opts);
}
