//! `cilkm-trend` — perf-trajectory regression gate over `bench_out`.
//!
//! ```sh
//! # compare two artifact directories (committed baseline vs fresh run)
//! cargo run --release --bin cilkm-trend -- --tolerance-pct 300 /tmp/baseline bench_out
//! # or two individual files
//! cargo run --release --bin cilkm-trend -- bench_out/BENCH_lookup.json /tmp/BENCH_lookup.json
//! ```
//!
//! Reads the committed `BENCH_*.json` perf-trajectory points (and the
//! model checker's `exploration_stats.json`) from the baseline, the same
//! artifacts from the current run, and exits nonzero if any metric got
//! worse than the baseline beyond the tolerance (`--tolerance-pct`,
//! default 25). Model-check verdict flips (`pass` → `fail`) are flagged
//! at any tolerance. Artifacts present on only one side are listed but
//! do not fail the gate — benchmarks come and go across commits, and
//! that belongs in review, not in an exit code.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cilkm_bench::trend;

fn usage() -> ExitCode {
    eprintln!("usage: cilkm-trend [--tolerance-pct N] <baseline dir|file> <current dir|file>");
    eprintln!("       cilkm-trend --history N [--tolerance-pct T] [<artifact dir>]");
    eprintln!("  compares BENCH_*.json / exploration_stats.json artifacts;");
    eprintln!("  exits 1 when any metric regressed past the tolerance (default 25%).");
    eprintln!("  --history walks the last N commits touching the artifact dir");
    eprintln!("  (default bench_out) via git and flags sustained drift — metrics");
    eprintln!("  that crept past the tolerance across the window even though no");
    eprintln!("  single commit tripped the pairwise gate");
    ExitCode::from(2)
}

/// The last `n` commits (oldest → newest) that touched `dir`, via
/// `git rev-list`.
fn history_revs(dir: &Path, n: usize) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .args(["rev-list", "-n", &n.to_string(), "HEAD", "--"])
        .arg(dir)
        .output()
        .map_err(|e| format!("running git rev-list: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git rev-list failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let mut revs: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect();
    revs.reverse(); // rev-list emits newest first; the fit wants oldest first
    Ok(revs)
}

/// One artifact's content at one commit (`git show rev:path`), or `None`
/// if the file did not exist there yet.
fn show_at(rev: &str, path: &Path) -> Option<String> {
    let spec = format!("{rev}:{}", path.display());
    let out = std::process::Command::new("git")
        .args(["show", &spec])
        .output()
        .ok()?;
    if out.status.success() {
        Some(String::from_utf8_lossy(&out.stdout).into_owned())
    } else {
        None
    }
}

/// `--history N` mode: fit trend slopes over the last `n` committed
/// generations of every artifact under `dir` and gate on sustained
/// drift. Artifacts with fewer than three committed generations are
/// skipped — a step is not a trend.
fn run_history(dir: &Path, n: usize, tolerance_pct: f64) -> ExitCode {
    let revs = match history_revs(dir, n) {
        Ok(revs) => revs,
        Err(e) => {
            eprintln!("cilkm-trend: {e}");
            return ExitCode::from(2);
        }
    };
    if revs.len() < 3 {
        println!(
            "OK   history: only {} commit(s) touch {} — nothing to fit",
            revs.len(),
            dir.display()
        );
        return ExitCode::SUCCESS;
    }
    let mut drifted = false;
    let mut fitted = 0usize;
    for artifact in artifacts(dir) {
        let name = artifact
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        let history: Vec<trend::Metrics> = revs
            .iter()
            .filter_map(|rev| show_at(rev, &artifact))
            .map(|text| trend::extract(&text))
            .filter(|m| !m.is_empty())
            .collect();
        if history.len() < 3 {
            println!(
                "SKIP {name}: {} committed generation(s), need 3 for a slope",
                history.len()
            );
            continue;
        }
        let drifts = trend::drift(&history, tolerance_pct);
        fitted += 1;
        if drifts.is_empty() {
            println!(
                "OK   {name}: no sustained drift over {} generations (tolerance {tolerance_pct}%)",
                history.len()
            );
        } else {
            print!("{}", trend::render_drift(&name, &drifts));
            drifted = true;
        }
    }
    if fitted == 0 {
        eprintln!("cilkm-trend: no artifact has enough committed history to fit");
        return ExitCode::from(2);
    }
    if drifted {
        eprintln!("cilkm-trend: sustained perf drift (see DRIFT lines above)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The artifact files a directory contributes to the comparison.
fn artifacts(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            (name.starts_with("BENCH_") || name == "exploration_stats.json")
                && name.ends_with(".json")
        })
        .collect();
    out.sort();
    out
}

/// Pairs up baseline and current artifacts by file name.
fn pair_up(baseline: &Path, current: &Path) -> Vec<(String, PathBuf, PathBuf)> {
    if baseline.is_file() || current.is_file() {
        let name = current
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        return vec![(name, baseline.to_path_buf(), current.to_path_buf())];
    }
    artifacts(baseline)
        .into_iter()
        .map(|b| {
            let name = b.file_name().unwrap().to_string_lossy().into_owned();
            let c = current.join(&name);
            (name, b, c)
        })
        .collect()
}

fn main() -> ExitCode {
    let mut tolerance_pct = 25.0f64;
    let mut history: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return usage(),
            "--tolerance-pct" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance_pct = t,
                _ => return usage(),
            },
            "--history" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 3 => history = Some(n),
                _ => return usage(),
            },
            _ => positional.push(a),
        }
    }
    if let Some(n) = history {
        let dir = match positional.as_slice() {
            [] => Path::new("bench_out"),
            [dir] => Path::new(dir),
            _ => return usage(),
        };
        return run_history(dir, n, tolerance_pct);
    }
    let [baseline, current] = positional.as_slice() else {
        return usage();
    };
    let (baseline, current) = (Path::new(baseline), Path::new(current));

    let pairs = pair_up(baseline, current);
    if pairs.is_empty() {
        eprintln!(
            "cilkm-trend: no BENCH_*.json / exploration_stats.json artifacts under {}",
            baseline.display()
        );
        return ExitCode::from(2);
    }

    let mut regressed = false;
    let mut compared = 0usize;
    for (name, base_path, cur_path) in pairs {
        let Ok(base_text) = std::fs::read_to_string(&base_path) else {
            eprintln!("cilkm-trend: cannot read baseline {}", base_path.display());
            continue;
        };
        let Ok(cur_text) = std::fs::read_to_string(&cur_path) else {
            println!("SKIP {name}: not present in current run");
            continue;
        };
        let base = trend::extract(&base_text);
        let cur = trend::extract(&cur_text);
        if base.is_empty() {
            println!("SKIP {name}: no comparable metrics in baseline");
            continue;
        }
        let mut missing = Vec::new();
        let regressions = trend::compare(&base, &cur, tolerance_pct, &mut missing);
        compared += 1;
        for key in &missing {
            println!("NOTE {name}: metric {key} missing from current run");
        }
        if regressions.is_empty() {
            println!(
                "OK   {name}: {} metrics within {tolerance_pct}% of baseline",
                base.len() - missing.len()
            );
        } else {
            print!("{}", trend::render(&name, &regressions));
            regressed = true;
        }
    }
    if compared == 0 {
        eprintln!("cilkm-trend: nothing compared");
        return ExitCode::from(2);
    }
    if regressed {
        eprintln!("cilkm-trend: perf trajectory regressed (see REGRESSION lines above)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
