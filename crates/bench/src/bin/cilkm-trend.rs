//! `cilkm-trend` — perf-trajectory regression gate over `bench_out`.
//!
//! ```sh
//! # compare two artifact directories (committed baseline vs fresh run)
//! cargo run --release --bin cilkm-trend -- --tolerance-pct 300 /tmp/baseline bench_out
//! # or two individual files
//! cargo run --release --bin cilkm-trend -- bench_out/BENCH_lookup.json /tmp/BENCH_lookup.json
//! ```
//!
//! Reads the committed `BENCH_*.json` perf-trajectory points (and the
//! model checker's `exploration_stats.json`) from the baseline, the same
//! artifacts from the current run, and exits nonzero if any metric got
//! worse than the baseline beyond the tolerance (`--tolerance-pct`,
//! default 25). Model-check verdict flips (`pass` → `fail`) are flagged
//! at any tolerance. Artifacts present on only one side are listed but
//! do not fail the gate — benchmarks come and go across commits, and
//! that belongs in review, not in an exit code.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cilkm_bench::trend;

fn usage() -> ExitCode {
    eprintln!("usage: cilkm-trend [--tolerance-pct N] <baseline dir|file> <current dir|file>");
    eprintln!("  compares BENCH_*.json / exploration_stats.json artifacts;");
    eprintln!("  exits 1 when any metric regressed past the tolerance (default 25%)");
    ExitCode::from(2)
}

/// The artifact files a directory contributes to the comparison.
fn artifacts(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            (name.starts_with("BENCH_") || name == "exploration_stats.json")
                && name.ends_with(".json")
        })
        .collect();
    out.sort();
    out
}

/// Pairs up baseline and current artifacts by file name.
fn pair_up(baseline: &Path, current: &Path) -> Vec<(String, PathBuf, PathBuf)> {
    if baseline.is_file() || current.is_file() {
        let name = current
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        return vec![(name, baseline.to_path_buf(), current.to_path_buf())];
    }
    artifacts(baseline)
        .into_iter()
        .map(|b| {
            let name = b.file_name().unwrap().to_string_lossy().into_owned();
            let c = current.join(&name);
            (name, b, c)
        })
        .collect()
}

fn main() -> ExitCode {
    let mut tolerance_pct = 25.0f64;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return usage(),
            "--tolerance-pct" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance_pct = t,
                _ => return usage(),
            },
            _ => positional.push(a),
        }
    }
    let [baseline, current] = positional.as_slice() else {
        return usage();
    };
    let (baseline, current) = (Path::new(baseline), Path::new(current));

    let pairs = pair_up(baseline, current);
    if pairs.is_empty() {
        eprintln!(
            "cilkm-trend: no BENCH_*.json / exploration_stats.json artifacts under {}",
            baseline.display()
        );
        return ExitCode::from(2);
    }

    let mut regressed = false;
    let mut compared = 0usize;
    for (name, base_path, cur_path) in pairs {
        let Ok(base_text) = std::fs::read_to_string(&base_path) else {
            eprintln!("cilkm-trend: cannot read baseline {}", base_path.display());
            continue;
        };
        let Ok(cur_text) = std::fs::read_to_string(&cur_path) else {
            println!("SKIP {name}: not present in current run");
            continue;
        };
        let base = trend::extract(&base_text);
        let cur = trend::extract(&cur_text);
        if base.is_empty() {
            println!("SKIP {name}: no comparable metrics in baseline");
            continue;
        }
        let mut missing = Vec::new();
        let regressions = trend::compare(&base, &cur, tolerance_pct, &mut missing);
        compared += 1;
        for key in &missing {
            println!("NOTE {name}: metric {key} missing from current run");
        }
        if regressions.is_empty() {
            println!(
                "OK   {name}: {} metrics within {tolerance_pct}% of baseline",
                base.len() - missing.len()
            );
        } else {
            print!("{}", trend::render(&name, &regressions));
            regressed = true;
        }
    }
    if compared == 0 {
        eprintln!("cilkm-trend: nothing compared");
        return ExitCode::from(2);
    }
    if regressed {
        eprintln!("cilkm-trend: perf trajectory regressed (see REGRESSION lines above)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
