//! `cilkm-trace` — summarize a recorded scheduler/reducer trace.
//!
//! ```sh
//! cargo run --release --bin cilkm-trace -- bench_out/pbfs_trace.json
//! cargo run --release --bin cilkm-trace -- bench_out/pbfs_trace_events.csv
//! ```
//!
//! Accepts either export format of `cilkm-obs` (Chrome `trace_event`
//! JSON, as written by `write_chrome_json`, or the lossless events CSV)
//! and prints the per-worker utilization / steal / merge-critical-path /
//! crossings-per-steal summary from `cilkm_obs::analyze`.

use std::process::ExitCode;

use cilkm_obs::export::{read_chrome_json, read_events_csv};
use cilkm_obs::{analyze, Trace};

fn parse(path: &str, text: &str) -> Result<Trace, String> {
    // Chrome traces start with the `traceEvents` envelope; anything else
    // is treated as the CSV format.
    if text.trim_start().starts_with('{') {
        read_chrome_json(text)
    } else {
        read_events_csv(text)
    }
    .map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: cilkm-trace <trace.json | events.csv>...");
        eprintln!("  summarizes traces recorded by a `trace`-enabled cilkm build");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match parse(path, &text) {
            Ok(trace) => {
                println!("# {path}");
                print!("{}", analyze::render(&analyze::summarize(&trace)));
                println!();
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
