//! `cilkm-trace` — summarize a recorded scheduler/reducer trace.
//!
//! ```sh
//! cargo run --release --bin cilkm-trace -- bench_out/pbfs_trace.json
//! cargo run --release --bin cilkm-trace -- --dag bench_out/pbfs_trace_events.csv
//! cargo run --release --bin cilkm-trace -- --dag --critical-path cp.json t.csv
//! ```
//!
//! Accepts either export format of `cilkm-obs` (Chrome `trace_event`
//! JSON, as written by `write_chrome_json`, or the lossless events CSV)
//! and prints the per-worker utilization / steal / merge-critical-path /
//! crossings-per-steal summary from `cilkm_obs::analyze`.
//!
//! With `--dag` it additionally rebuilds the series-parallel DAG
//! ([`cilkm_obs::dag`]) and prints work, span, parallelism, and the
//! top-K critical-path burden attribution; `--critical-path <file>`
//! re-exports the trace as Chrome JSON with the reconstructed critical
//! path as its own named track (open in Perfetto).

use std::process::ExitCode;

use cilkm_obs::export::{read_chrome_json, read_events_csv, write_chrome_json_with_path};
use cilkm_obs::{analyze, dag, Trace};

fn parse(path: &str, text: &str) -> Result<Trace, String> {
    // Chrome traces start with the `traceEvents` envelope; anything else
    // is treated as the CSV format.
    if text.trim_start().starts_with('{') {
        read_chrome_json(text)
    } else {
        read_events_csv(text)
    }
    .map_err(|e| format!("{path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!("usage: cilkm-trace [--dag] [--top K] [--critical-path <out.json>] <trace.json | events.csv>...");
    eprintln!("  summarizes traces recorded by a `trace`-enabled cilkm build");
    eprintln!("  --dag                rebuild the SP-DAG: work/span/parallelism + attribution");
    eprintln!("  --top K              attribution rows to print (default 10, implies --dag)");
    eprintln!("  --critical-path F    write Chrome JSON with the critical path as a named track");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut want_dag = false;
    let mut top_k = 10usize;
    let mut cp_out: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return usage(),
            "--dag" => want_dag = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) => {
                    top_k = k;
                    want_dag = true;
                }
                None => return usage(),
            },
            "--critical-path" => match args.next() {
                Some(f) => {
                    cp_out = Some(f);
                    want_dag = true;
                }
                None => return usage(),
            },
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        return usage();
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        match parse(path, &text) {
            Ok(trace) => {
                println!("# {path}");
                print!("{}", analyze::render(&analyze::summarize(&trace)));
                if want_dag {
                    let analysis = dag::build(&trace);
                    println!();
                    print!("{}", analysis.render(top_k));
                    if let Some(out) = &cp_out {
                        match std::fs::File::create(out).and_then(|mut f| {
                            write_chrome_json_with_path(&trace, &analysis.critical_path, &mut f)
                        }) {
                            Ok(()) => println!("critical path track written to {out}"),
                            Err(e) => {
                                eprintln!("error: cannot write {out}: {e}");
                                failed = true;
                            }
                        }
                    }
                }
                println!();
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
