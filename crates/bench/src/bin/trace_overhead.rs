//! CI gate: event tracing must be (nearly) free where it matters.
//!
//! ```sh
//! cargo run --release --features trace --bin trace_overhead
//! ```
//!
//! Runs the repeated-lookup microbenchmark (the Figure 1 tight loop,
//! one add-reducer on one worker — the hottest path in the system) with
//! tracing disabled and enabled, min-of-rounds, and **fails** if the
//! enabled run is more than 3% slower. The tracer deliberately emits no
//! event on the lookup fast path, so the only admissible cost is ambient
//! (cache pressure from other emit sites); this binary is the regression
//! fence for that design decision.
//!
//! Without the `trace` feature the two runs compile to identical code
//! (emit is a no-op); the comparison still runs and the absolute
//! ns/lookup printed is the number to check against the repeated-lookup
//! baseline (~2.25 ns on the reference host).

use std::process::ExitCode;
use std::time::Duration;

use cilkm_bench::micro::run_add_tight;
use cilkm_core::Backend;
use cilkm_obs::trace;

const ROUNDS: usize = 7;
const LOOKUPS: u64 = 1 << 25;

/// Minimum over `ROUNDS` runs with tracing forced to `on`.
fn min_ns_per_lookup(on: bool) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..ROUNDS {
        trace::set_enabled(on);
        let d = run_add_tight(Backend::Mmap, 1, LOOKUPS);
        trace::set_enabled(false);
        best = best.min(d);
    }
    best.as_nanos() as f64 / LOOKUPS as f64
}

fn main() -> ExitCode {
    let max_pct: f64 = std::env::var("CILKM_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    println!(
        "trace feature compiled: {} (emit is {} on the lookup path)",
        trace::compiled(),
        if trace::compiled() {
            "one relaxed load when disabled, nothing when enabled"
        } else {
            "a no-op"
        }
    );

    // One throwaway warm-up round so neither arm pays first-touch costs.
    let _ = run_add_tight(Backend::Mmap, 1, LOOKUPS / 4);

    let off = min_ns_per_lookup(false);
    let on = min_ns_per_lookup(true);
    let pct = (on - off) / off * 100.0;
    println!("untraced: {off:.3} ns/lookup (min of {ROUNDS} x {LOOKUPS} lookups)");
    println!("traced:   {on:.3} ns/lookup");
    println!("overhead: {pct:+.2}% (gate: <{max_pct}%)");

    if pct >= max_pct {
        eprintln!("FAIL: tracing adds {pct:.2}% to the repeated-lookup hot path");
        return ExitCode::FAILURE;
    }
    println!("PASS");
    ExitCode::SUCCESS
}
