//! Regenerates Figure 5(a) and 5(b): microbenchmark execution times with
//! varying numbers of reducers, serial and parallel, and emits the
//! stable-schema `BENCH_fig5.json` perf-trajectory point over both.
//!
//! Env: CILKM_BENCH_SCALE (iteration divisor), CILKM_BENCH_WORKERS
//! (parallel worker count, default 16).

use cilkm_bench::output::write_bench_json;

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig5: scale divisor = {}, workers = {}\n",
        opts.scale, opts.workers
    );
    let serial = cilkm_bench::figures::fig5(opts, 1);
    let parallel = cilkm_bench::figures::fig5(opts, opts.workers);

    let mut json: Vec<(String, String)> = Vec::new();
    for (workers, rows) in [(1, &serial), (opts.workers, &parallel)] {
        for r in rows {
            json.push((
                format!("{}{}_w{workers}_mmap_ns", r.bench, r.n),
                r.cilk_m.as_nanos().to_string(),
            ));
            json.push((
                format!("{}{}_w{workers}_hypermap_ns", r.bench, r.n),
                r.cilk_plus.as_nanos().to_string(),
            ));
        }
    }
    write_bench_json("fig5", &json);
}
