//! Regenerates Figure 5(a) and 5(b): microbenchmark execution times with
//! varying numbers of reducers, serial and parallel.
//!
//! Env: CILKM_BENCH_SCALE (iteration divisor), CILKM_BENCH_WORKERS
//! (parallel worker count, default 16).

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig5: scale divisor = {}, workers = {}\n",
        opts.scale, opts.workers
    );
    cilkm_bench::figures::fig5(opts, 1);
    cilkm_bench::figures::fig5(opts, opts.workers);
}
