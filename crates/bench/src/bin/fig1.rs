//! Regenerates Figure 1: normalized overhead of L1 access, memory-mapped
//! reducers, hypermap reducers, and locking.
//!
//! Env: CILKM_BENCH_SCALE (iteration divisor, default 256).

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!("fig1: scale divisor = {}\n", opts.scale);
    cilkm_bench::figures::fig1(opts);
}
