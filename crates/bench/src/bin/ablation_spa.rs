//! Ablation: the SPA map's 2:1 view-to-log ratio and log-overflow
//! fallback (§6).
//!
//! The SPA map keeps a 120-entry log of occupied indices so sequencing
//! (view transferal, hypermerge sweeps) visits only live entries; once
//! insertions outnumber the log, it stops logging and sequencing scans
//! the whole 248-entry view array. The paper's rationale: "if the number
//! of logs in a SPA map exceeds the length of its log array, the cost of
//! sequencing through the entire view array ... can be amortized against
//! the cost of inserting views into the SPA map."
//!
//! This harness measures drain (sequence + zero) cost under three
//! policies, across occupancies:
//!
//! * **logged** — the real policy (log-directed below 120, scan above);
//! * **always-scan** — as if LOG_CAPACITY were 0 (no log maintained);
//! * **per-insert cost** — what insertion pays for the log (the other
//!   side of the trade).
//!
//! Env: CILKM_ABLATION_ITERS (default 20000 drains per point).

use std::time::Instant;

use cilkm_bench::output::Table;
use cilkm_spa::{SpaMapBox, SpaMapRef, ViewPair, VIEWS_PER_MAP};

fn fake_pair(tag: usize) -> ViewPair {
    ViewPair {
        view: (0x10_0000 + tag * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

fn fill(m: SpaMapRef, n: usize, stride: usize) {
    // Spread entries across the view array like real slot allocation.
    for i in 0..n {
        m.insert((i * stride + i) % VIEWS_PER_MAP, fake_pair(i));
    }
}

fn main() {
    let iters: usize = std::env::var("CILKM_ABLATION_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    let occupancies = [1usize, 2, 4, 8, 16, 32, 64, 119, 121, 180, 248];
    let b = SpaMapBox::new();
    let m = b.as_ref();

    let mut t = Table::new(
        &format!("Ablation — SPA log policy (§6), ns per operation, {iters} iters/point"),
        &[
            "views",
            "drain (logged)",
            "drain (scan-all)",
            "insert (logged)",
            "log overflowed?",
        ],
    );

    for &n in &occupancies {
        // Policy A: real behavior (log below capacity, overflow above).
        let t0 = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iters {
            fill(m, n, 7);
            m.drain(|_, _| sink += 1);
        }
        let logged_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        let overflowed = n > 120;

        // Policy B: force scan-everything regardless of occupancy.
        let t0 = Instant::now();
        for _ in 0..iters {
            fill(m, n, 7);
            m.force_log_overflow();
            m.drain(|_, _| sink += 1);
        }
        let scan_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        // Insert cost under logging (amortized per element).
        let t0 = Instant::now();
        for _ in 0..iters / 4 {
            fill(m, n, 7);
            m.clear_all();
        }
        let insert_ns = t0.elapsed().as_nanos() as f64 / (iters / 4) as f64 / n as f64;

        std::hint::black_box(sink);
        t.row(&[
            n.to_string(),
            format!("{logged_ns:.0}"),
            format!("{scan_ns:.0}"),
            format!("{insert_ns:.1}"),
            if overflowed { "yes" } else { "no" }.into(),
        ]);
    }
    t.emit("ablation_spa");

    println!(
        "Reading: log-directed draining beats scanning by a large factor at low\n\
         occupancy (the common case: few reducers live per steal) and converges to\n\
         it as the map fills — once past 120 entries the policies coincide, and the\n\
         scan's fixed 248-entry cost is amortized by the >120 insertions that\n\
         caused the overflow. This is the paper's 2:1 ratio rationale, quantified."
    );
}
