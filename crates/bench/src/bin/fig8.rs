//! Regenerates Figure 8: the breakdown of Cilk-M's reduce overhead into
//! view creation, view insertion, hypermerge, and view transferal.
//! (Re-runs the Figure 7 measurements to obtain the instrumentation.)
//!
//! Env: CILKM_BENCH_SCALE, CILKM_BENCH_WORKERS.

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!(
        "fig8: scale divisor = {}, workers = {}\n",
        opts.scale, opts.workers
    );
    let rows = cilkm_bench::figures::fig7(opts);
    cilkm_bench::figures::fig8(&rows);
}
