//! Regenerates Figure 6: reducer lookup overhead (add-n minus the
//! add-base-n control) on a single worker.
//!
//! Env: CILKM_BENCH_SCALE (iteration divisor, default 256).

fn main() {
    let opts = cilkm_bench::figures::FigureOpts::default();
    println!("fig6: scale divisor = {}\n", opts.scale);
    cilkm_bench::figures::fig6(opts);
}
