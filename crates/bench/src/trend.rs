//! Perf-trajectory trend checking: compare two generations of the
//! stable-schema `bench_out` artifacts and flag regressions.
//!
//! The repo commits machine-readable benchmark results —
//! `BENCH_<bin>.json` perf-trajectory points plus the model checker's
//! `exploration_stats.json` — precisely so that perf changes show up in
//! review as a diff. This module is the gating half: [`extract`] reduces
//! any of the three committed document shapes to flat `(key, value)`
//! metrics, and [`compare`] flags every metric that got *worse* than the
//! baseline beyond a tolerance. The `cilkm-trend` bin wires it into CI.
//!
//! Document shapes (all `schema_version` 1):
//!
//! * **results array** (`BENCH_lookup.json`, `BENCH_comparison.json`…):
//!   `{"results": [{"name": …, "median_ns": …}, …]}` — one metric per
//!   entry, keyed `<name>/median_ns`, lower is better;
//! * **flat document** (`BENCH_transferal.json`…): top-level
//!   `"key": number` pairs — time-like keys (`*_ns`, `*_pct`,
//!   `crossings_per_steal`) become metrics, lower is better; `gate_*`
//!   configuration knobs and workload descriptors are ignored;
//! * **exploration runs** (`exploration_stats.json`):
//!   `{"runs": [{"test": …, "engine": …, "verdict": …}, …]}` — the
//!   verdict becomes a 0/1 metric so a `pass` → `fail` flip is flagged
//!   at any tolerance.
//!
//! Parsing is the same line-oriented scanner the writers of these files
//! use (`cilkm-checker::stats`, the criterion shim): each entry is one
//! line, each flat field one line — not a general JSON parser, and it
//! does not need to be, because both sides of every comparison are our
//! own serializers' output.

use std::collections::BTreeMap;

/// One comparable number extracted from an artifact.
pub type Metrics = BTreeMap<String, f64>;

/// One flagged regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Metric key (`<result name>/median_ns`, `transferal_wall_p99_ns`,
    /// `pbfs::determinism@dpor/verdict`, …).
    pub key: String,
    /// Baseline (committed) value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The tolerance (percent) this metric was allowed to grow by.
    pub tolerance_pct: f64,
}

impl Regression {
    /// Relative growth in percent.
    pub fn growth_pct(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            (self.current - self.baseline) / self.baseline * 100.0
        }
    }
}

/// Extracts `"key":` followed by a string or bare scalar from a one-line
/// JSON object (the format all our artifact writers emit).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

/// True for flat-document keys that measure cost (lower is better), as
/// opposed to configuration knobs and workload descriptors.
fn is_cost_key(key: &str) -> bool {
    if key.starts_with("gate_") || key == "schema_version" {
        return false;
    }
    key.ends_with("_ns") || key.ends_with("_pct") || key == "crossings_per_steal"
}

/// Reduces one artifact document to flat comparable metrics. `name` is
/// only used in diagnostics; shape is sniffed from the content.
pub fn extract(text: &str) -> Metrics {
    let mut out = Metrics::new();
    if text.contains("\"results\":") {
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"name\":") {
                continue;
            }
            if let (Some(name), Some(median)) = (field(line, "name"), field(line, "median_ns")) {
                if let Ok(v) = median.parse::<f64>() {
                    out.insert(format!("{name}/median_ns"), v);
                }
            }
        }
    } else if text.contains("\"runs\":") {
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"test\":") {
                continue;
            }
            if let (Some(test), Some(engine), Some(verdict)) = (
                field(line, "test"),
                field(line, "engine"),
                field(line, "verdict"),
            ) {
                let v = if verdict == "pass" { 0.0 } else { 1.0 };
                out.insert(format!("{test}@{engine}/verdict"), v);
                // Schedule coverage rides along as a higher-is-better
                // metric: a big drop means the exploration got pruned
                // down (a dependence-relation bug can silently shrink
                // the searched space while every verdict stays green).
                if let Some(v) = field(line, "schedules").and_then(|v| v.parse::<f64>().ok()) {
                    out.insert(format!("{test}@{engine}/schedules"), v);
                }
            }
        }
    } else {
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, _)) = rest.split_once('"') else {
                continue;
            };
            if !is_cost_key(key) {
                continue;
            }
            if let Some(v) = field(line, key).and_then(|v| v.parse::<f64>().ok()) {
                out.insert(key.to_string(), v);
            }
        }
    }
    out
}

/// Compares current metrics against a baseline. A metric regresses when
/// it *grows* past `tolerance_pct` percent of the baseline (almost all
/// our metrics are lower-is-better); verdict metrics (0 = pass) use zero
/// tolerance so any new failure is flagged, and `/schedules` coverage
/// metrics invert — they regress when the explored-schedule count
/// *shrinks* by more than the tolerance. Metrics present on only one
/// side are reported through `missing` (benchmarks legitimately come and
/// go across commits; that is a review concern, not a gate failure).
pub fn compare(
    baseline: &Metrics,
    current: &Metrics,
    tolerance_pct: f64,
    missing: &mut Vec<String>,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (key, &base) in baseline {
        let Some(&cur) = current.get(key) else {
            missing.push(key.clone());
            continue;
        };
        let tol = if key.ends_with("/verdict") {
            0.0
        } else {
            tolerance_pct
        };
        let worse = if key.ends_with("/schedules") {
            cur < base * (1.0 - tol / 100.0) - f64::EPSILON
        } else {
            cur > base * (1.0 + tol / 100.0) + f64::EPSILON
        };
        if worse {
            out.push(Regression {
                key: key.clone(),
                baseline: base,
                current: cur,
                tolerance_pct: tol,
            });
        }
    }
    out
}

/// One sustained multi-commit drift: a metric that crept in the same
/// direction across a history window even though no single step tripped
/// the pairwise gate.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Metric key.
    pub key: String,
    /// Oldest value in the window.
    pub first: f64,
    /// Newest value in the window.
    pub last: f64,
    /// Fitted (least-squares) growth over the whole window, in percent
    /// of the fitted starting value. Positive = got slower / worse.
    pub fitted_total_pct: f64,
    /// Number of history points fitted.
    pub points: usize,
}

/// Flags sustained drift over a metric history. `history` is ordered
/// oldest → newest, one [`Metrics`] per committed generation; only keys
/// present in *every* point are considered (benchmarks come and go, and
/// a partial series has no meaningful slope). For each such key a
/// Theil–Sen line is fitted over (commit index, value) — slope = median
/// of all pairwise slopes, intercept = median of `yᵢ − slope·i` — and
/// the fitted end-to-end change, slope × (n−1) relative to the fitted
/// start, is compared against `tolerance_pct`. The robust fit, rather
/// than a raw `last/first` ratio (or least squares, whose leverage is
/// greatest exactly at the endpoints), keeps one noisy commit from
/// either masking or faking a trend.
///
/// This is the gap the pairwise gate cannot see: five commits each 4%
/// slower pass every 5%-tolerance step check but accumulate to ~22%;
/// here the window total is what gates. Cost metrics drift *up*,
/// `/schedules` coverage drifts *down* (mirroring [`compare`]), and
/// `/verdict` flips stay the pairwise gate's job — a verdict series is
/// a step function, not a slope.
pub fn drift(history: &[Metrics], tolerance_pct: f64) -> Vec<Drift> {
    let n = history.len();
    if n < 3 {
        return Vec::new(); // two points have a step, not a trend
    }
    let mut out = Vec::new();
    let Some(first) = history.first() else {
        return Vec::new();
    };
    for key in first.keys() {
        if key.ends_with("/verdict") {
            continue;
        }
        let series: Vec<f64> = history.iter().filter_map(|m| m.get(key).copied()).collect();
        if series.len() < n {
            continue;
        }
        // Theil–Sen: median pairwise slope, then median intercept.
        let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                slopes.push((series[j] - series[i]) / (j - i) as f64);
            }
        }
        let slope = median(&mut slopes);
        let mut intercepts: Vec<f64> = series
            .iter()
            .enumerate()
            .map(|(i, &y)| y - slope * i as f64)
            .collect();
        let start = median(&mut intercepts); // fitted value at x = 0
        if start.abs() < f64::EPSILON {
            continue;
        }
        let fitted_total_pct = slope * (n - 1) as f64 / start * 100.0;
        let worse = if key.ends_with("/schedules") {
            fitted_total_pct < -tolerance_pct
        } else {
            fitted_total_pct > tolerance_pct
        };
        if worse {
            out.push(Drift {
                key: key.clone(),
                first: series[0],
                last: series[n - 1],
                fitted_total_pct,
                points: n,
            });
        }
    }
    out
}

/// Median of a scratch slice (averages the middle pair for even
/// lengths). The slice is sorted in place.
fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Renders drifts as a report block (empty string when clean).
pub fn render_drift(file: &str, drifts: &[Drift]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for d in drifts {
        let _ = writeln!(
            s,
            "DRIFT {file}: {} {:.2} -> {:.2} over {} commits (fitted {:+.1}% end-to-end)",
            d.key, d.first, d.last, d.points, d.fitted_total_pct
        );
    }
    s
}

/// Renders regressions as a report block (empty string when clean).
pub fn render(file: &str, regressions: &[Regression]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in regressions {
        let _ = writeln!(
            s,
            "REGRESSION {file}: {} {:.2} -> {:.2} ({:+.1}%, tolerance {:.0}%)",
            r.key,
            r.baseline,
            r.current,
            r.growth_pct(),
            r.tolerance_pct
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const RESULTS_DOC: &str = r#"{
  "schema_version": 1,
  "bench": "lookup",
  "results": [
    {"name": "lookup/memory-mapped", "samples": 20, "iters_per_sample": 1000, "min_ns": 2.61, "median_ns": 2.73, "mean_ns": 2.75, "max_ns": 2.94},
    {"name": "lookup/hypermap", "samples": 20, "iters_per_sample": 1000, "min_ns": 4.36, "median_ns": 4.67, "mean_ns": 4.74, "max_ns": 5.51}
  ]
}
"#;

    const FLAT_DOC: &str = r#"{
  "schema_version": 1,
  "bench": "transferal_p99",
  "workers": 8,
  "steals": 665,
  "transferal_wall_p99_ns": 28672,
  "crossings_per_steal": 0.408,
  "lookup_ns": 2.587,
  "gate_p99_max_ns": 4000000
}
"#;

    const RUNS_DOC: &str = r#"{
  "schema_version": 1,
  "runs": [
    {"test":"obs::ring","engine":"dpor","verdict":"pass","complete":true,"schedules":24,"pruned":3,"dependence_classes":4,"max_depth":40},
    {"test":"tlmm::pmap","engine":"pct","verdict":"pass","complete":false,"schedules":64,"pruned":0,"dependence_classes":7,"max_depth":91}
  ]
}
"#;

    #[test]
    fn results_docs_extract_per_name_medians() {
        let m = extract(RESULTS_DOC);
        assert_eq!(m.len(), 2);
        assert_eq!(m["lookup/memory-mapped/median_ns"], 2.73);
        assert_eq!(m["lookup/hypermap/median_ns"], 4.67);
    }

    #[test]
    fn flat_docs_extract_cost_keys_only() {
        let m = extract(FLAT_DOC);
        // Time-like keys in; config (`gate_*`, `schema_version`) and
        // workload descriptors (`workers`, `steals`) out.
        assert_eq!(m.len(), 3);
        assert_eq!(m["transferal_wall_p99_ns"], 28672.0);
        assert_eq!(m["crossings_per_steal"], 0.408);
        assert_eq!(m["lookup_ns"], 2.587);
    }

    #[test]
    fn exploration_runs_extract_verdicts_and_schedule_coverage() {
        let m = extract(RUNS_DOC);
        assert_eq!(m.len(), 4);
        assert_eq!(m["obs::ring@dpor/verdict"], 0.0);
        assert_eq!(m["obs::ring@dpor/schedules"], 24.0);
        assert_eq!(m["tlmm::pmap@pct/schedules"], 64.0);
    }

    #[test]
    fn schedule_coverage_shrink_is_flagged_growth_is_not() {
        let base = extract(RUNS_DOC);
        // Coverage collapse (24 -> 6 schedules, -75%): flagged at 25%
        // tolerance, tolerated at 80%.
        let cur = extract(&RUNS_DOC.replace("\"schedules\":24", "\"schedules\":6"));
        let mut missing = Vec::new();
        let regs = compare(&base, &cur, 25.0, &mut missing);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "obs::ring@dpor/schedules");
        assert!((regs[0].growth_pct() + 75.0).abs() < 0.1);
        assert!(compare(&base, &cur, 80.0, &mut missing).is_empty());
        // Exploring *more* schedules is never a regression.
        let grown = extract(&RUNS_DOC.replace("\"schedules\":24", "\"schedules\":240"));
        assert!(compare(&base, &grown, 0.0, &mut missing).is_empty());
    }

    #[test]
    fn identical_history_is_clean() {
        for doc in [RESULTS_DOC, FLAT_DOC, RUNS_DOC] {
            let m = extract(doc);
            let mut missing = Vec::new();
            assert!(compare(&m, &m, 0.0, &mut missing).is_empty());
            assert!(missing.is_empty());
        }
    }

    #[test]
    fn synthetic_regression_is_flagged_and_tolerance_respected() {
        let base = extract(RESULTS_DOC);
        let cur = extract(&RESULTS_DOC.replace("\"median_ns\": 4.67", "\"median_ns\": 9.34"));
        let mut missing = Vec::new();
        // 100% growth: flagged at 50% tolerance…
        let regs = compare(&base, &cur, 50.0, &mut missing);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "lookup/hypermap/median_ns");
        assert!((regs[0].growth_pct() - 100.0).abs() < 0.1);
        // …tolerated at 150%.
        assert!(compare(&base, &cur, 150.0, &mut missing).is_empty());
    }

    #[test]
    fn improvements_never_flag() {
        let base = extract(FLAT_DOC);
        let cur = extract(&FLAT_DOC.replace("28672", "100"));
        let mut missing = Vec::new();
        assert!(compare(&base, &cur, 0.0, &mut missing).is_empty());
    }

    #[test]
    fn verdict_flip_is_flagged_at_any_tolerance() {
        let base = extract(RUNS_DOC);
        let cur = extract(&RUNS_DOC.replacen("\"verdict\":\"pass\"", "\"verdict\":\"fail\"", 1));
        let mut missing = Vec::new();
        let regs = compare(&base, &cur, 1_000_000.0, &mut missing);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].key.ends_with("/verdict"));
    }

    #[test]
    fn removed_metrics_report_as_missing_not_regressions() {
        let base = extract(RESULTS_DOC);
        let mut cur = base.clone();
        cur.remove("lookup/hypermap/median_ns");
        let mut missing = Vec::new();
        assert!(compare(&base, &cur, 10.0, &mut missing).is_empty());
        assert_eq!(missing, vec!["lookup/hypermap/median_ns".to_string()]);
    }

    /// A synthetic 5-commit series: `lookup_ns` creeps +4% per commit
    /// (each step under a 5% pairwise tolerance), `crossings_per_steal`
    /// stays flat, and the model's schedule coverage erodes.
    fn synthetic_history() -> Vec<Metrics> {
        (0..5)
            .map(|i| {
                let mut m = Metrics::new();
                m.insert("lookup_ns".into(), 2.50 * 1.04f64.powi(i));
                m.insert("crossings_per_steal".into(), 0.40);
                m.insert("obs::ring@dpor/schedules".into(), 24.0 * 0.96f64.powi(i));
                m.insert("obs::ring@dpor/verdict".into(), 0.0);
                m
            })
            .collect()
    }

    #[test]
    fn sustained_creep_below_step_tolerance_is_flagged() {
        let history = synthetic_history();
        // No adjacent pair trips the 5% pairwise gate…
        let mut missing = Vec::new();
        for w in history.windows(2) {
            assert!(compare(&w[0], &w[1], 5.0, &mut missing).is_empty());
        }
        // …but the window drift (≈ +17% fitted) exceeds a 10% budget.
        let drifts = drift(&history, 10.0);
        let keys: Vec<&str> = drifts.iter().map(|d| d.key.as_str()).collect();
        assert!(keys.contains(&"lookup_ns"), "{drifts:#?}");
        let d = drifts.iter().find(|d| d.key == "lookup_ns").unwrap();
        assert!(d.fitted_total_pct > 15.0 && d.fitted_total_pct < 20.0);
        assert_eq!(d.points, 5);
        // The flat metric never flags; coverage erosion (≈ −15% fitted)
        // flags in the shrinking direction; verdicts are not slopes.
        assert!(!keys.contains(&"crossings_per_steal"));
        assert!(keys.contains(&"obs::ring@dpor/schedules"));
        assert!(!keys.iter().any(|k| k.ends_with("/verdict")));
        // A generous budget tolerates the whole series.
        assert!(drift(&history, 40.0).is_empty());
    }

    #[test]
    fn drift_needs_a_full_series_and_three_points() {
        let mut history = synthetic_history();
        assert!(drift(&history[..2], 1.0).is_empty(), "2 points = a step");
        // A key missing from one generation drops out of the fit.
        history[2].remove("lookup_ns");
        assert!(drift(&history, 10.0).iter().all(|d| d.key != "lookup_ns"));
    }

    #[test]
    fn noisy_endpoint_does_not_fake_a_trend() {
        // Flat series with one last-commit spike: the pairwise gate's
        // job, not a drift (the Theil–Sen slope is zero, while a naive
        // last/first ratio — or least squares, with its endpoint
        // leverage — would scream a trend).
        let history: Vec<Metrics> = [10.0, 10.0, 10.0, 10.0, 15.0]
            .iter()
            .map(|&v| {
                let mut m = Metrics::new();
                m.insert("x_ns".into(), v);
                m
            })
            .collect();
        assert!(drift(&history, 20.0).is_empty());
    }

    #[test]
    fn render_drift_formats_window() {
        let d = Drift {
            key: "lookup_ns".into(),
            first: 2.5,
            last: 2.92,
            fitted_total_pct: 16.9,
            points: 5,
        };
        let s = render_drift("BENCH_lookup.json", &[d]);
        assert!(
            s.contains("DRIFT BENCH_lookup.json: lookup_ns 2.50 -> 2.92 over 5 commits"),
            "{s}"
        );
        assert!(s.contains("+16.9%"));
    }

    #[test]
    fn render_formats_growth() {
        let r = Regression {
            key: "x_ns".into(),
            baseline: 10.0,
            current: 20.0,
            tolerance_pct: 25.0,
        };
        let s = render("BENCH_x.json", &[r]);
        assert!(s.contains("REGRESSION BENCH_x.json: x_ns 10.00 -> 20.00 (+100.0%, tolerance 25%)"));
    }
}
