//! One function per table/figure of the paper's evaluation (§8), each
//! printing the same rows/series the paper reports and persisting CSVs.
//!
//! Absolute times will differ from the 2012 AMD Opteron testbed (and the
//! "16 processors" are oversubscribed workers on smaller hosts); the
//! reproduction targets are the *shapes*: who wins, by what factor, and
//! how gaps move with the number of reducers. `EXPERIMENTS.md` records
//! paper-vs-measured for every figure.

use std::time::Duration;

use cilkm_core::{Backend, InstrumentSnapshot, ReducerPool};
use cilkm_graph::{bfs_serial, gen, pbfs, UNREACHED};

use crate::micro::{self, MicroConfig};
use crate::output::{fmt_duration, Table};

/// Global options for a figure run.
#[derive(Copy, Clone, Debug)]
pub struct FigureOpts {
    /// Divisor applied to the paper's iteration counts.
    pub scale: f64,
    /// Worker count for the "16 processors" experiments.
    pub workers: usize,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            scale: crate::env_scale(256.0),
            workers: crate::env_workers(16),
        }
    }
}

fn scaled(base: u64, scale: f64) -> u64 {
    ((base as f64 / scale) as u64).max(100_000)
}

/// The paper's Figure 4 microbenchmark n values for Figure 5.
pub const FIG5_N: [usize; 5] = [4, 16, 64, 256, 1024];
/// The n sweep of Figures 6 and 7.
pub const FIG67_N: [usize; 9] = [4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Figure 1: normalized overhead of L1 access, memory-mapped reducer,
/// hypermap reducer, and locking — four locations, tight loop, one
/// worker.
pub struct Fig1Row {
    /// Category label as in the paper.
    pub label: &'static str,
    /// Nanoseconds per operation.
    pub ns_per_op: f64,
    /// Overhead normalized to the L1 baseline.
    pub normalized: f64,
}

/// Runs Figure 1 and returns its four rows (L1 first).
pub fn fig1(opts: FigureOpts) -> Vec<Fig1Row> {
    let x = scaled(256 * 1024 * 1024, opts.scale);
    let n = 4;
    let l1 = micro::run_l1(n, x);
    let mmap = micro::run_add_tight(Backend::Mmap, n, x);
    let hyper = micro::run_add_tight(Backend::Hypermap, n, x);
    let locking = micro::run_locking(n, x);

    let per_op = |d: Duration| d.as_nanos() as f64 / x as f64;
    let base = per_op(l1);
    let rows = vec![
        Fig1Row {
            label: "L1-memory",
            ns_per_op: per_op(l1),
            normalized: 1.0,
        },
        Fig1Row {
            label: "memory-mapped",
            ns_per_op: per_op(mmap),
            normalized: per_op(mmap) / base,
        },
        Fig1Row {
            label: "hypermap",
            ns_per_op: per_op(hyper),
            normalized: per_op(hyper) / base,
        },
        Fig1Row {
            label: "locking",
            ns_per_op: per_op(locking),
            normalized: per_op(locking) / base,
        },
    ];

    let mut t = Table::new(
        &format!("Figure 1 — normalized overhead (x = {x} updates, 4 locations, 1 worker)"),
        &["category", "ns/op", "normalized"],
    );
    for r in &rows {
        t.row(&[
            r.label.into(),
            format!("{:.2}", r.ns_per_op),
            format!("{:.2}", r.normalized),
        ]);
    }
    t.emit("fig1");
    rows
}

/// One Figure 5 measurement.
pub struct Fig5Row {
    /// `add`, `min`, or `max`.
    pub bench: &'static str,
    /// Number of reducers.
    pub n: usize,
    /// Cilk-M (memory-mapped) execution time.
    pub cilk_m: Duration,
    /// Cilk Plus (hypermap) execution time.
    pub cilk_plus: Duration,
}

/// Figure 5(a)/(b): microbenchmark execution times with varying numbers
/// of reducers, on `workers` workers (1 → Fig 5a, 16 → Fig 5b).
pub fn fig5(opts: FigureOpts, workers: usize) -> Vec<Fig5Row> {
    let x = scaled(1024 * 1024 * 1024, opts.scale);
    let mut rows = Vec::new();
    for bench in ["add", "min", "max"] {
        for &n in &FIG5_N {
            let run = |backend| {
                let cfg = MicroConfig::new(workers, backend, n, x);
                match bench {
                    "add" => micro::run_add(cfg),
                    "min" => micro::run_min(cfg),
                    _ => micro::run_max(cfg),
                }
            };
            let cilk_m = run(Backend::Mmap);
            let cilk_plus = run(Backend::Hypermap);
            rows.push(Fig5Row {
                bench,
                n,
                cilk_m,
                cilk_plus,
            });
        }
    }
    let sub = if workers == 1 { "a" } else { "b" };
    let mut t = Table::new(
        &format!("Figure 5({sub}) — execution time, {workers} worker(s), x = {x} lookups"),
        &["benchmark", "Cilk-M", "Cilk Plus", "Plus/M"],
    );
    for r in &rows {
        t.row(&[
            format!("{}-{}", r.bench, r.n),
            fmt_duration(r.cilk_m),
            fmt_duration(r.cilk_plus),
            format!("{:.2}", r.cilk_plus.as_secs_f64() / r.cilk_m.as_secs_f64()),
        ]);
    }
    t.emit(&format!("fig5{sub}"));
    rows
}

/// One Figure 6 measurement: lookup overhead for one backend at one n.
pub struct Fig6Row {
    /// Number of reducers.
    pub n: usize,
    /// `time(add-n) − time(add-base-n)` for Cilk-M.
    pub cilk_m_overhead: f64,
    /// Same for Cilk Plus.
    pub cilk_plus_overhead: f64,
}

/// Figure 6: lookup overhead (add-n minus the add-base-n control), one
/// worker, n from 4 to 1024.
pub fn fig6(opts: FigureOpts) -> Vec<Fig6Row> {
    let x = scaled(1024 * 1024 * 1024, opts.scale);
    let mut rows = Vec::new();
    for &n in &FIG67_N {
        let base = micro::run_add_base(1, n, x, 8192);
        let m = micro::run_add(MicroConfig::new(1, Backend::Mmap, n, x));
        let h = micro::run_add(MicroConfig::new(1, Backend::Hypermap, n, x));
        rows.push(Fig6Row {
            n,
            cilk_m_overhead: (m.as_secs_f64() - base.as_secs_f64()).max(0.0),
            cilk_plus_overhead: (h.as_secs_f64() - base.as_secs_f64()).max(0.0),
        });
    }
    let mut t = Table::new(
        &format!("Figure 6 — lookup overhead (add-n − add-base-n), 1 worker, x = {x}"),
        &["n", "Cilk-M (s)", "Cilk Plus (s)", "Plus/M"],
    );
    for r in &rows {
        t.row(&[
            format!("add-{}", r.n),
            format!("{:.4}", r.cilk_m_overhead),
            format!("{:.4}", r.cilk_plus_overhead),
            format!("{:.2}", r.cilk_plus_overhead / r.cilk_m_overhead.max(1e-12)),
        ]);
    }
    t.emit("fig6");
    rows
}

/// One Figure 7/8 measurement: the reduce overhead of one backend.
pub struct Fig7Row {
    /// Number of reducers.
    pub n: usize,
    /// Reduce overhead (view creation + insertion + transferal +
    /// hypermerge), microseconds.
    pub cilk_m_us: f64,
    /// Same for Cilk Plus.
    pub cilk_plus_us: f64,
    /// Successful steals in the Cilk-M run (overheads amortize against
    /// these).
    pub cilk_m_steals: u64,
    /// Successful steals in the Cilk Plus run.
    pub cilk_plus_steals: u64,
    /// Full Cilk-M instrumentation delta (drives Figure 8).
    pub cilk_m_snapshot: InstrumentSnapshot,
}

/// Figure 7: reduce overhead during parallel execution (16 workers,
/// add-n, instrumented inside the runtime), per backend and n.
pub fn fig7(opts: FigureOpts) -> Vec<Fig7Row> {
    // The reduce-overhead study uses 2× the lookups (§8 footnote 8).
    let x = scaled(2048 * 1024 * 1024, opts.scale);
    let mut rows = Vec::new();
    for &n in &FIG67_N {
        let measure = |backend: Backend| {
            let pool = ReducerPool::new(opts.workers, backend);
            let before = pool.instrument();
            let steals0 = pool.stats().steals;
            micro::run_add_on(&pool, MicroConfig::new(opts.workers, backend, n, x));
            let snap = pool.instrument().since(&before);
            let steals = pool.stats().steals - steals0;
            (snap, steals)
        };
        let (m_snap, m_steals) = measure(Backend::Mmap);
        let (h_snap, h_steals) = measure(Backend::Hypermap);
        rows.push(Fig7Row {
            n,
            cilk_m_us: m_snap.reduce_overhead_ns() as f64 / 1e3,
            cilk_plus_us: h_snap.reduce_overhead_ns() as f64 / 1e3,
            cilk_m_steals: m_steals,
            cilk_plus_steals: h_steals,
            cilk_m_snapshot: m_snap,
        });
    }
    let mut t = Table::new(
        &format!(
            "Figure 7 — reduce overhead, {} workers, add-n, x = {x}",
            opts.workers
        ),
        &[
            "n",
            "Cilk-M (us)",
            "Cilk Plus (us)",
            "Plus/M",
            "steals M",
            "steals Plus",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("add-{}", r.n),
            format!("{:.1}", r.cilk_m_us),
            format!("{:.1}", r.cilk_plus_us),
            format!("{:.2}", r.cilk_plus_us / r.cilk_m_us.max(1e-9)),
            r.cilk_m_steals.to_string(),
            r.cilk_plus_steals.to_string(),
        ]);
    }
    t.emit("fig7");
    rows
}

/// Figure 8: the Cilk-M reduce-overhead breakdown (reuses Figure 7 runs).
pub fn fig8(rows: &[Fig7Row]) {
    let mut t = Table::new(
        "Figure 8 — Cilk-M reduce overhead breakdown (ms)",
        &[
            "n",
            "view creation",
            "view insertion",
            "hypermerge",
            "view transferal",
        ],
    );
    for r in rows {
        let b = r.cilk_m_snapshot.breakdown();
        t.row(&[
            format!("add-{}", r.n),
            format!("{:.3}", b.view_creation_ns as f64 / 1e6),
            format!("{:.3}", b.view_insertion_ns as f64 / 1e6),
            format!("{:.3}", b.hypermerge_ns as f64 / 1e6),
            format!("{:.3}", b.transferal_ns as f64 / 1e6),
        ]);
    }
    t.emit("fig8");
}

/// One Figure 9 series point.
pub struct Fig9Row {
    /// Number of reducers.
    pub n: usize,
    /// Worker count.
    pub p: usize,
    /// Execution time at this worker count.
    pub time: Duration,
    /// Speedup over the single-worker run of the same n.
    pub speedup: f64,
}

/// Figure 9: speedup of add-n on Cilk-M for P ∈ {1,2,4,8,16}.
///
/// On hosts with fewer hardware threads than P the workers are
/// oversubscribed and speedups saturate at the core count — recorded as
/// such in EXPERIMENTS.md.
pub fn fig9(opts: FigureOpts) -> Vec<Fig9Row> {
    let x = scaled(1024 * 1024 * 1024, opts.scale);
    let ps = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for &n in &FIG5_N {
        let mut t1 = None;
        for &p in &ps {
            let d = micro::run_add(MicroConfig::new(p, Backend::Mmap, n, x));
            let t1v = *t1.get_or_insert(d.as_secs_f64());
            rows.push(Fig9Row {
                n,
                p,
                time: d,
                speedup: t1v / d.as_secs_f64(),
            });
        }
    }
    let mut t = Table::new(
        &format!("Figure 9 — speedup of add-n on Cilk-M (x = {x})"),
        &["n", "P", "time", "speedup"],
    );
    for r in &rows {
        t.row(&[
            format!("add-{}", r.n),
            r.p.to_string(),
            fmt_duration(r.time),
            format!("{:.2}", r.speedup),
        ]);
    }
    t.emit("fig9");
    rows
}

/// One Figure 10 row: PBFS on one input graph.
pub struct Fig10Row {
    /// Input name (the matrix the generator stands in for).
    pub name: &'static str,
    /// Generated |V|.
    pub vertices: usize,
    /// Generated |E|.
    pub edges: usize,
    /// Measured eccentricity of the source (layers − 1).
    pub diameter: u32,
    /// Reducer lookups during the parallel Cilk-M run.
    pub lookups: u64,
    /// Cilk-M / Cilk Plus time ratio on one worker.
    pub ratio_serial: f64,
    /// Cilk-M / Cilk Plus time ratio on `workers` workers.
    pub ratio_parallel: f64,
}

/// Figure 10: PBFS relative execution time (Cilk-M / Cilk Plus) on the
/// eight stand-in input graphs, serial and parallel, plus the input
/// characteristics table.
pub fn fig10(opts: FigureOpts) -> Vec<Fig10Row> {
    // Graph sizes have their own divisor (CILKM_GRAPH_SCALE): at the
    // default of 500 the stand-ins have |V| in the thousands, which
    // EXPERIMENTS.md accounts for.
    let graph_scale = crate::env_graph_scale(500.0);
    let inputs = gen::paper_inputs(graph_scale, 0xC11C);
    let grain = 64;
    let mut rows = Vec::new();
    for input in &inputs {
        let g = &input.graph;
        let serial_dist = bfs_serial(g, input.source);
        let diameter = serial_dist
            .iter()
            .filter(|&&d| d != UNREACHED)
            .max()
            .copied()
            .unwrap_or(0);

        let time_with = |backend: Backend, workers: usize| {
            let pool = ReducerPool::new(workers, backend);
            let t0 = std::time::Instant::now();
            let rep = pbfs(&pool, g, input.source, grain);
            let dt = t0.elapsed();
            assert_eq!(rep.distances, serial_dist, "{} PBFS mismatch", input.name);
            (dt, rep.lookups)
        };

        let (m1, _) = time_with(Backend::Mmap, 1);
        let (h1, _) = time_with(Backend::Hypermap, 1);
        let (mp, lookups) = time_with(Backend::Mmap, opts.workers);
        let (hp, _) = time_with(Backend::Hypermap, opts.workers);

        rows.push(Fig10Row {
            name: input.name,
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            diameter,
            lookups,
            ratio_serial: m1.as_secs_f64() / h1.as_secs_f64(),
            ratio_parallel: mp.as_secs_f64() / hp.as_secs_f64(),
        });
    }

    let mut ta = Table::new(
        &format!(
            "Figure 10(a) — PBFS, Cilk-M / Cilk Plus execution-time ratio (graph scale 1/{:.0})",
            graph_scale
        ),
        &[
            "graph",
            "ratio 1 worker",
            &format!("ratio {} workers", opts.workers),
        ],
    );
    for r in &rows {
        ta.row(&[
            r.name.into(),
            format!("{:.3}", r.ratio_serial),
            format!("{:.3}", r.ratio_parallel),
        ]);
    }
    ta.emit("fig10a");

    let mut tb = Table::new(
        "Figure 10(b) — input characteristics (generated stand-ins)",
        &["name", "|V|", "|E|", "D", "# lookups"],
    );
    for r in &rows {
        tb.row(&[
            r.name.into(),
            r.vertices.to_string(),
            r.edges.to_string(),
            r.diameter.to_string(),
            r.lookups.to_string(),
        ]);
    }
    tb.emit("fig10b");
    rows
}
