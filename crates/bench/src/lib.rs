//! # cilkm-bench — the SPAA 2012 evaluation, regenerated
//!
//! One module per concern:
//!
//! * [`micro`] — the §8 microbenchmarks (`add-n`, `min-n`, `max-n`, the
//!   `add-base-n` no-reducer control, the locking comparator, and the
//!   plain L1-access baseline);
//! * [`figures`] — one function per table/figure of the paper, each
//!   returning typed rows and printing the same series the paper plots;
//! * [`output`] — table printing and CSV/JSON persistence into
//!   `bench_out/`;
//! * [`trend`] — cross-commit comparison of the committed `BENCH_*.json`
//!   / `exploration_stats.json` artifacts (the `cilkm-trend` CI gate).
//!
//! Scale: every figure accepts a *divisor* applied to the paper's
//! iteration counts (1024 M lookups does not belong on a laptop). The
//! default comes from `CILKM_BENCH_SCALE` (default 256); `cargo bench`
//! uses a larger divisor still. Shapes, not absolute times, are the
//! reproduction target — see `EXPERIMENTS.md`.

pub mod figures;
pub mod micro;
pub mod output;
pub mod trend;

/// Reads the global scale divisor (≥ 1) from `CILKM_BENCH_SCALE`.
pub fn env_scale(default: f64) -> f64 {
    std::env::var("CILKM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s >= 1.0)
        .unwrap_or(default)
}

/// Reads the graph-size divisor for the PBFS experiment from
/// `CILKM_GRAPH_SCALE` (default 500: |V| in the thousands). Separate from
/// the lookup-count scale because graph generation cost is memory-bound,
/// not iteration-bound.
pub fn env_graph_scale(default: f64) -> f64 {
    std::env::var("CILKM_GRAPH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s >= 1.0)
        .unwrap_or(default)
}

/// Reads the worker count for "16-processor" experiments from
/// `CILKM_BENCH_WORKERS` (default 16, as in the paper; workers are
/// oversubscribed on smaller machines).
pub fn env_workers(default: usize) -> usize {
    std::env::var("CILKM_BENCH_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(default)
}
